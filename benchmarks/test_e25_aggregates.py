"""E25 — differential aggregate maintenance vs full recompute.

Aggregate views (docs/aggregates.md) generalize the counted-relation
representation: each group carries COUNT/SUM/AVG accumulators and
per-value support counts for MIN/MAX, folded from the same Section 5
delta pipeline the SPJ views ride.  This experiment drives a
dashboard-shaped workload — a ``sales`` fact stream with occasional
corrections (deletes) against a static ``catalog`` dimension — through
three arms:

* **differential / codegen** — the default engine: generated group
  apply kernels fold each commit's core delta into the accumulators;
* **differential / interpreter** — the same fold, per-tuple Python
  (the kernel ablation: identical contents, identical abstract work);
* **full recompute** — the naive baseline: re-evaluate every view
  expression from scratch after each commit, as a system without
  incremental maintenance would.

The ablation asserts byte-for-byte contents agreement across all three
arms, counter-for-counter parity between the two differential arms
(``aggregate_rows_folded`` and ``aggregate_groups_touched`` included),
and — outside smoke runs — that differential maintenance beats the
recompute baseline in wall-clock terms.

Set ``REPRO_E25_SMOKE=1`` (CI does) to shrink the stream to a smoke
run of the same code paths.  Set ``REPRO_E25_RECORD=1`` to append the
measured numbers to ``BENCH_E25.json`` at the repo root.
"""

import json
import random
import time
from datetime import date
from pathlib import Path

from benchmarks.conftest import record_env, smoke_env
from repro import BaseRef, Database, ViewMaintainer
from repro.algebra.evaluate import evaluate
from repro.bench.reporting import format_table
from repro.instrumentation import CostRecorder, recording

SMOKE = smoke_env("E25")
RECORD = record_env("E25")
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_E25.json"

TXNS = 30 if SMOKE else 250
SEED_ROWS = 40 if SMOKE else 250
#: Timing repeats per arm; the minimum is reported (noise shrinks the
#: minimum toward the true cost, never below it).
REPEATS = 1 if SMOKE else 3

#: ``sales(G, P, M)`` — region, product, amount.  ``catalog(Q, C)`` —
#: product, category; static, so every commit's delta hits ``sales``.
REGIONS = 8
PRODUCTS = 20
AMOUNT_RANGE = (1, 500)

#: The dashboard: grouped totals, per-group extremes (the non-self-
#: maintainable class exercising support-count deletes), and a join
#: view rolled up by category — the aggregate sits on an SPJ core.
VIEWS = {
    "revenue": BaseRef("sales").aggregate(
        ["G"],
        [
            ("count", None, "orders"),
            ("sum", "M", "revenue"),
            ("avg", "M", "avg_order"),
        ],
    ),
    "extremes": BaseRef("sales").aggregate(
        ["G"], [("min", "M", "low"), ("max", "M", "high")]
    ),
    "by_category": BaseRef("sales")
    .product(BaseRef("catalog"))
    .select("P = Q")
    .project(["C", "M"])
    .aggregate(["C"], [("sum", "M", "revenue")]),
}


def _seeded_database():
    rng = random.Random(25)
    sales = set()
    while len(sales) < SEED_ROWS:
        sales.add(
            (
                rng.randrange(REGIONS),
                rng.randrange(PRODUCTS),
                rng.randint(*AMOUNT_RANGE),
            )
        )
    db = Database()
    db.create_relation("sales", ["G", "P", "M"], sorted(sales))
    db.create_relation(
        "catalog",
        ["Q", "C"],
        [(product, product % 5) for product in range(PRODUCTS)],
    )
    return db


def _churn(db, txns, seed):
    """A dashboard-shaped stream: sale events, occasional corrections."""
    rng = random.Random(seed)
    live = set(db.relation("sales").value_tuples())
    for _ in range(txns):
        with db.transact() as txn:
            for _ in range(rng.randint(1, 4)):
                if live and rng.random() < 0.25:
                    row = rng.choice(sorted(live))
                    txn.delete("sales", row)
                    live.discard(row)
                else:
                    row = (
                        rng.randrange(REGIONS),
                        rng.randrange(PRODUCTS),
                        rng.randint(*AMOUNT_RANGE),
                    )
                    txn.insert("sales", row)
                    live.add(row)


def _run_differential(use_codegen):
    """One maintained run; returns (seconds, counters, contents, stats)."""
    best = None
    for _ in range(REPEATS):
        db = _seeded_database()
        maintainer = ViewMaintainer(db, use_codegen=use_codegen)
        for name, expression in VIEWS.items():
            maintainer.define_view(name, expression)
        recorder = CostRecorder()
        start = time.perf_counter()
        with recording(recorder):
            _churn(db, TXNS, seed=9)
        elapsed = time.perf_counter() - start
        maintainer.verify_all()
        contents = {
            name: dict(maintainer.view(name).contents.counts())
            for name in VIEWS
        }
        stats = maintainer.codegen_stats().as_dict()
        if best is None or elapsed < best[0]:
            best = (elapsed, recorder.snapshot(), contents, stats)
    return best


def _run_recompute():
    """The naive baseline: full re-evaluation after every commit."""
    best = None
    for _ in range(REPEATS):
        db = _seeded_database()
        rng = random.Random(9)
        live = set(db.relation("sales").value_tuples())
        contents = {}
        start = time.perf_counter()
        for _ in range(TXNS):
            with db.transact() as txn:
                for _ in range(rng.randint(1, 4)):
                    if live and rng.random() < 0.25:
                        row = rng.choice(sorted(live))
                        txn.delete("sales", row)
                        live.discard(row)
                    else:
                        row = (
                            rng.randrange(REGIONS),
                            rng.randrange(PRODUCTS),
                            rng.randint(*AMOUNT_RANGE),
                        )
                        txn.insert("sales", row)
                        live.add(row)
            instances = db.instances()
            contents = {
                name: dict(evaluate(expression, instances).counts())
                for name, expression in VIEWS.items()
            }
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, contents)
    return best


#: Counters both differential arms must charge identically — the SPJ
#: core's abstract work plus the aggregate fold's own two counters.
PARITY_COUNTERS = (
    "tuples_scanned",
    "join_probes",
    "tuples_emitted",
    "tuples_ignored",
    "truth_table_rows",
    "delta_rows_evaluated",
    "subexpression_memo_hits",
    "differential_updates",
    "aggregate_rows_folded",
    "aggregate_groups_touched",
)


def _record(entry):
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_e25_aggregate_maintenance(report, benchmark):
    compiled_s, compiled_counters, compiled_views, compiled_stats = (
        _run_differential(use_codegen=True)
    )
    interp_s, interp_counters, interp_views, interp_stats = (
        _run_differential(use_codegen=False)
    )
    recompute_s, recompute_views = _run_recompute()

    # Byte-for-byte agreement across all three arms.
    assert compiled_views == interp_views
    assert compiled_views == recompute_views

    # Counter-for-counter parity: the kernels fold the same rows and
    # touch the same groups as the interpreter — cheaper dispatch only.
    for name in PARITY_COUNTERS:
        assert compiled_counters.get(name, 0) == interp_counters.get(
            name, 0
        ), name
    assert compiled_counters.get("aggregate_rows_folded", 0) > 0
    assert compiled_counters.get("aggregate_groups_touched", 0) > 0

    # The kernels actually ran, never fell back, and the interpreter
    # arm never compiled.
    assert compiled_stats["codegen_plans_compiled"] > 0
    assert compiled_stats["codegen_batch_rows"] > 0
    assert compiled_stats["codegen_fallback_tuples"] == 0
    assert interp_stats["codegen_plans_compiled"] == 0
    assert interp_stats["codegen_batch_rows"] == 0

    speedup = recompute_s / compiled_s if compiled_s else float("inf")
    rows = [
        [
            "differential/codegen",
            f"{compiled_s * 1e3:.1f}",
            compiled_counters.get("aggregate_rows_folded", 0),
            compiled_counters.get("aggregate_groups_touched", 0),
        ],
        [
            "differential/interp",
            f"{interp_s * 1e3:.1f}",
            interp_counters.get("aggregate_rows_folded", 0),
            interp_counters.get("aggregate_groups_touched", 0),
        ],
        ["full recompute", f"{recompute_s * 1e3:.1f}", "-", "-"],
    ]
    report(
        format_table(
            ["arm", "stream ms", "rows folded", "groups touched"],
            rows,
            title=(
                f"E25  aggregate maintenance ({TXNS} txns, "
                f"{speedup:.2f}x vs recompute)"
            ),
        )
    )

    # The headline claim — skipped in smoke runs, whose streams are too
    # short for wall-clock to dominate noise.
    if not SMOKE:
        assert compiled_s < recompute_s, (
            f"differential {compiled_s:.4f}s not faster than "
            f"recompute {recompute_s:.4f}s"
        )

    if RECORD:
        _record(
            {
                "experiment": "E25",
                "date": date.today().isoformat(),
                "smoke": SMOKE,
                "txns": TXNS,
                "differential_ms": round(compiled_s * 1e3, 2),
                "interpreter_ms": round(interp_s * 1e3, 2),
                "recompute_ms": round(recompute_s * 1e3, 2),
                "speedup_vs_recompute": round(speedup, 3),
                "codegen": compiled_stats,
                "parity_counters": {
                    name: compiled_counters.get(name, 0)
                    for name in PARITY_COUNTERS
                },
            }
        )

    # One micro-benchmark sample: a single sale event folded through
    # the generated group-apply kernels.
    bench_db = _seeded_database()
    bench_maintainer = ViewMaintainer(bench_db, use_codegen=True)
    for name, expression in VIEWS.items():
        bench_maintainer.define_view(name, expression)
    bench_rng = random.Random(1)

    def commit_once():
        with bench_db.transact() as txn:
            txn.insert(
                "sales",
                (
                    bench_rng.randrange(REGIONS),
                    bench_rng.randrange(PRODUCTS),
                    bench_rng.randint(*AMOUNT_RANGE),
                ),
            )

    benchmark(commit_once)
