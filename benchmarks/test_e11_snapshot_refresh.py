"""E11 — snapshot refresh vs immediate maintenance (§6, [AL80]).

The same view is maintained immediately (inside every commit) and as a
snapshot refreshed every k transactions, for several k.  Deferred
maintenance amortizes: composed deltas cancel churn (a tuple inserted
then deleted between refreshes costs nothing at refresh time) and each
refresh pays the truth-table machinery once.  The trade is staleness,
which the table reports as transactions-behind just before each
refresh.
"""

import random
import time

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database

TRANSACTIONS = 240
INTERVALS = [1, 8, 40]


def _make_db(seed=12):
    rng = random.Random(seed)
    db = Database()
    rows = {(i, rng.randint(0, 30)) for i in range(1500)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(b, rng.randint(0, 60)) for b in range(31)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


VIEW = BaseRef("r").join(BaseRef("s")).select("C >= 30").project(["A", "C"])


def _churny_stream(rng):
    """A stream with real churn: half the inserts are later deleted."""
    next_id = 10_000
    pending = []
    for _ in range(TRANSACTIONS):
        ops = []
        if pending and rng.random() < 0.5:
            ops.append(("delete", pending.pop()))
        row = (next_id, rng.randint(0, 30))
        next_id += 1
        ops.append(("insert", row))
        if rng.random() < 0.7:
            pending.append(row)
        yield ops


def _run(interval):
    db = _make_db()
    policy = (
        MaintenancePolicy.IMMEDIATE if interval == 1 else MaintenancePolicy.DEFERRED
    )
    maintainer = ViewMaintainer(db)
    view = maintainer.define_view("v", VIEW, policy=policy)
    rng = random.Random(interval)
    maintenance_seconds = 0.0
    staleness_samples = []
    for i, ops in enumerate(_churny_stream(rng), start=1):
        start = time.perf_counter()
        with db.transact() as txn:
            for op, row in ops:
                getattr(txn, op)("r", row)
        maintenance_seconds += time.perf_counter() - start
        if policy is MaintenancePolicy.DEFERRED and i % interval == 0:
            pending = maintainer.pending_deltas("v")
            staleness_samples.append(
                sum(len(d.inserted) + len(d.deleted) for d in pending.values())
            )
            start = time.perf_counter()
            maintainer.refresh("v")
            maintenance_seconds += time.perf_counter() - start
    if policy is MaintenancePolicy.DEFERRED:
        maintainer.refresh("v")
    from repro.core.consistency import check_view_consistency

    check_view_consistency(view, db.instances())
    stats = maintainer.stats("v")
    avg_staleness = (
        sum(staleness_samples) / len(staleness_samples)
        if staleness_samples
        else 0.0
    )
    return maintenance_seconds, stats, avg_staleness


def test_e11_snapshot_refresh(report, benchmark):
    rows = []
    per_txn = {}
    for interval in INTERVALS:
        seconds, stats, staleness = _run(interval)
        per_txn[interval] = seconds / TRANSACTIONS
        rows.append(
            [
                "immediate" if interval == 1 else f"every {interval} txns",
                f"{seconds / TRANSACTIONS * 1e6:.0f}",
                stats.deltas_applied,
                f"{staleness:.1f}",
            ]
        )
    report(
        format_table(
            [
                "policy",
                "maintenance us/txn",
                "differential updates",
                "avg net backlog at refresh",
            ],
            rows,
            title=(
                "E11  snapshot refresh vs immediate maintenance "
                f"({TRANSACTIONS} churny transactions)"
            ),
        )
    )
    # Amortization: widely-spaced refreshes do strictly fewer
    # differential updates than immediate maintenance.
    assert rows[-1][2] < rows[0][2]

    db = _make_db()
    maintainer = ViewMaintainer(db)
    maintainer.define_view("v", VIEW, policy=MaintenancePolicy.DEFERRED)
    rng = random.Random(99)
    counter = [50_000]

    def batch_and_refresh():
        for _ in range(10):
            with db.transact() as txn:
                txn.insert("r", (counter[0], rng.randint(0, 30)))
                counter[0] += 1
        maintainer.refresh("v")

    benchmark(batch_and_refresh)
