"""E14 — design-choice ablation: index probes for OLD operands.

The differential algorithm's per-transaction cost is dominated by
preparing and probing the large OLD operands.  The maintainer can
answer those probes from lazily-created persistent hash indexes
(maintained across commits by the engine) instead of re-hashing each
base relation on every transaction.  This experiment runs the same
small-transaction stream with indexes on and off and reports
per-transaction time and tuples scanned — the scanned count collapses
with indexes because only matching keys are ever touched.
"""

import random
import time

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.instrumentation import CostRecorder, recording

TRANSACTIONS = 100
BASE = 6000


def _make_db(seed=14):
    rng = random.Random(seed)
    db = Database()
    rows = {(i, rng.randint(0, 500)) for i in range(BASE)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(b, rng.randint(0, 500)) for b in range(501)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


VIEW = BaseRef("r").join(BaseRef("s")).select("C >= 100").project(["A", "C"])


def _run(use_indexes):
    db = _make_db()
    maintainer = ViewMaintainer(db, use_indexes=use_indexes)
    view = maintainer.define_view("v", VIEW)
    rng = random.Random(5)
    recorder = CostRecorder()
    start = time.perf_counter()
    with recording(recorder):
        for i in range(TRANSACTIONS):
            with db.transact() as txn:
                txn.insert("r", (BASE + i, rng.randint(0, 500)))
    elapsed = time.perf_counter() - start
    return elapsed, recorder, view


def test_e14_index_ablation(report, benchmark):
    indexed_time, indexed_rec, indexed_view = _run(True)
    scan_time, scan_rec, scan_view = _run(False)
    assert indexed_view.contents == scan_view.contents

    rows = [
        [
            "lazy hash indexes",
            f"{indexed_time / TRANSACTIONS * 1e6:.0f}",
            indexed_rec.get("tuples_scanned"),
            indexed_rec.get("index_probes"),
        ],
        [
            "re-hash per transaction",
            f"{scan_time / TRANSACTIONS * 1e6:.0f}",
            scan_rec.get("tuples_scanned"),
            scan_rec.get("index_probes"),
        ],
    ]
    report(
        format_table(
            ["old-operand strategy", "us per txn", "tuples scanned", "index probes"],
            rows,
            title=(
                f"E14  OLD-operand index ablation "
                f"(|r| = {BASE}, {TRANSACTIONS} single-insert txns)"
            ),
        )
    )
    assert indexed_rec.get("index_probes") > 0
    assert scan_rec.get("index_probes") == 0
    assert indexed_rec.get("tuples_scanned") < scan_rec.get("tuples_scanned")
    assert indexed_time < scan_time

    db = _make_db()
    maintainer = ViewMaintainer(db, use_indexes=True)
    maintainer.define_view("v", VIEW)
    counter = [100_000]

    def one_txn():
        with db.transact() as txn:
            txn.insert("r", (counter[0], counter[0] % 500))
            counter[0] += 1

    benchmark(one_txn)
