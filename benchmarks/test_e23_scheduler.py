"""E23 — base-free hosting and the staleness-SLA refresh scheduler.

Two questions about the scheduler subsystem, on seeded streams:

* **Memory saving** — the same WAL shipped to a full follower and to a
  base-free follower hosting only self-maintainable views.  The
  base-free replica drops every base-relation copy after bootstrap and
  maintains its views from deltas alone, so the table shows base rows
  held (full) against rows dropped (base-free) with identical view
  contents asserted byte-for-byte.
* **SLA sweep** — one deferred view per staleness bound, all driven by
  a single scheduler over one commit stream.  Looser bounds amortize
  refreshes over more pending commits; with an adequate batch limit
  the scheduler refreshes every view *at* its bound, so SLA violations
  are 0 in the nominal rows.  A backpressured run (batch_limit=1,
  deliberately starved) is included as the ablation — its violation
  and deferral counts are the price of under-provisioning.

Set ``REPRO_E23_SMOKE=1`` (CI does) to shrink the streams to a smoke
run of the same code paths.  Set ``REPRO_E23_RECORD=1`` to append the
measured numbers to ``BENCH_E23.json`` at the repo root.
"""

import json
import random
import time
from datetime import date
from pathlib import Path

from benchmarks.conftest import env_flag, smoke_env
from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    ViewMaintainer,
)
from repro.bench.reporting import format_table
from repro.core.maintainer import MaintenancePolicy
from repro.scheduler import RefreshScheduler, StalenessSLA, TickClock

SMOKE = smoke_env("E23")
RECORD = env_flag("REPRO_E23_RECORD")
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_E23.json"

TXNS = 40 if SMOKE else 300
SEED_ROWS = 50 if SMOKE else 400
SLA_BOUNDS = (2, 8, 32)

#: Self-maintainable view shapes hosted by both followers.
FOLLOWER_VIEWS = {
    "hot": BaseRef("r").select("A <= 40"),
    "wide": BaseRef("r").select("A < B").project(["B"]),
    "tail": BaseRef("s").select("D >= 50"),
}


def _seeded_database():
    rng = random.Random(23)

    def distinct_rows(count):
        rows = set()
        while len(rows) < count:
            rows.add((rng.randrange(100), rng.randrange(100)))
        return sorted(rows)

    rows_r = distinct_rows(SEED_ROWS)
    rows_s = distinct_rows(SEED_ROWS)
    db = Database()
    db.create_relation("r", ["A", "B"], rows_r)
    db.create_relation("s", ["C", "D"], rows_s)
    return db


def _churn(db, txns, seed):
    """Commit a seeded stream of legal inserts and deletes."""
    rng = random.Random(seed)
    live = {name: set(db.relation(name).value_tuples()) for name in ("r", "s")}
    for _ in range(txns):
        with db.transact() as txn:
            for _ in range(rng.randint(1, 4)):
                name = rng.choice(["r", "r", "s"])
                if live[name] and rng.random() < 0.3:
                    row = rng.choice(sorted(live[name]))
                    txn.delete(name, row)
                    live[name].discard(row)
                else:
                    row = (rng.randrange(100), rng.randrange(100))
                    txn.insert(name, row)
                    live[name].add(row)


def _base_rows(database):
    return sum(
        len(database.relation(name)) for name in database.relation_names()
    )


def _run_followers(directory):
    db = _seeded_database()
    durability = DurabilityManager(db, str(directory))
    leader = ViewMaintainer(db)
    durability.checkpoint(leader)

    full = Follower(str(directory))
    bare = Follower(str(directory), base_free=True)
    for follower in (full, bare):
        for name, expression in FOLLOWER_VIEWS.items():
            follower.define_view(name, expression)

    _churn(db, TXNS, seed=5)
    timings = {}
    for label, follower in (("full", full), ("base-free", bare)):
        start = time.perf_counter()
        follower.poll()
        timings[label] = time.perf_counter() - start

    for name in FOLLOWER_VIEWS:
        assert (
            full.view(name).contents.counts()
            == bare.view(name).contents.counts()
        ), name
    assert bare.base_dropped
    assert _base_rows(bare.database) == 0
    return db, full, bare, timings


def _run_sla_sweep(batch_limit):
    db = _seeded_database()
    maintainer = ViewMaintainer(db)
    for bound in SLA_BOUNDS:
        maintainer.define_view(
            f"sla_{bound}",
            BaseRef("r").select("A <= 60"),
            policy=MaintenancePolicy.DEFERRED,
        )
    clock = TickClock()
    scheduler = RefreshScheduler(
        maintainer, clock=clock, batch_limit=batch_limit
    )
    for bound in SLA_BOUNDS:
        scheduler.declare_sla(
            f"sla_{bound}", StalenessSLA(max_pending_commits=bound)
        )

    rng = random.Random(9)
    live = set(db.relation("r").value_tuples())
    refreshed = {f"sla_{bound}": 0 for bound in SLA_BOUNDS}
    for _ in range(TXNS):
        with db.transact() as txn:
            if live and rng.random() < 0.3:
                row = rng.choice(sorted(live))
                txn.delete("r", row)
                live.discard(row)
            else:
                row = (rng.randrange(100), rng.randrange(100))
                txn.insert("r", row)
                live.add(row)
        clock.advance(1)
        for name in scheduler.tick():
            refreshed[name] += 1
    return scheduler, refreshed


def _record(entry):
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_e23_scheduler(report, benchmark, tmp_path):
    # -- base-free hosting: memory next to identical contents ----------
    db, full, bare, timings = _run_followers(tmp_path)
    dropped = bare.base_rows_dropped
    rows = [
        [
            "full",
            _base_rows(full.database),
            0,
            sum(len(full.view(name).contents) for name in FOLLOWER_VIEWS),
            f"{timings['full'] * 1e3:.1f}",
        ],
        [
            "base-free",
            _base_rows(bare.database),
            dropped,
            sum(len(bare.view(name).contents) for name in FOLLOWER_VIEWS),
            f"{timings['base-free'] * 1e3:.1f}",
        ],
    ]
    report(
        format_table(
            [
                "follower",
                "base rows held",
                "base rows dropped",
                "view rows",
                "catch-up ms",
            ],
            rows,
            title=f"E23  base-free hosting ({TXNS} txns, identical views)",
        )
    )
    assert dropped > 0

    # -- staleness-SLA sweep -------------------------------------------
    nominal, nominal_refreshed = _run_sla_sweep(batch_limit=len(SLA_BOUNDS))
    starved, _ = _run_sla_sweep(batch_limit=1)
    sweep_rows = []
    for bound in SLA_BOUNDS:
        name = f"sla_{bound}"
        refreshed = nominal_refreshed[name]
        sweep_rows.append(
            [
                bound,
                refreshed,
                f"{TXNS / max(1, refreshed):.1f}",
                nominal.violations().get(name, 0),
            ]
        )
    report(
        format_table(
            [
                "max pending commits",
                "refreshes",
                "commits amortized",
                "sla violations",
            ],
            sweep_rows,
            title=f"E23  staleness-SLA sweep ({TXNS} txns, nominal)",
        )
    )
    report(
        format_table(
            ["batch limit", "refreshes", "violations", "deferrals"],
            [
                [
                    len(SLA_BOUNDS),
                    nominal.stats.refreshes,
                    nominal.stats.sla_violations,
                    nominal.stats.backpressure_deferrals,
                ],
                [
                    1,
                    starved.stats.refreshes,
                    starved.stats.sla_violations,
                    starved.stats.backpressure_deferrals,
                ],
            ],
            title="E23  backpressure ablation",
        )
    )

    # Nominal provisioning refreshes at the bound, never beyond it.
    assert nominal.stats.sla_violations == 0
    assert nominal.stats.backpressure_deferrals == 0
    # Looser bounds amortize strictly more commits per refresh.
    refresh_counts = [row[1] for row in sweep_rows]
    assert refresh_counts == sorted(refresh_counts, reverse=True)

    if RECORD:
        _record(
            {
                "experiment": "E23",
                "date": date.today().isoformat(),
                "smoke": SMOKE,
                "txns": TXNS,
                "base_free": {
                    "full_base_rows": _base_rows(full.database),
                    "base_free_base_rows": _base_rows(bare.database),
                    "base_rows_dropped": dropped,
                    "full_catch_up_ms": round(timings["full"] * 1e3, 2),
                    "base_free_catch_up_ms": round(
                        timings["base-free"] * 1e3, 2
                    ),
                },
                "sla_sweep": {
                    str(bound): {
                        "refreshes": row[1],
                        "violations": row[3],
                    }
                    for bound, row in zip(SLA_BOUNDS, sweep_rows)
                },
                "nominal_violations": nominal.stats.sla_violations,
                "starved_violations": starved.stats.sla_violations,
            }
        )

    # One micro-benchmark sample: a commit plus a scheduler tick.
    bench_db = _seeded_database()
    bench_maintainer = ViewMaintainer(bench_db)
    bench_maintainer.define_view(
        "d",
        BaseRef("r").select("A <= 60"),
        policy=MaintenancePolicy.DEFERRED,
    )
    bench_clock = TickClock()
    bench_scheduler = RefreshScheduler(bench_maintainer, clock=bench_clock)
    bench_scheduler.declare_sla("d", StalenessSLA(max_pending_commits=4))
    bench_rng = random.Random(1)

    def commit_and_tick():
        with bench_db.transact() as txn:
            txn.insert(
                "r", (bench_rng.randrange(100), bench_rng.randrange(100))
            )
        bench_clock.advance(1)
        bench_scheduler.tick()

    benchmark(commit_and_tick)
