"""E17 — condition minimization via the §4 machinery.

Because the condition class is closed under atom negation, implication
is decidable with the same constraint-graph test, and view conditions
can be minimized at definition time (drop every atom implied by the
rest).  Smaller conditions mean fewer graph edges in every Algorithm
4.1 screen and fewer compiled-predicate checks per tuple.  The
experiment screens the same tuple batch against a redundancy-laden
condition and its minimized form.
"""

import random
import time

from repro.algebra.conditions import Condition, parse_condition
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.bench.reporting import format_table
from repro.core.implication import minimize_condition
from repro.core.irrelevance import RelevanceFilter

CATALOG = {
    "r": RelationSchema(["A", "B"]),
    "s": RelationSchema(["C", "D"]),
}

#: A condition with deliberate redundancy, as written by a tool or a
#: hurried analyst: several implied bounds and duplicated atoms.
RAW = (
    "A < 10 and A < 20 and A <= 50 and B = C and B = C and "
    "C > 5 and C > 3 and C >= 0 and D <= C + 100 and D <= C + 100"
)


def _view(condition: Condition):
    return to_normal_form(
        BaseRef("r").product(BaseRef("s")).select(condition).project(["A", "D"]),
        CATALOG,
    )


def _tuples(count=3000, seed=7):
    rng = random.Random(seed)
    return [(rng.randint(-20, 40), rng.randint(-20, 40)) for _ in range(count)]


def test_e17_condition_minimization(report, benchmark):
    raw = parse_condition(RAW)
    minimized = minimize_condition(raw)
    raw_atoms = len(raw.disjuncts[0].atoms)
    min_atoms = len(minimized.disjuncts[0].atoms)
    assert min_atoms < raw_atoms

    batch = _tuples()
    results = {}
    timings = {}
    for label, condition in (("raw", raw), ("minimized", minimized)):
        nf = _view(condition)
        screen = RelevanceFilter(nf, "r", CATALOG["r"])
        start = time.perf_counter()
        kept = screen.filter_tuples(batch)
        timings[label] = time.perf_counter() - start
        results[label] = kept

    # Minimization must not change a single verdict.
    assert results["raw"] == results["minimized"]

    report(
        format_table(
            ["condition", "atoms", "screen time", "tuples kept"],
            [
                [
                    "raw (redundant)",
                    raw_atoms,
                    f"{timings['raw'] * 1e3:.1f} ms",
                    len(results["raw"]),
                ],
                [
                    "minimized",
                    min_atoms,
                    f"{timings['minimized'] * 1e3:.1f} ms",
                    len(results["minimized"]),
                ],
            ],
            title=(
                "E17  definition-time condition minimization — identical "
                "verdicts, less work per screened tuple"
            ),
        )
    )
    assert timings["minimized"] <= timings["raw"] * 1.2  # never slower (noise slack)

    nf = _view(minimized)
    benchmark(
        lambda: RelevanceFilter(nf, "r", CATALOG["r"]).filter_tuples(batch)
    )
