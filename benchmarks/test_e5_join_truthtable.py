"""E5 — the Section 5.3 truth table for p = 3, and its payoff.

Reproduces the paper's 8-row table for V = r1 ⋈ r2 ⋈ r3 verbatim, shows
the row selection for the paper's example transaction (insertions to r1
and r2 only → rows 3, 5, 7), and measures the differential update
against complete re-evaluation of the 3-way join.
"""

import time

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta
from repro.bench.reporting import format_table
from repro.core.differential import compute_view_delta
from repro.core.planner import evaluate_normal_form
from repro.core.truthtable import enumerate_delta_rows, full_truth_table, render_row
from repro.instrumentation import CostRecorder, recording
from repro.workloads.generators import generate_chain_database

NAMES = ["r1", "r2", "r3"]


def test_e5_paper_table_and_row_selection(report, benchmark):
    # --- The 8-row table, exactly as printed --------------------------
    table_rows = []
    for i, row in enumerate(full_truth_table(3), start=1):
        bits = " ".join(str(c.value) for c in row)
        table_rows.append([i, bits, render_row(row, NAMES)])
    report(
        format_table(
            ["row", "B1 B2 B3", "subexpression"],
            table_rows,
            title="E5a  Section 5.3 truth table for p = 3 (verbatim)",
        )
    )

    # --- Row selection for the paper's transaction --------------------
    selected = list(enumerate_delta_rows(3, [0, 1]))
    rendered = [render_row(r, NAMES) for r in selected]
    assert rendered == [
        "r1 ⋈ i_r2 ⋈ r3",
        "i_r1 ⋈ r2 ⋈ r3",
        "i_r1 ⋈ i_r2 ⋈ r3",
    ]
    report(
        format_table(
            ["evaluated subexpression"],
            [[text] for text in rendered],
            title=(
                "E5b  insertions to r1, r2 only -> rows 3, 5, 7 "
                "(paper's selection; row 1 is the current view)"
            ),
        )
    )
    benchmark(lambda: list(enumerate_delta_rows(3, [0, 1])))


def test_e5_differential_vs_full_join(report, benchmark):
    db, names = generate_chain_database(3, 4000, value_range=(0, 400), seed=2)
    expr = BaseRef(names[0]).join(BaseRef(names[1])).join(BaseRef(names[2]))
    nf = to_normal_form(expr, db.schema_catalog())

    # A small transaction inserting into r1 and r2 (the paper's case).
    r1 = db.relation("r1").schema
    r2 = db.relation("r2").schema
    deltas = {
        "r1": Delta(r1, inserted=[(1000 + i, i % 400) for i in range(10)]),
        "r2": Delta(r2, inserted=[(i % 400, 1000 + i) for i in range(10)]),
    }
    for name in ("r1", "r2"):
        for values in deltas[name].inserted:
            db.relation(name).add(values)

    rec_diff = CostRecorder()
    start = time.perf_counter()
    with recording(rec_diff):
        view_delta = compute_view_delta(nf, db.instances(), deltas)
    diff_seconds = time.perf_counter() - start

    rec_full = CostRecorder()
    start = time.perf_counter()
    with recording(rec_full):
        full = evaluate_normal_form(nf, db.instances())
    full_seconds = time.perf_counter() - start

    # Correctness: old view + delta == recomputation.
    old_instances = {n: db.relation(n).copy() for n in db.relation_names()}
    for name in ("r1", "r2"):
        for values in deltas[name].inserted:
            old_instances[name].discard(values)
    old_view = evaluate_normal_form(nf, old_instances)
    view_delta.apply_to(old_view)
    assert old_view == full

    speedup = full_seconds / diff_seconds
    report(
        format_table(
            ["strategy", "time", "tuples scanned", "join probes", "rows"],
            [
                [
                    "differential (rows 3,5,7)",
                    f"{diff_seconds * 1e3:.2f} ms",
                    rec_diff.get("tuples_scanned"),
                    rec_diff.get("join_probes"),
                    rec_diff.get("delta_rows_evaluated"),
                ],
                [
                    "complete re-evaluation",
                    f"{full_seconds * 1e3:.2f} ms",
                    rec_full.get("tuples_scanned"),
                    rec_full.get("join_probes"),
                    1,
                ],
            ],
            title=(
                "E5c  3-way join, |r_i| = 4000, 20 inserted tuples — "
                f"differential speedup x{speedup:.0f}"
            ),
        )
    )
    assert rec_diff.get("delta_rows_evaluated") == 3
    assert speedup > 2

    benchmark(lambda: compute_view_delta(nf, db.instances(), deltas))
