"""Shared benchmark infrastructure.

Every experiment builds one or more paper-style result tables and
registers them via the ``report`` fixture; the tables are printed in
the terminal summary (never swallowed by output capture), so running

    pytest benchmarks/ --benchmark-only

shows, for each experiment, both pytest-benchmark's timing panel and
the reproduced table/series the experiment is about.
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


@pytest.fixture
def report():
    """Register a result table for the end-of-run summary."""

    def add(text: str) -> None:
        _REPORTS.append(text)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment results")
    for text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
