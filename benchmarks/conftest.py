"""Shared benchmark infrastructure.

Every experiment builds one or more paper-style result tables and
registers them via the ``report`` fixture; the tables are printed in
the terminal summary (never swallowed by output capture), so running

    pytest benchmarks/ --benchmark-only

shows, for each experiment, both pytest-benchmark's timing panel and
the reproduced table/series the experiment is about.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: list[str] = []

# Values that mean "off" for a REPRO_* environment gate.  Everything
# else — including the conventional "1" — means "on".
_FALSY = frozenset({"", "0", "false", "no"})


def env_flag(name: str) -> bool:
    """True when the environment variable ``name`` is set and truthy.

    ``""``, ``"0"``, ``"false"`` and ``"no"`` (case-insensitive) count
    as unset, so ``REPRO_E20_SMOKE=0 pytest ...`` disables a gate that
    a CI job exported earlier in the same shell.
    """
    value = os.environ.get(name)
    if value is None:
        return False
    return value.strip().lower() not in _FALSY


def smoke_env(tag: str) -> bool:
    """True when the ``REPRO_{tag}_SMOKE`` gate is on.

    One spelling for every experiment and simulation gate:
    ``smoke_env("E20")`` reads ``REPRO_E20_SMOKE``, ``smoke_env("SIM")``
    reads ``REPRO_SIM_SMOKE``, and so on.
    """
    return env_flag(f"REPRO_{tag}_SMOKE")


def record_env(tag: str) -> bool:
    """True when the ``REPRO_{tag}_RECORD`` gate is on.

    Recording gates append a dated entry to the experiment's
    ``BENCH_*.json`` trajectory; ``record_env("E24")`` reads
    ``REPRO_E24_RECORD``.
    """
    return env_flag(f"REPRO_{tag}_RECORD")


@pytest.fixture
def report():
    """Register a result table for the end-of-run summary."""

    def add(text: str) -> None:
        _REPORTS.append(text)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "experiment results")
    for text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
