"""E26 — counter-free apply kernels vs full Section 5.2 counters.

When the chase over declared keys derives a *view key* (no two
materialized rows agree on it), every view row's multiplicity is
provably one, and the generated apply kernels may pin the Section 5.2
counters — ``ins[k] = 1`` instead of ``ins[k] = ins.get(k, 0) + c`` —
with no per-row dictionary arithmetic (docs/analysis.md, the
``counter_free`` finding).  This experiment drives two keyed views —

* ``fkj = π_{A,B}(r ⋈ p)``: FK-reduced *and* counter-free — the plan
  executes over r's delta alone, probe deltas into p dropped wholesale;
* ``wide = r ⋈ p``: counter-free but not reducible (it projects the
  probe payload C), so the probe work is identical on both sides and
  the ablation isolates the counter arithmetic;

through an identical seeded, key/FK-legal commit stream twice: once
with ``use_counter_free=True`` (the default) and once pinned to full
counters.  The ablation asserts the maintained contents are
byte-for-byte identical and that every abstract work counter matches —
the counters are the only thing elided, never screening, probing or
evaluation work.  The headline is the apply-path overhead the elision
removes, reported as stream wall-clock.

Set ``REPRO_E26_SMOKE=1`` (CI does) to shrink the stream to a smoke
run of the same code paths.  Set ``REPRO_E26_RECORD=1`` to append the
measured numbers to ``BENCH_E26.json`` at the repo root.
"""

import json
import random
import time
from datetime import date
from pathlib import Path

from benchmarks.conftest import record_env, smoke_env
from repro import BaseRef, Database, ViewMaintainer
from repro.bench.reporting import format_table
from repro.instrumentation import CostRecorder, recording

SMOKE = smoke_env("E26")
RECORD = record_env("E26")
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_E26.json"

TXNS = 30 if SMOKE else 300
PARENTS = 20 if SMOKE else 120
SEED_CHILDREN = 40 if SMOKE else 300
#: Timing repeats per mode; the minimum is reported.
REPEATS = 1 if SMOKE else 3

VIEWS = {
    "fkj": BaseRef("r").join(BaseRef("p")).project(["A", "B"]),
    "wide": BaseRef("r").join(BaseRef("p")),
}

#: Work counters that must be charged identically by both modes: the
#: elision touches only the apply-side counter arithmetic.
PARITY_COUNTERS = (
    "tuples_scanned",
    "join_probes",
    "truth_table_rows",
    "delta_rows_evaluated",
    "filter_tuples_checked",
    "differential_updates",
)


def _seeded_database():
    """p(B, C) with key (B); r(A, B) with foreign key r(B) → p(B)."""
    rng = random.Random(26)
    db = Database()
    db.create_relation(
        "p", ["B", "C"], [(b, rng.randint(0, 99)) for b in range(PARENTS)]
    )
    children = set()
    while len(children) < SEED_CHILDREN:
        children.add((rng.randint(0, 10_000), rng.randint(0, PARENTS - 1)))
    db.create_relation("r", ["A", "B"], sorted(children))
    db.declare_key("p", ["B"])
    db.declare_foreign_key("r", ["B"], "p", ["B"])
    return db


def _churn(db, txns, seed):
    """A seeded key/FK-legal stream: child churn, parent growth.

    Child inserts reference live parents only; deletes target live
    child rows; new parents arrive under fresh key values — so every
    transaction commits and both ablation arms replay it identically.
    """
    rng = random.Random(seed)
    live = set(db.relation("r").value_tuples())
    parents = sorted(v[0] for v in db.relation("p").value_tuples())
    next_parent = max(parents) + 1
    for _ in range(txns):
        with db.transact() as txn:
            for _ in range(rng.randint(1, 5)):
                roll = rng.random()
                if roll < 0.08:
                    txn.insert("p", (next_parent, rng.randint(0, 99)))
                    parents.append(next_parent)
                    next_parent += 1
                elif live and roll < 0.40:
                    row = rng.choice(sorted(live))
                    txn.delete("r", row)
                    live.discard(row)
                else:
                    row = (rng.randint(0, 10_000), rng.choice(parents))
                    if row not in live:
                        txn.insert("r", row)
                        live.add(row)


def _run_stream(use_counter_free):
    """One full maintenance run; returns (seconds, counters, contents)."""
    best = None
    for _ in range(REPEATS):
        db = _seeded_database()
        maintainer = ViewMaintainer(db, use_counter_free=use_counter_free)
        for name, expression in VIEWS.items():
            maintainer.define_view(name, expression)
        for name in VIEWS:
            plan = maintainer.compiled_plan(name)
            assert plan.counter_free is use_counter_free, name
            assert plan.view_key is not None, name
        assert maintainer.compiled_plan("fkj").reduction is not None
        assert maintainer.compiled_plan("wide").reduction is None
        recorder = CostRecorder()
        start = time.perf_counter()
        with recording(recorder):
            _churn(db, TXNS, seed=13)
        elapsed = time.perf_counter() - start
        maintainer.verify_all()
        contents = {
            name: dict(maintainer.view(name).contents.counts())
            for name in VIEWS
        }
        if best is None or elapsed < best[0]:
            best = (elapsed, recorder.snapshot(), contents)
    return best


def _record(entry):
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_e26_counter_free_ablation(report, benchmark):
    free_s, free_counters, free_views = _run_stream(use_counter_free=True)
    counted_s, counted_counters, counted_views = _run_stream(
        use_counter_free=False
    )

    # Byte-for-byte agreement — and, the chase's whole point, every
    # multiplicity the counted path maintains is exactly one.
    assert free_views == counted_views
    for contents in counted_views.values():
        assert set(contents.values()) <= {1}
    for name in PARITY_COUNTERS:
        assert free_counters.get(name, 0) == counted_counters.get(
            name, 0
        ), name

    overhead = (counted_s - free_s) / counted_s * 100 if counted_s else 0.0
    rows = [
        [
            "counter-free",
            f"{free_s * 1e3:.1f}",
            free_counters.get("delta_rows_evaluated", 0),
            free_counters.get("tuples_scanned", 0),
            free_counters.get("join_probes", 0),
        ],
        [
            "counted",
            f"{counted_s * 1e3:.1f}",
            counted_counters.get("delta_rows_evaluated", 0),
            counted_counters.get("tuples_scanned", 0),
            counted_counters.get("join_probes", 0),
        ],
    ]
    report(
        format_table(
            ["mode", "stream ms", "delta rows", "tuples scanned", "probes"],
            rows,
            title=(
                f"E26  counter-free ablation ({TXNS} txns, identical "
                f"work, counter overhead {overhead:+.1f}%)"
            ),
        )
    )

    # The elision removes a small constant per emitted row; across the
    # full stream the counter-free arm must not be measurably slower.
    # (Strict speedup is noise-bound at this margin; the shape claim is
    # "free or better", with 10% timing slack.)
    if not SMOKE:
        assert free_s <= counted_s * 1.10, (
            f"counter-free {free_s:.4f}s slower than counted "
            f"{counted_s:.4f}s beyond noise"
        )

    if RECORD:
        _record(
            {
                "experiment": "E26",
                "date": date.today().isoformat(),
                "smoke": SMOKE,
                "txns": TXNS,
                "counter_free_ms": round(free_s * 1e3, 2),
                "counted_ms": round(counted_s * 1e3, 2),
                "overhead_pct": round(overhead, 2),
                "view_rows": {
                    name: len(contents)
                    for name, contents in free_views.items()
                },
            }
        )
