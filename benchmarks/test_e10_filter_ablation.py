"""E10 — ablating the Section 4 filter: end-to-end benefit.

Runs the same update stream through two maintainers — with and without
irrelevance filtering — while sweeping the fraction of updates that are
provably irrelevant to the view.  The view condition bounds A below 100,
so inserts drawn from A ∈ [200, 400] are screenable.  Reported: time
per transaction and differential updates actually performed.  The
filter's payoff grows linearly with the irrelevant fraction; at 0% it
costs only the screening overhead.
"""

import random
import time

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database

FRACTIONS = [0.0, 0.5, 0.9, 1.0]
TRANSACTIONS = 150


def _make_db():
    rng = random.Random(10)
    db = Database()
    rows = {(rng.randint(0, 99), rng.randint(0, 50)) for _ in range(2000)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(rng.randint(0, 50), rng.randint(0, 50)) for _ in range(500)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


VIEW = (
    BaseRef("r")
    .join(BaseRef("s"))
    .select("A < 100 and C >= 10")
    .project(["A", "C"])
)


def _run(irrelevant_fraction, use_filter, seed=20):
    db = _make_db()
    maintainer = ViewMaintainer(db, use_relevance_filter=use_filter)
    view = maintainer.define_view("v", VIEW)
    rng = random.Random(seed)
    start = time.perf_counter()
    for i in range(TRANSACTIONS):
        with db.transact() as txn:
            if rng.random() < irrelevant_fraction:
                # Provably irrelevant: A >= 200 violates A < 100.
                txn.insert("r", (rng.randint(200, 400), rng.randint(0, 50)))
            else:
                txn.insert("r", (rng.randint(0, 99), rng.randint(0, 50)))
    elapsed = time.perf_counter() - start
    return elapsed / TRANSACTIONS, maintainer.stats("v"), view


def test_e10_filter_ablation(report, benchmark):
    rows = []
    for fraction in FRACTIONS:
        filtered_time, filtered_stats, filtered_view = _run(fraction, True)
        unfiltered_time, unfiltered_stats, unfiltered_view = _run(fraction, False)
        assert filtered_view.contents == unfiltered_view.contents
        rows.append(
            [
                f"{fraction:.0%}",
                f"{filtered_time * 1e6:.0f}",
                f"{unfiltered_time * 1e6:.0f}",
                filtered_stats.deltas_applied,
                unfiltered_stats.deltas_applied,
                filtered_stats.transactions_skipped,
            ]
        )
    report(
        format_table(
            [
                "irrelevant frac",
                "with filter us/txn",
                "no filter us/txn",
                "diff updates (filter)",
                "diff updates (none)",
                "txns skipped",
            ],
            rows,
            title=(
                "E10  Section 4 filter ablation — skipped transactions "
                "grow with the irrelevant fraction"
            ),
        )
    )
    # At 100% irrelevant updates, the filtered maintainer performs no
    # differential updates at all; the unfiltered one does one per txn.
    last = rows[-1]
    assert last[3] == 0
    # Nearly one differential update per transaction without the filter
    # (the odd duplicate insert commits as a net no-op and is exempt).
    assert last[4] >= TRANSACTIONS - 5
    # And it must be faster there.
    assert float(last[1]) < float(last[2])

    benchmark(lambda: _run(0.9, True, seed=21))
