"""E12 — Theorem 4.2: joint irrelevance of tuple combinations.

The paper proves that a *set* of tuples inserted across relations can
be jointly irrelevant even when each tuple is individually relevant
(its substituted condition is satisfiable, but not by *these*
partners).  The experiment inserts random (t_r, t_s) pairs into the
Example 4.1 view, counts how many pairs the single-tuple filter keeps
but the Theorem 4.2 combination test discards, and verifies every
jointly-irrelevant verdict against actual evaluation on the empty
database seeded with just that pair.
"""

import random

from repro.algebra.evaluate import evaluate
from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.bench.reporting import format_table
from repro.core.irrelevance import (
    is_irrelevant_combination,
    is_irrelevant_update,
)

CATALOG = {
    "r": RelationSchema(["A", "B"]),
    "s": RelationSchema(["C", "D"]),
}
EXPR = (
    BaseRef("r")
    .product(BaseRef("s"))
    .select("A < 10 and C > 5 and B = C")
    .project(["A", "D"])
)


def test_e12_joint_irrelevance(report, benchmark):
    nf = to_normal_form(EXPR, CATALOG)
    rng = random.Random(40)
    pairs = [
        (
            (rng.randint(0, 15), rng.randint(0, 15)),
            (rng.randint(0, 15), rng.randint(0, 15)),
        )
        for _ in range(500)
    ]

    both_individually_relevant = 0
    jointly_irrelevant = 0
    for t_r, t_s in pairs:
        r_rel = not is_irrelevant_update(nf, "r", t_r, CATALOG["r"])
        s_rel = not is_irrelevant_update(nf, "s", t_s, CATALOG["s"])
        if not (r_rel and s_rel):
            continue
        both_individually_relevant += 1
        if is_irrelevant_combination(nf, {"r": t_r, "s": t_s}, CATALOG):
            jointly_irrelevant += 1
            # Oracle: inserting exactly this pair into an empty database
            # must leave the view empty.
            instances = {
                "r": Relation.from_rows(CATALOG["r"], [t_r]),
                "s": Relation.from_rows(CATALOG["s"], [t_s]),
            }
            assert len(evaluate(EXPR, instances)) == 0

    report(
        format_table(
            ["population", "count"],
            [
                ["random (t_r, t_s) pairs", len(pairs)],
                ["both tuples individually relevant", both_individually_relevant],
                [
                    "of those, jointly irrelevant (Theorem 4.2 catch)",
                    jointly_irrelevant,
                ],
            ],
            title=(
                "E12  multi-tuple irrelevance — combinations the "
                "single-tuple filter cannot discard"
            ),
        )
    )
    # The whole point of Theorem 4.2: the joint test catches extra work.
    assert jointly_irrelevant > 0

    sample = pairs[:100]
    benchmark(
        lambda: [
            is_irrelevant_combination(nf, {"r": t_r, "s": t_s}, CATALOG)
            for t_r, t_s in sample
        ]
    )
