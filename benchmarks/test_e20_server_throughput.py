"""E20 — network serving overhead and changefeed fan-out.

The view-server puts a wire between the paper's machinery and its
callers.  The first table prices that wire per operation — framed
request/response round trips against the equivalent in-process calls —
for reads (stored view contents only), writes (the full commit pipeline
including immediate maintenance), and pings (pure protocol overhead).
The second table scales changefeed fan-out: one writer streams
transactions while N subscribers drain the resulting view deltas, so
the cost of serving an alert stream to many consumers is measured
end-to-end (commit → maintainer hook → outboxes → sockets).

Set ``REPRO_E20_SMOKE=1`` (CI does) to shrink the workload to a smoke
test of the same code paths.
"""

import threading
import time

from benchmarks.conftest import smoke_env
from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.server import ServerConfig, ServerHandle, ViewClient, ViewServer

SMOKE = smoke_env("E20")
TXNS = 30 if SMOKE else 250
QUERIES = 30 if SMOKE else 400
FANOUT_TXNS = 20 if SMOKE else 120
SUBSCRIBER_COUNTS = (1, 4) if SMOKE else (1, 2, 4, 8)

VIEW = BaseRef("r").join(BaseRef("s")).select("C > 4").project(["A", "C"])


def _make_state():
    db = Database()
    db.create_relation("r", ["A", "B"], [(i, i % 20) for i in range(200)])
    db.create_relation("s", ["B", "C"], [(b, b // 2) for b in range(20)])
    maintainer = ViewMaintainer(db)
    maintainer.define_view("hot", VIEW)
    return db, maintainer


def test_e20_server_throughput(report, benchmark):
    # ------------------------------------------------------------------
    # Table 1: the wire premium per operation.
    # ------------------------------------------------------------------
    db, maintainer = _make_state()
    view = maintainer.view("hot")
    server = ViewServer(db, maintainer, ServerConfig())
    rows = []
    with ServerHandle(server) as handle:
        with ViewClient(port=handle.port) as client:
            start = time.perf_counter()
            for _ in range(QUERIES):
                client.ping()
            ping_wire = (time.perf_counter() - start) / QUERIES

            start = time.perf_counter()
            for _ in range(QUERIES):
                client.query("hot")
            query_wire = (time.perf_counter() - start) / QUERIES

            start = time.perf_counter()
            for i in range(TXNS):
                client.txn(insert={"r": [[10_000 + i, 11]]})
            txn_wire = (time.perf_counter() - start) / TXNS

    # The in-process equivalents, over identical state shapes.
    start = time.perf_counter()
    for _ in range(QUERIES):
        schema = view.contents.schema
        [list(schema.decode_values(v)) for v, _ in sorted(view.contents.items())]
    query_local = (time.perf_counter() - start) / QUERIES

    start = time.perf_counter()
    for i in range(TXNS):
        with db.transact() as txn:
            txn.insert("r", (20_000 + i, 11))
    txn_local = (time.perf_counter() - start) / TXNS

    rows.append(["ping", f"{ping_wire * 1e6:.0f}", "-", "-"])
    rows.append(
        [
            "query hot",
            f"{query_wire * 1e6:.0f}",
            f"{query_local * 1e6:.0f}",
            f"{query_wire / query_local:.1f}x",
        ]
    )
    rows.append(
        [
            "txn insert 1 row",
            f"{txn_wire * 1e6:.0f}",
            f"{txn_local * 1e6:.0f}",
            f"{txn_wire / txn_local:.1f}x",
        ]
    )
    report(
        format_table(
            ["operation", "wire us/op", "in-process us/op", "premium"],
            rows,
            title=(
                f"E20a  serving premium per operation "
                f"({QUERIES} reads, {TXNS} writes, immediate maintenance)"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Table 2: changefeed fan-out scaling.
    # ------------------------------------------------------------------
    fanout_rows = []
    for subscriber_count in SUBSCRIBER_COUNTS:
        db, maintainer = _make_state()
        server = ViewServer(db, maintainer, ServerConfig(max_sessions=64))
        with ServerHandle(server) as handle:
            subscribers = [
                ViewClient(port=handle.port) for _ in range(subscriber_count)
            ]
            received: list[int] = []
            threads = []
            try:
                for client in subscribers:
                    client.subscribe("hot")

                def drain(client=None) -> None:
                    events = client.drain_events(FANOUT_TXNS, timeout=30)
                    sequences = [e["seq"] for e in events]
                    assert sequences == sorted(sequences)
                    received.append(len(events))

                threads = [
                    threading.Thread(target=drain, kwargs={"client": c})
                    for c in subscribers
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                with ViewClient(port=handle.port) as writer:
                    for i in range(FANOUT_TXNS):
                        writer.txn(insert={"r": [[30_000 + i, 11]]})
                for thread in threads:
                    thread.join(60)
                seconds = time.perf_counter() - start
            finally:
                for client in subscribers:
                    client.close()
        delivered = sum(received)
        assert received == [FANOUT_TXNS] * subscriber_count
        fanout_rows.append(
            [
                subscriber_count,
                FANOUT_TXNS,
                delivered,
                f"{seconds:.3f}",
                f"{delivered / seconds:.0f}",
            ]
        )
    report(
        format_table(
            ["subscribers", "txns", "events delivered", "seconds", "events/s"],
            fanout_rows,
            title="E20b  changefeed fan-out (1 writer, N live subscribers)",
        )
    )

    # ------------------------------------------------------------------
    # The timed kernel: one framed read round trip.
    # ------------------------------------------------------------------
    db, maintainer = _make_state()
    server = ViewServer(db, maintainer, ServerConfig())
    with ServerHandle(server) as handle:
        with ViewClient(port=handle.port) as client:
            benchmark(lambda: client.query("hot"))
