"""E13 — re-using partial subexpressions across truth-table rows.

Section 5.3: "a new feature of our problem is the possibility of saving
computation by re-using partial subexpressions appearing in multiple
rows within the table.  Efficient solutions are being investigated."

Our planner's solution is prefix memoization over a fixed delta-first
join order.  The experiment updates k relations of a chain join
simultaneously (2^k − 1 rows) with sharing on and off and reports join
probes, memo hits and wall time — identical results, strictly less
work with sharing, growing with k.
"""

import time

from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta
from repro.bench.reporting import format_table
from repro.core.differential import compute_view_delta
from repro.instrumentation import CostRecorder, recording
from repro.workloads.generators import generate_chain_database

P = 4  # relations in the chain
CARD = 800


def _setting(k):
    db, names = generate_chain_database(P, CARD, value_range=(0, 120), seed=8)
    expr = BaseRef(names[0])
    for name in names[1:]:
        expr = expr.join(BaseRef(name))
    nf = to_normal_form(expr, db.schema_catalog())
    deltas = {}
    for name in names[:k]:
        schema = db.relation(name).schema
        inserted = [(5000 + i, (7 * i) % 120) for i in range(15)]
        deltas[name] = Delta(schema, inserted=inserted)
        for values in inserted:
            db.relation(name).add(values)
    return db, nf, deltas


def _measure(k, share):
    db, nf, deltas = _setting(k)
    recorder = CostRecorder()
    start = time.perf_counter()
    with recording(recorder):
        out = compute_view_delta(
            nf, db.instances(), deltas, share_subexpressions=share
        )
    return time.perf_counter() - start, recorder, out


def test_e13_subexpression_sharing(report, benchmark):
    rows = []
    for k in (2, 3, 4):
        shared_time, shared_rec, shared_out = _measure(k, True)
        solo_time, solo_rec, solo_out = _measure(k, False)
        assert shared_out == solo_out
        assert shared_rec.get("join_probes") <= solo_rec.get("join_probes")
        rows.append(
            [
                k,
                2**k - 1,
                shared_rec.get("subexpression_memo_hits"),
                shared_rec.get("join_probes"),
                solo_rec.get("join_probes"),
                f"{shared_time * 1e3:.1f}",
                f"{solo_time * 1e3:.1f}",
            ]
        )
    report(
        format_table(
            [
                "changed k",
                "rows 2^k-1",
                "memo hits",
                "probes (shared)",
                "probes (unshared)",
                "ms (shared)",
                "ms (unshared)",
            ],
            rows,
            title=(
                "E13  partial-subexpression re-use across truth-table rows "
                f"(chain join, p = {P})"
            ),
        )
    )
    # Memo hits must actually occur and grow with k.
    hits = [row[2] for row in rows]
    assert hits[0] > 0 and hits[-1] > hits[0]

    db, nf, deltas = _setting(3)
    benchmark(
        lambda: compute_view_delta(
            nf, db.instances(), deltas, share_subexpressions=True
        )
    )
