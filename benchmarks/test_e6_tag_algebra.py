"""E6 — the Section 5.3 tag tables, reproduced and exercised.

Prints the paper's two tag tables (the 9-row join table and the 3-row
select/project table) from the implementation's own combination rules,
checks them cell by cell against the transcribed paper tables, and
verifies on random tagged relations that the tagged join equals the
set-algebra expansion ``(r − d ∪ i) ⋈ (s − d' ∪ i')``.  The benchmark
measures the tagged join on mixed-tag operands.
"""

import random

from repro.algebra.evaluate import join_relations, tagged_join
from repro.algebra.relation import Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import (
    JOIN_TAG_TABLE,
    UNARY_TAG_TABLE,
    Tag,
    combine_join_tags,
    unary_tag,
)
from repro.bench.reporting import format_table

PAPER_JOIN_TABLE = [
    ("insert", "insert", "insert"),
    ("insert", "delete", "ignore"),
    ("insert", "old", "insert"),
    ("delete", "insert", "ignore"),
    ("delete", "delete", "delete"),
    ("delete", "old", "delete"),
    ("old", "insert", "insert"),
    ("old", "delete", "delete"),
    ("old", "old", "old"),
]


def _random_tagged(schema, rng, size):
    """A tagged relation plus its before/after set-algebra reading."""
    tagged = TaggedRelation(schema)
    before, after = set(), set()
    seen = set()
    for _ in range(size):
        values = (rng.randint(0, 6), rng.randint(0, 6))
        if values in seen:
            continue
        seen.add(values)
        tag = rng.choice((Tag.OLD, Tag.INSERT, Tag.DELETE))
        tagged.add(values, tag)
        if tag in (Tag.OLD, Tag.DELETE):
            before.add(values)
        if tag in (Tag.OLD, Tag.INSERT):
            after.add(values)
    return tagged, before, after


def test_e6_tag_tables(report, benchmark):
    # --- Join tag table -------------------------------------------------
    rows = []
    for left_name, right_name, expected_name in PAPER_JOIN_TABLE:
        left, right = Tag(left_name), Tag(right_name)
        got = combine_join_tags(left, right)
        assert got.value == expected_name
        rows.append([left_name, right_name, got.value, expected_name])
    assert len(JOIN_TAG_TABLE) == 9
    report(
        format_table(
            ["r1", "r2", "r1 ⋈ r2 (impl)", "paper"],
            rows,
            title="E6a  join tag table (Section 5.3) — all 9 cells match",
        )
    )

    # --- Unary tag table -------------------------------------------------
    unary_rows = []
    for tag in (Tag.INSERT, Tag.DELETE, Tag.OLD):
        got = unary_tag(tag)
        assert got is tag
        unary_rows.append([tag.value, got.value, tag.value])
    assert len(UNARY_TAG_TABLE) == 3
    report(
        format_table(
            ["r", "σ(r) / π(r) (impl)", "paper"],
            unary_rows,
            title="E6b  select/project tag table — all 3 cells match",
        )
    )

    # --- Semantics on random data ----------------------------------------
    rng = random.Random(66)
    r_schema = RelationSchema(["A", "B"])
    s_schema = RelationSchema(["B", "C"])
    checked = 0
    for _ in range(50):
        left, left_before, left_after = _random_tagged(r_schema, rng, 12)
        right, right_before, right_after = _random_tagged(s_schema, rng, 12)
        joined = tagged_join(left, right)
        want_before = join_relations(
            Relation.from_rows(r_schema, left_before),
            Relation.from_rows(s_schema, right_before),
        )
        want_after = join_relations(
            Relation.from_rows(r_schema, left_after),
            Relation.from_rows(s_schema, right_after),
        )
        got_before, got_after = set(), set()
        for values, tag, count in joined.items():
            assert count == 1
            if tag in (Tag.OLD, Tag.DELETE):
                got_before.add(values)
            if tag in (Tag.OLD, Tag.INSERT):
                got_after.add(values)
        assert got_before == set(want_before.value_tuples())
        assert got_after == set(want_after.value_tuples())
        checked += 1
    assert checked == 50

    big_left, _, _ = _random_tagged(r_schema, rng, 2000)
    big_right, _, _ = _random_tagged(s_schema, rng, 2000)
    benchmark(lambda: tagged_join(big_left, big_right))
