"""E16 — union views: SPJ lifted to SPJU by distributivity.

Section 5's machinery is powered by the distributivity of σ, π and ⋈
over union; :mod:`repro.extensions.union_views` turns that same fact
into a larger maintainable view class.  The experiment maintains a
two-branch union view ("hot orders": big pending orders ∪ orders from
priority customers) under an order stream and compares against
recomputing both branches per transaction.
"""

import random
import time

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.engine.database import Database
from repro.extensions.union_views import UnionView

TRANSACTIONS = 120


def _db(orders=3000, customers=300, seed=16):
    rng = random.Random(seed)
    db = Database()
    rows = set()
    while len(rows) < orders:
        rows.add(
            (len(rows), rng.randrange(customers), rng.randint(1, 5000),
             rng.randint(0, 3))
        )
    db.create_relation(
        "orders", ["order_id", "cust", "amount", "status"], sorted(rows)
    )
    db.create_relation(
        "priority", ["cust"], [(c,) for c in range(0, customers, 10)]
    )
    return db


def _branches():
    return [
        BaseRef("orders")
        .select("status = 0 and amount > 4000")
        .project(["order_id", "amount"]),
        BaseRef("orders")
        .join(BaseRef("priority"))
        .select("status = 0")
        .project(["order_id", "amount"]),
    ]


def _stream(db, seed=17):
    rng = random.Random(seed)
    next_id = 100_000
    for _ in range(TRANSACTIONS):
        with db.transact() as txn:
            txn.insert(
                "orders",
                (next_id, rng.randrange(300), rng.randint(1, 5000),
                 rng.randint(0, 3)),
            )
            next_id += 1


def test_e16_union_views(report, benchmark):
    # --- Differential union maintenance -------------------------------
    db = _db()
    view = UnionView(db, "hot", _branches())
    initial = len(view.contents)
    start = time.perf_counter()
    _stream(db)
    diff_seconds = time.perf_counter() - start
    view.verify()  # exact against branch-by-branch recomputation

    # --- Recompute-per-transaction baseline ----------------------------
    # Apply the same stream unmaintained, then time one full recompute:
    # a recompute-per-transaction policy pays that price every commit.
    db2 = _db()
    baseline = UnionView(db2, "hot", _branches())
    baseline.detach()  # take over maintenance manually
    _stream(db2)
    start = time.perf_counter()
    baseline.contents = baseline._materialize()
    one_recompute = time.perf_counter() - start
    assert baseline.contents == view.contents

    rows = [
        [
            "differential union (2 branches)",
            f"{diff_seconds / TRANSACTIONS * 1e6:.0f}",
            view.updates_applied,
        ],
        [
            "recompute both branches per txn (extrapolated)",
            f"{one_recompute * 1e6:.0f}",
            TRANSACTIONS,
        ],
    ]
    report(
        format_table(
            ["strategy", "us per txn", "maintenance rounds"],
            rows,
            title=(
                f"E16  union view (SPJU), |orders| = 3000, "
                f"{TRANSACTIONS} txns, started at {initial} tuples"
            ),
        )
    )
    assert diff_seconds / TRANSACTIONS < one_recompute

    db3 = _db()
    live = UnionView(db3, "hot", _branches())
    counter = [900_000]

    def one_txn():
        with db3.transact() as txn:
            txn.insert("orders", (counter[0], 5, 4500, 0))
            counter[0] += 1

    benchmark(one_txn)
