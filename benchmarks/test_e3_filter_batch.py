"""E3 — Algorithm 4.1: batch filtering vs per-tuple satisfiability.

Algorithm 4.1's point is amortization: normalize and classify the
condition once, build the *invariant* portion of the constraint graph
once (Floyd APSP), and then screen each tuple with only ground
evaluations and an O(B²) probe over its variant bounds.  The naive
alternative re-runs the full satisfiability procedure per tuple.

The experiment screens the same tuple batch both ways and reports
tuples/second plus the per-tuple operation counts.
"""

import random
import time

from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.schema import RelationSchema
from repro.bench.reporting import format_table
from repro.core.irrelevance import RelevanceFilter, is_irrelevant_update
from repro.instrumentation import CostRecorder, recording

CATALOG = {
    "r": RelationSchema(["A", "B"]),
    "s": RelationSchema(["C", "D", "E"]),
}

#: A view with a meaty condition: invariant atoms over s, variant atoms
#: over r, and join links — the shape Algorithm 4.1 amortizes best.
VIEW = (
    BaseRef("r")
    .product(BaseRef("s"))
    .select(
        "A < 100 and B = C and C > 5 and D <= E + 10 and E >= 2 and A <= D + 50"
    )
    .project(["A", "E"])
)


def _tuples(count: int, seed: int = 5):
    rng = random.Random(seed)
    return [(rng.randint(-50, 200), rng.randint(-10, 30)) for _ in range(count)]


def test_e3_batch_vs_naive(benchmark, report):
    nf = to_normal_form(VIEW, CATALOG)
    batch = _tuples(2000)

    # --- Algorithm 4.1: shared invariant precomputation ---------------
    start = time.perf_counter()
    screen = RelevanceFilter(nf, "r", CATALOG["r"])
    kept_batch = screen.filter_tuples(batch)
    batch_seconds = time.perf_counter() - start

    # --- Naive: full satisfiability per tuple -------------------------
    start = time.perf_counter()
    kept_naive = [
        t for t in batch if not is_irrelevant_update(nf, "r", t, CATALOG["r"])
    ]
    naive_seconds = time.perf_counter() - start

    assert kept_batch == kept_naive  # identical verdicts

    # Operation counts for one batch under each strategy.
    rec_batch, rec_naive = CostRecorder(), CostRecorder()
    with recording(rec_batch):
        RelevanceFilter(nf, "r", CATALOG["r"]).filter_tuples(batch)
    with recording(rec_naive):
        for t in batch:
            is_irrelevant_update(nf, "r", t, CATALOG["r"])

    speedup = naive_seconds / batch_seconds
    rows = [
        [
            "Algorithm 4.1 (batched)",
            f"{len(batch) / batch_seconds:,.0f}",
            rec_batch.get("floyd_warshall_runs"),
            rec_batch.get("bellman_ford_runs"),
            "1.0",
        ],
        [
            "naive per-tuple sat",
            f"{len(batch) / naive_seconds:,.0f}",
            rec_naive.get("floyd_warshall_runs"),
            rec_naive.get("bellman_ford_runs"),
            f"{1 / speedup:.2f}",
        ],
    ]
    report(
        format_table(
            [
                "strategy",
                "tuples/second",
                "Floyd runs",
                "Bellman runs",
                "relative time",
            ],
            rows,
            title=(
                f"E3  Algorithm 4.1 batch filter vs naive "
                f"({len(batch)} tuples, {len(kept_batch)} relevant) — "
                f"speedup x{speedup:.1f}"
            ),
        )
    )
    # The batched screen must run the graph algorithm a constant number
    # of times, not once per tuple.
    assert rec_batch.get("floyd_warshall_runs") <= 4
    assert speedup > 1.5

    benchmark(lambda: RelevanceFilter(nf, "r", CATALOG["r"]).filter_tuples(batch))
