"""E21 — compiled-plan cache: many-small-transactions throughput.

The tentpole claim: everything derivable from a view definition alone —
relevance screens with their invariant APSP, truth-table row planners
with join order and pushdown, index bindings — should be built once at
registration and *executed* per transaction, not rebuilt per
transaction.  This experiment runs the same stream of small single- and
two-relation transactions with the plan cache on and off
(``use_plan_cache=False`` recompiles a throwaway plan per maintenance
call, the pre-cache behavior) and reports per-transaction time plus the
cache counters, asserting that plan reuse wins and that the cached run
is all hits after the initial registration compile.

Set ``REPRO_E21_SMOKE=1`` (CI does) to shrink the workload to a smoke
run that checks the machinery rather than the numbers.
"""

import random
import time

from benchmarks.conftest import smoke_env
from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.instrumentation import CostRecorder, recording

SMOKE = smoke_env("E21")
TRANSACTIONS = 40 if SMOKE else 400
BASE = 500 if SMOKE else 4000
VIEWS = 2 if SMOKE else 4

#: A few structurally different views so each transaction exercises
#: several compiled plans (screens with non-trivial invariant parts,
#: multi-relation joins, a projection with counting).
VIEW_EXPRS = {
    "join_ac": BaseRef("r").join(BaseRef("s")).select("C >= 100").project(["A", "C"]),
    "narrow": BaseRef("r").select("A < 50 and B >= 10").project(["B"]),
    "wide_join": BaseRef("r").join(BaseRef("s")).select("B = B and C < 400"),
    "proj_count": BaseRef("s").project(["C"]),
}


def _make_db(seed=21):
    rng = random.Random(seed)
    db = Database()
    rows = {(i, rng.randint(0, 500)) for i in range(BASE)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(b, rng.randint(0, 500)) for b in range(501)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


def _run_stream(use_plan_cache):
    db = _make_db()
    maintainer = ViewMaintainer(db, use_plan_cache=use_plan_cache)
    for name, expr in list(VIEW_EXPRS.items())[:VIEWS]:
        maintainer.define_view(name, expr)
    rng = random.Random(5)
    recorder = CostRecorder()
    start = time.perf_counter()
    with recording(recorder):
        for i in range(TRANSACTIONS):
            with db.transact() as txn:
                txn.insert("r", (BASE + i, rng.randint(0, 500)))
                if i % 3 == 0:
                    txn.insert("s", (rng.randint(0, 500), rng.randint(0, 500)))
    elapsed = time.perf_counter() - start
    return elapsed, recorder, maintainer


def test_e21_plan_cache(report, benchmark):
    cached_time, cached_rec, cached = _run_stream(True)
    fresh_time, fresh_rec, fresh = _run_stream(False)

    # Identical view contents — plan reuse is purely an optimization.
    for name in cached.view_names():
        assert cached.view(name).contents == fresh.view(name).contents

    cached_stats = cached.plan_cache_stats()
    fresh_stats = fresh.plan_cache_stats()
    rows = [
        [
            "compiled plans (cached)",
            f"{cached_time / TRANSACTIONS * 1e6:.0f}",
            cached_stats["plan_cache_hits"],
            cached_stats["plan_cache_misses"],
            f"{TRANSACTIONS / cached_time:.0f}",
        ],
        [
            "fresh plan per txn (ablation)",
            f"{fresh_time / TRANSACTIONS * 1e6:.0f}",
            fresh_stats["plan_cache_hits"],
            fresh_stats["plan_cache_misses"],
            f"{TRANSACTIONS / fresh_time:.0f}",
        ],
    ]
    report(
        format_table(
            ["strategy", "us per txn", "plan hits", "plan misses", "txns/s"],
            rows,
            title=(
                f"E21  plan-cache ablation ({VIEWS} views, |r| = {BASE}, "
                f"{TRANSACTIONS} small txns)"
            ),
        )
    )

    # Steady state is all hits: the only compilations happened at view
    # registration (before the recorded stream).
    assert cached_stats["plan_cache_misses"] == 0
    assert cached_stats["plan_cache_hits"] >= TRANSACTIONS
    assert cached_rec.get("plan_cache_hits") == cached_stats["plan_cache_hits"]
    # The ablation compiles once per (view, maintenance call): no hits.
    assert fresh_stats["plan_cache_hits"] == 0
    assert fresh_stats["plan_cache_misses"] >= TRANSACTIONS
    if not SMOKE:
        assert cached_time < fresh_time, (
            f"plan reuse should beat per-transaction compilation "
            f"({cached_time:.3f}s vs {fresh_time:.3f}s)"
        )

    db = _make_db()
    maintainer = ViewMaintainer(db, use_plan_cache=True)
    for name, expr in list(VIEW_EXPRS.items())[:VIEWS]:
        maintainer.define_view(name, expr)
    counter = [1_000_000]

    def one_txn():
        with db.transact() as txn:
            txn.insert("r", (counter[0], counter[0] % 500))
            counter[0] += 1

    benchmark(one_txn)
