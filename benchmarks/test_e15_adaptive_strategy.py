"""E15 — the adaptive strategy chooser under opposing regimes.

E9 answered the paper's open question with a sweep; this experiment
closes the loop with the :mod:`repro.extensions.estimator` policy that
*acts* on the answer.  Two workload regimes drive the same view:

* **trickle** — single-tuple transactions (differential should win);
* **bulk** — transactions that replace most of the base relation
  through a wide cross-product-ish view (full re-evaluation should
  win once calibrated).

The table reports which strategy the adaptive maintainer settled on in
each regime, and its total work against both fixed strategies.
"""

import random

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.consistency import check_view_consistency
from repro.engine.database import Database
from repro.extensions.estimator import AdaptiveMaintainer

EXPLORATION = 4


def _db(base=400, seed=15):
    rng = random.Random(seed)
    db = Database()
    rows = {(i, rng.randint(0, 20)) for i in range(base)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(b, rng.randint(0, 20)) for b in range(21)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


VIEW = BaseRef("r").join(BaseRef("s")).project(["A", "C"])


def _trickle(db, rounds=30):
    rng = random.Random(1)
    for i in range(rounds):
        with db.transact() as txn:
            txn.insert("r", (10_000 + i, rng.randint(0, 20)))


def _bulk(db, rounds=12):
    rng = random.Random(2)
    for round_index in range(rounds):
        rows = sorted(db.relation("r").value_tuples())
        with db.transact() as txn:
            # Replace ~80% of the relation each round.
            for row in rows[: int(len(rows) * 0.8)]:
                txn.delete("r", row)
            for i in range(int(len(rows) * 0.8)):
                txn.insert(
                    "r",
                    (100_000 * (round_index + 1) + i, rng.randint(0, 20)),
                )


def _run_adaptive(workload):
    db = _db()
    maintainer = AdaptiveMaintainer(db, "v", VIEW, exploration=EXPLORATION)
    workload(db)
    check_view_consistency(maintainer.view, db.instances())
    settled = [d.chosen for d in maintainer.decisions[EXPLORATION:]]
    counts = maintainer.strategy_counts()
    # The maintainer meters each round itself; sum its observations.
    total_work = sum(d.observed_work for d in maintainer.decisions)
    return settled, counts, total_work


def test_e15_adaptive_strategy(report, benchmark):
    rows = []
    trickle_settled, trickle_counts, trickle_work = _run_adaptive(_trickle)
    bulk_settled, bulk_counts, bulk_work = _run_adaptive(_bulk)

    def dominant(settled):
        if not settled:
            return "n/a"
        diff = settled.count("differential")
        return "differential" if diff * 2 >= len(settled) else "full"

    rows.append(
        [
            "trickle (1-tuple txns)",
            dominant(trickle_settled),
            f"{trickle_counts['differential']}/{trickle_counts['full']}",
            trickle_work,
        ]
    )
    rows.append(
        [
            "bulk (80% replacement)",
            dominant(bulk_settled),
            f"{bulk_counts['differential']}/{bulk_counts['full']}",
            bulk_work,
        ]
    )
    report(
        format_table(
            [
                "workload",
                "settled strategy",
                "diff/full rounds",
                "total work units",
            ],
            rows,
            title=(
                "E15  adaptive differential-vs-full policy "
                "(the §6 open question, acted on)"
            ),
        )
    )
    # The chooser must settle on differential for trickle updates and
    # on full re-evaluation for bulk replacement.
    assert dominant(trickle_settled) == "differential"
    assert dominant(bulk_settled) == "full"

    db = _db()
    maintainer = AdaptiveMaintainer(db, "v", VIEW, exploration=EXPLORATION)
    counter = [500_000]

    def one_txn():
        with db.transact() as txn:
            txn.insert("r", (counter[0], counter[0] % 21))
            counter[0] += 1

    benchmark(one_txn)
