"""E1 — Example 4.1: relevant vs irrelevant updates, verbatim.

Reproduces the paper's worked example: on the printed instance of
r(A,B) and s(C,D) with view u = π_{A,D}(σ_{A<10 ∧ C>5 ∧ B=C}(r × s)),
inserting (9,10) into r is *relevant* while inserting (11,10) is
*(provably) irrelevant* — and the verdicts are independent of the
database state.  The benchmark measures the per-tuple cost of the
Algorithm 4.1 screen on this view.
"""

from repro.algebra.expressions import to_normal_form
from repro.bench.reporting import format_table
from repro.core.irrelevance import RelevanceFilter, is_irrelevant_update
from repro.workloads.scenarios import example_4_1

#: (tuple, paper verdict) — the two insertions discussed in Example 4.1
#: plus boundary probes around the A < 10 and B = C conditions.
CASES = [
    ((9, 10), "relevant"),
    ((11, 10), "irrelevant"),
    ((0, 6), "relevant"),
    ((0, 5), "irrelevant"),  # B = 5 forces C = 5, violating C > 5
    ((10, 10), "irrelevant"),  # A = 10 violates A < 10
    ((-100, 1000), "relevant"),
]


def test_e1_example_4_1(benchmark, report):
    scenario = example_4_1()
    nf = to_normal_form(scenario.expression, scenario.database.schema_catalog())
    schema = scenario.database.relation("r").schema

    rows = []
    for tup, expected in CASES:
        verdict = (
            "irrelevant"
            if is_irrelevant_update(nf, "r", tup, schema)
            else "relevant"
        )
        assert verdict == expected, tup
        rows.append([str(tup), verdict, expected])

    # State independence: the verdicts are pure functions of the view
    # definition, so the screen needs no database access at all.
    screen = RelevanceFilter(nf, "r", schema)
    for tup, expected in CASES:
        assert screen.is_relevant(tup) == (expected == "relevant")

    tuples = [tup for tup, _ in CASES] * 50
    benchmark(lambda: RelevanceFilter(nf, "r", schema).filter_tuples(tuples))

    report(
        format_table(
            ["insert into r", "verdict", "paper"],
            rows,
            title=(
                "E1  Example 4.1 — irrelevant-update detection "
                "(state-independent)"
            ),
        )
    )
