"""E22 — sharded-cluster scaling and the routed-vs-broadcast ablation.

Two questions about the cluster subsystem, answered on the same fixed
transaction stream:

* **Scaling** — the same committed workload on 1, 2 and 4 shards.
  Each transaction costs a full two-phase commit, so single-client
  latency does not *drop* with shards; what the table shows is the
  price of coordination (per-txn time vs. shard count) next to what
  sharding buys structurally: per-shard data volume and, with routing,
  network sends that grow sublinearly in the shard count.
* **Ablation** — analyzer-driven routing against broadcast on the
  widest cluster.  The routing oracle (Theorem 4.1 quantified over
  each shard's key-range constraints) must change *only* the send
  count: merged view contents are asserted identical, and the skipped
  sends are exactly the broadcast run's surplus.

Set ``REPRO_E22_SMOKE=1`` (CI does) to shrink the stream to a smoke
run of the same code paths.  Set ``REPRO_E22_RECORD=1`` to append the
measured numbers to ``BENCH_E22.json`` at the repo root — the
benchmark trajectory tracked across PRs (ROADMAP: record before/after
numbers whenever the hot path changes).
"""

import json
import random
import time
from datetime import date
from pathlib import Path

from benchmarks.conftest import env_flag, smoke_env
from repro.bench.reporting import format_table
from repro.cluster import build_cluster
from repro.cluster.sim import VALUE_RANGE, cluster_workload

SMOKE = smoke_env("E22")
RECORD = env_flag("REPRO_E22_RECORD")
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_E22.json"

TXNS = 40 if SMOKE else 300
SHARD_COUNTS = (1, 2, 4)
ABLATION_SHARDS = 4


def _stream(count):
    """A seeded, always-committing transaction stream."""
    rng = random.Random(22)
    ops = []
    for _ in range(count):
        inserts, deletes = {}, {}
        for _ in range(rng.randint(1, 3)):
            relation = rng.choice(["r", "r", "s", "t"])
            row = [rng.randrange(VALUE_RANGE), rng.randrange(VALUE_RANGE)]
            target = deletes if rng.random() < 0.35 else inserts
            target.setdefault(relation, []).append(row)
        ops.append((inserts, deletes))
    return ops


def _run(shards, routed=True):
    topology, tables, rows, constraints, _, views = cluster_workload(shards)
    coordinator = build_cluster(
        topology, tables, rows, constraints, views, routed=routed
    )
    start = time.perf_counter()
    for inserts, deletes in _stream(TXNS):
        txn_id = coordinator.submit(inserts=inserts, deletes=deletes)
        outcome = coordinator.outcome(txn_id)
        assert outcome is not None and outcome["status"] == "committed"
    elapsed = time.perf_counter() - start
    return elapsed, coordinator


def _record(entry):
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_e22_cluster_scaling(report, benchmark):
    runs = {}
    for shards in SHARD_COUNTS:
        runs[shards] = _run(shards)

    rows = []
    for shards, (elapsed, coordinator) in runs.items():
        counters = coordinator.recorder.counters
        rows.append(
            [
                shards,
                f"{elapsed / TXNS * 1e6:.0f}",
                counters.get("cluster_deltas_sent", 0),
                counters.get("cluster_deltas_skipped", 0),
                counters.get("cluster_routing_proofs", 0),
                f"{TXNS / elapsed:.0f}",
            ]
        )
    report(
        format_table(
            [
                "shards",
                "us per txn",
                "deltas sent",
                "deltas skipped",
                "routing proofs",
                "txns/s",
            ],
            rows,
            title=f"E22  cluster scaling ({TXNS} txns, routed)",
        )
    )

    # Every configuration agrees on merged base relations.  (The
    # workload's view definitions derive their selection cut from the
    # shard boundaries, so view contents are only comparable between
    # clusters of the same width — the ablation below does that.)
    reference = runs[SHARD_COUNTS[0]][1]
    for shards in SHARD_COUNTS[1:]:
        coordinator = runs[shards][1]
        for name in ("r", "s", "t"):
            assert (
                coordinator.merged_counts(name)[0]
                == reference.merged_counts(name)[0]
            ), (shards, name)
    # A single-shard cluster has nowhere to skip to; wider ones do.
    assert runs[1][1].recorder.counters.get("cluster_deltas_skipped", 0) == 0
    for shards in (2, 4):
        assert (
            runs[shards][1].recorder.counters.get("cluster_deltas_skipped", 0)
            > 0
        ), shards

    # -- routed vs broadcast on the widest cluster ---------------------
    routed_time, routed_coord = runs[ABLATION_SHARDS]
    broadcast_time, broadcast_coord = _run(ABLATION_SHARDS, routed=False)
    routed_counters = routed_coord.recorder.counters
    broadcast_counters = broadcast_coord.recorder.counters
    ablation_rows = [
        [
            "routed (Theorem 4.1 oracle)",
            f"{routed_time / TXNS * 1e6:.0f}",
            routed_counters.get("cluster_deltas_sent", 0),
            routed_counters.get("cluster_deltas_skipped", 0),
        ],
        [
            "broadcast (ablation)",
            f"{broadcast_time / TXNS * 1e6:.0f}",
            broadcast_counters.get("cluster_deltas_sent", 0),
            broadcast_counters.get("cluster_deltas_skipped", 0),
        ],
    ]
    report(
        format_table(
            ["delta routing", "us per txn", "deltas sent", "deltas skipped"],
            ablation_rows,
            title=(
                f"E22  routing ablation ({ABLATION_SHARDS} shards, "
                f"{TXNS} txns)"
            ),
        )
    )

    # Routing changes the send count and nothing else.
    for name in list(routed_coord.views) + ["r", "s", "t"]:
        assert (
            routed_coord.merged_counts(name)[0]
            == broadcast_coord.merged_counts(name)[0]
        ), name
    skipped = routed_counters.get("cluster_deltas_skipped", 0)
    assert skipped > 0
    assert broadcast_counters.get("cluster_deltas_skipped", 0) == 0
    assert (
        broadcast_counters["cluster_deltas_sent"]
        == routed_counters["cluster_deltas_sent"] + skipped
    )

    if RECORD:
        _record(
            {
                "experiment": "E22",
                "date": date.today().isoformat(),
                "smoke": SMOKE,
                "txns": TXNS,
                "scaling": {
                    str(shards): {
                        "us_per_txn": round(elapsed / TXNS * 1e6, 1),
                        "deltas_sent": coordinator.recorder.counters.get(
                            "cluster_deltas_sent", 0
                        ),
                        "deltas_skipped": coordinator.recorder.counters.get(
                            "cluster_deltas_skipped", 0
                        ),
                    }
                    for shards, (elapsed, coordinator) in runs.items()
                },
                "ablation": {
                    "shards": ABLATION_SHARDS,
                    "routed_us_per_txn": round(routed_time / TXNS * 1e6, 1),
                    "broadcast_us_per_txn": round(
                        broadcast_time / TXNS * 1e6, 1
                    ),
                    "sends_avoided": skipped,
                },
            }
        )

    # One micro-benchmark sample: a routed cross-shard transaction.
    cluster = _run(2)[1]

    def one_txn():
        txn_id = cluster.submit(inserts={"r": [[0, 1], [5, 1]], "s": [[1, 1]]})
        assert cluster.outcome(txn_id)["status"] == "committed"

    benchmark(one_txn)
