"""E9 — when is differential cheaper than complete re-evaluation?

The paper's conclusions pose exactly this: "a next step in this
direction is to determine under what circumstances differential
re-evaluation is more efficient than complete re-evaluation of the
expression defining the view."  This experiment answers it empirically:
sweep the update-batch size as a fraction of the base relation and
report both strategies' times and the winner — the crossover sits where
the delta stops being small relative to the base.
"""

import time

from repro.algebra.expressions import BaseRef, to_normal_form
from repro.algebra.relation import Delta
from repro.bench.reporting import format_table
from repro.core.differential import compute_view_delta
from repro.core.planner import evaluate_normal_form
from repro.workloads.generators import generate_chain_database

BASE = 3000
FRACTIONS = [0.001, 0.01, 0.05, 0.2, 0.5, 1.0]


def _setting(fraction):
    db, names = generate_chain_database(2, BASE, value_range=(0, 300), seed=3)
    expr = BaseRef(names[0]).join(BaseRef(names[1]))
    nf = to_normal_form(expr, db.schema_catalog())
    schema = db.relation("r1").schema
    count = max(1, int(BASE * fraction))
    inserted = [(10_000 + i, i % 300) for i in range(count)]
    deltas = {"r1": Delta(schema, inserted=inserted)}
    for values in inserted:
        db.relation("r1").add(values)
    return db, nf, deltas


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e9_crossover(report, benchmark):
    rows = []
    winners = []
    for fraction in FRACTIONS:
        db, nf, deltas = _setting(fraction)
        diff_seconds = _time(
            lambda: compute_view_delta(nf, db.instances(), deltas)
        )
        full_seconds = _time(
            lambda: evaluate_normal_form(nf, db.instances())
        )
        winner = "differential" if diff_seconds < full_seconds else "full"
        winners.append((fraction, winner))
        rows.append(
            [
                f"{fraction:.3f}",
                f"{diff_seconds * 1e3:.2f}",
                f"{full_seconds * 1e3:.2f}",
                f"{full_seconds / diff_seconds:.2f}",
                winner,
            ]
        )
    report(
        format_table(
            [
                "|delta| / |base|",
                "differential ms",
                "full re-eval ms",
                "full/diff ratio",
                "winner",
            ],
            rows,
            title=(
                "E9  differential vs complete re-evaluation crossover "
                f"(2-way join, |base| = {BASE})"
            ),
        )
    )
    # Shape assertions: differential wins clearly at tiny deltas, and
    # its advantage shrinks monotonically-ish toward whole-relation
    # deltas (at fraction 1.0 the delta rows redo all the work and
    # more, so full re-evaluation is at least competitive).
    assert winners[0][1] == "differential"
    first_ratio = float(rows[0][3])
    last_ratio = float(rows[-1][3])
    assert first_ratio > 3 * last_ratio

    db, nf, deltas = _setting(0.01)
    benchmark(lambda: compute_view_delta(nf, db.instances(), deltas))
