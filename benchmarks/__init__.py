"""Paper-experiment benchmarks (a package so tests can import conftest helpers)."""
