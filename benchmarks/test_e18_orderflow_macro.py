"""E18 — macro benchmark: the whole system under a realistic workload.

Four views — a selective SPJ view, a *stacked* view over it, a join
view against the product table, and a counted region-activity
projection — maintained simultaneously over a mixed order-flow stream
(inserts, status updates, price changes).  Compared against complete
re-evaluation of the same non-stacked views per transaction, with all
final states cross-checked.  This is the "downstream user" workload:
everything the repository provides, engaged at once.
"""

import time

from repro.algebra.evaluate import evaluate
from repro.baselines.full_reevaluation import FullReevaluationMaintainer
from repro.bench.reporting import format_table
from repro.core.consistency import compare_relations
from repro.core.maintainer import ViewMaintainer
from repro.workloads.orderflow import OrderFlow

TRANSACTIONS = 150


def test_e18_orderflow_macro(report, benchmark):
    # --- Differential maintenance of all four views --------------------
    flow = OrderFlow()
    maintainer = ViewMaintainer(flow.database)
    for name, expression in flow.view_definitions().items():
        maintainer.define_view(name, expression)
    start = time.perf_counter()
    for _ in flow.transactions(TRANSACTIONS):
        pass
    diff_seconds = time.perf_counter() - start

    # --- Baseline: recompute the three non-stacked views per txn -------
    baseline_flow = OrderFlow()
    baseline = FullReevaluationMaintainer(baseline_flow.database)
    definitions = baseline_flow.view_definitions()
    for name in ("open_lines", "pricey_open", "region_activity"):
        baseline.define_view(name, definitions[name])
    start = time.perf_counter()
    for _ in baseline_flow.transactions(TRANSACTIONS):
        pass
    full_seconds = time.perf_counter() - start

    # --- Cross-check every view ----------------------------------------
    for name in ("open_lines", "pricey_open", "region_activity"):
        assert (
            maintainer.view(name).contents == baseline.view(name).contents
        ), name
    # The stacked view against direct evaluation over combined instances.
    stacked_truth = evaluate(
        flow.view_definitions()["open_premium"],
        maintainer._combined_instances(),
    )
    stacked_report = compare_relations(
        "open_premium", maintainer.view("open_premium").contents, stacked_truth
    )
    assert stacked_report.is_consistent(), stacked_report.summary()

    totals = {
        "screened": 0,
        "irrelevant": 0,
        "skipped": 0,
        "applied": 0,
    }
    for name in maintainer.view_names():
        stats = maintainer.stats(name)
        totals["screened"] += stats.tuples_screened
        totals["irrelevant"] += stats.tuples_irrelevant
        totals["skipped"] += stats.transactions_skipped
        totals["applied"] += stats.deltas_applied

    rows = [
        [
            "differential (4 views incl. stacked)",
            f"{diff_seconds / TRANSACTIONS * 1e3:.2f}",
            totals["applied"],
            f"{totals['irrelevant']}/{totals['screened']}",
            totals["skipped"],
        ],
        [
            "full re-eval (3 views)",
            f"{full_seconds / TRANSACTIONS * 1e3:.2f}",
            sum(baseline.recomputations.values()),
            "-",
            0,
        ],
    ]
    report(
        format_table(
            [
                "strategy",
                "ms per txn",
                "maintenance rounds",
                "irrelevant/screened",
                "txns skipped",
            ],
            rows,
            title=(
                f"E18  order-flow macro workload: {TRANSACTIONS} mixed "
                "txns over customer/product/lineitem"
            ),
        )
    )
    assert diff_seconds < full_seconds

    bench_flow = OrderFlow(lineitems=1000)
    bench_maintainer = ViewMaintainer(bench_flow.database)
    for name, expression in bench_flow.view_definitions().items():
        bench_maintainer.define_view(name, expression)
    stream = bench_flow.transactions(100_000)

    def one_txn():
        next(stream)

    benchmark(one_txn)
