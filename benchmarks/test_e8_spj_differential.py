"""E8 — Algorithm 5.1 end to end: SPJ views under real transactions.

Runs the sales scenario (the [GSV84] real-time-query motivation) with
the full maintainer pipeline against the complete-re-evaluation
baseline, across transaction batch sizes.  Reports per-transaction
time for both and the speedup — the shape the paper predicts: the
smaller the batch relative to the base, the bigger the differential
win.
"""

import random
import time

from repro.baselines.full_reevaluation import FullReevaluationMaintainer
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.workloads.scenarios import sales_scenario

BATCH_SIZES = [1, 10, 100]
TRANSACTIONS = 30


def _run(batch_size, use_differential):
    scenario = sales_scenario(customers=400, orders=4000, seed=13)
    db = scenario.database
    if use_differential:
        maintainer = ViewMaintainer(db)
        view = maintainer.define_view(scenario.view_name, scenario.expression)
    else:
        maintainer = FullReevaluationMaintainer(db)
        view = maintainer.define_view(scenario.view_name, scenario.expression)

    rng = random.Random(batch_size)
    next_id = 4000
    start = time.perf_counter()
    for _ in range(TRANSACTIONS):
        with db.transact() as txn:
            for _ in range(batch_size):
                txn.insert(
                    "orders",
                    (next_id, rng.randrange(400), rng.randint(1, 5000),
                     rng.randint(0, 3)),
                )
                next_id += 1
    elapsed = time.perf_counter() - start
    return elapsed / TRANSACTIONS, view.contents


def test_e8_spj_differential_vs_full(report, benchmark):
    rows = []
    for batch in BATCH_SIZES:
        diff_seconds, diff_view = _run(batch, use_differential=True)
        full_seconds, full_view = _run(batch, use_differential=False)
        assert diff_view == full_view  # identical final views
        rows.append(
            [
                batch,
                f"{diff_seconds * 1e3:.2f}",
                f"{full_seconds * 1e3:.2f}",
                f"x{full_seconds / diff_seconds:.1f}",
            ]
        )
    report(
        format_table(
            [
                "txn batch size",
                "differential ms/txn",
                "full re-eval ms/txn",
                "speedup",
            ],
            rows,
            title=(
                "E8  SPJ view maintenance (sales scenario, |orders| = 4000) "
                "— differential wins, most at small batches"
            ),
        )
    )
    # The headline claim: differential beats recomputation for small
    # transactions.
    first = rows[0]
    assert float(first[1]) < float(first[2])

    scenario = sales_scenario(customers=200, orders=1000, seed=13)
    db = scenario.database
    maintainer = ViewMaintainer(db)
    maintainer.define_view(scenario.view_name, scenario.expression)
    counter = [10_000]

    def one_txn():
        with db.transact() as txn:
            txn.insert("orders", (counter[0], 5, 3000, 0))
            counter[0] += 1

    benchmark(one_txn)
