"""E24 — codegen'd batch kernels vs the per-tuple interpreter.

The compiled maintenance hot path (docs/codegen.md) replaces the
interpreter's per-tuple dispatch with generated Python closures: one
screen kernel per (view, relation-occurrence) evaluating the
invariant/variant split over a whole delta batch, one row kernel per
truth-table shape driving join probes through pre-resolved bindings,
and one apply kernel folding projection and multiplicity counting in
bulk.  This experiment drives the Example 4.1 view
``u = π_{A,D}(σ_{A<10 ∧ C>5 ∧ B=C}(r × s))`` — plus a selection view
and a counted projection view, so all three Section 5 special cases
are on the hot path — through an identical seeded commit stream twice:
once with ``use_codegen=True`` (the default) and once pinned to the
interpreter.  The ablation asserts:

* the maintained view contents are byte-for-byte identical, and every
  abstract work counter the interpreter charges (tuples scanned, join
  probes, truth-table rows, screen evaluations, memo hits, …) is
  charged identically by the kernels — the speedup is pure dispatch
  overhead, not work skipped;
* the codegen run is faster in wall-clock terms (skipped under
  ``REPRO_E24_SMOKE=1``, where streams are too short to time).

Set ``REPRO_E24_SMOKE=1`` (CI does) to shrink the stream to a smoke
run of the same code paths.  Set ``REPRO_E24_RECORD=1`` to append the
measured numbers to ``BENCH_E24.json`` at the repo root.
"""

import json
import random
import time
from datetime import date
from pathlib import Path

from benchmarks.conftest import record_env, smoke_env
from repro import BaseRef, Database, ViewMaintainer
from repro.bench.reporting import format_table
from repro.instrumentation import CostRecorder, recording

SMOKE = smoke_env("E24")
RECORD = record_env("E24")
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_E24.json"

TXNS = 30 if SMOKE else 250
SEED_ROWS = 40 if SMOKE else 250
#: Timing repeats per mode; the minimum is reported (noise shrinks the
#: minimum toward the true cost, never below it).
REPEATS = 1 if SMOKE else 3

#: All three Section 5 special cases plus the Example 4.1 join view.
VIEWS = {
    "u": BaseRef("r")
    .product(BaseRef("s"))
    .select("A < 10 and C > 5 and B = C")
    .project(["A", "D"]),
    "sel": BaseRef("r").select("A < 10 and B > 2"),
    "proj": BaseRef("s").project(["D"]),
}

#: Values straddle the A < 10 screen boundary so the stream mixes
#: relevant and (statically) irrelevant updates, as in Example 4.1.
VALUE_RANGE = (-5, 25)


def _seeded_database():
    rng = random.Random(24)

    def distinct_rows(count):
        rows = set()
        while len(rows) < count:
            rows.add(
                (rng.randint(*VALUE_RANGE), rng.randint(*VALUE_RANGE))
            )
        return sorted(rows)

    db = Database()
    db.create_relation("r", ["A", "B"], distinct_rows(SEED_ROWS))
    db.create_relation("s", ["C", "D"], distinct_rows(SEED_ROWS))
    return db


def _churn(db, txns, seed):
    """Commit a seeded stream of mixed inserts and deletes."""
    rng = random.Random(seed)
    live = {name: set(db.relation(name).value_tuples()) for name in ("r", "s")}
    for _ in range(txns):
        with db.transact() as txn:
            for _ in range(rng.randint(1, 4)):
                name = rng.choice(["r", "r", "s"])
                if live[name] and rng.random() < 0.3:
                    row = rng.choice(sorted(live[name]))
                    txn.delete(name, row)
                    live[name].discard(row)
                else:
                    row = (
                        rng.randint(*VALUE_RANGE),
                        rng.randint(*VALUE_RANGE),
                    )
                    txn.insert(name, row)
                    live[name].add(row)


def _run_stream(use_codegen):
    """One full maintenance run; returns (seconds, counters, contents,

    codegen stats).  Identical seeds on both sides make the commit
    streams — and therefore the work — byte-for-byte comparable.
    """
    best = None
    for _ in range(REPEATS):
        db = _seeded_database()
        maintainer = ViewMaintainer(db, use_codegen=use_codegen)
        for name, expression in VIEWS.items():
            maintainer.define_view(name, expression)
        recorder = CostRecorder()
        start = time.perf_counter()
        with recording(recorder):
            _churn(db, TXNS, seed=7)
        elapsed = time.perf_counter() - start
        maintainer.verify_all()
        contents = {
            name: dict(maintainer.view(name).contents.counts())
            for name in VIEWS
        }
        stats = maintainer.codegen_stats().as_dict()
        if best is None or elapsed < best[0]:
            best = (elapsed, recorder.snapshot(), contents, stats)
    return best


#: Counters the kernels charge in bulk; parity on these is the "same
#: work, cheaper dispatch" claim.  Codegen-only counters are excluded.
PARITY_COUNTERS = (
    "tuples_scanned",
    "join_probes",
    "tuples_emitted",
    "tuples_ignored",
    "truth_table_rows",
    "delta_rows_evaluated",
    "subexpression_memo_hits",
    "filter_tuples_checked",
    "filter_ground_evals",
    "filter_bound_probes",
    "differential_updates",
)


def _record(entry):
    trajectory = []
    if TRAJECTORY.exists():
        trajectory = json.loads(TRAJECTORY.read_text())
    trajectory.append(entry)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=2) + "\n")


def test_e24_codegen_ablation(report, benchmark):
    compiled_s, compiled_counters, compiled_views, compiled_stats = (
        _run_stream(use_codegen=True)
    )
    interp_s, interp_counters, interp_views, interp_stats = _run_stream(
        use_codegen=False
    )

    # Byte-for-byte agreement: same view contents, same abstract work.
    assert compiled_views == interp_views
    for name in PARITY_COUNTERS:
        assert compiled_counters.get(name, 0) == interp_counters.get(
            name, 0
        ), name

    # The kernels actually ran (and the interpreter run never compiled).
    assert compiled_stats["codegen_plans_compiled"] > 0
    assert compiled_stats["codegen_batch_rows"] > 0
    assert compiled_stats["codegen_fallback_tuples"] == 0
    assert interp_stats["codegen_plans_compiled"] == 0
    assert interp_stats["codegen_batch_rows"] == 0

    speedup = interp_s / compiled_s if compiled_s else float("inf")
    rows = [
        [
            "codegen",
            f"{compiled_s * 1e3:.1f}",
            compiled_counters.get("tuples_scanned", 0),
            compiled_counters.get("truth_table_rows", 0),
            compiled_stats["codegen_batch_rows"],
        ],
        [
            "interpreter",
            f"{interp_s * 1e3:.1f}",
            interp_counters.get("tuples_scanned", 0),
            interp_counters.get("truth_table_rows", 0),
            interp_stats["codegen_batch_rows"],
        ],
    ]
    report(
        format_table(
            [
                "mode",
                "stream ms",
                "tuples scanned",
                "tt rows",
                "batch rows",
            ],
            rows,
            title=(
                f"E24  codegen ablation ({TXNS} txns, identical work, "
                f"speedup {speedup:.2f}x)"
            ),
        )
    )

    # The headline claim — skipped in smoke runs, whose streams are too
    # short for wall-clock to dominate noise.
    if not SMOKE:
        assert compiled_s < interp_s, (
            f"codegen {compiled_s:.4f}s not faster than "
            f"interpreter {interp_s:.4f}s"
        )

    if RECORD:
        _record(
            {
                "experiment": "E24",
                "date": date.today().isoformat(),
                "smoke": SMOKE,
                "txns": TXNS,
                "codegen_ms": round(compiled_s * 1e3, 2),
                "interpreter_ms": round(interp_s * 1e3, 2),
                "speedup": round(speedup, 3),
                "codegen": compiled_stats,
                "parity_counters": {
                    name: compiled_counters.get(name, 0)
                    for name in PARITY_COUNTERS
                },
            }
        )

    # One micro-benchmark sample: a single relevant commit maintained
    # through the generated kernels.
    bench_db = _seeded_database()
    bench_maintainer = ViewMaintainer(bench_db, use_codegen=True)
    for name, expression in VIEWS.items():
        bench_maintainer.define_view(name, expression)
    bench_rng = random.Random(1)

    def commit_once():
        with bench_db.transact() as txn:
            txn.insert(
                "r",
                (bench_rng.randint(*VALUE_RANGE), bench_rng.randint(*VALUE_RANGE)),
            )

    benchmark(commit_once)
