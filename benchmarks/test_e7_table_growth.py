"""E7 — truth-table construction is O(2^k), independent of p.

The paper: "In practice, it is not necessary to build a table with 2^p
rows ... Assuming that only k such relations were modified, building
the table can be done in time O(2^k)."

Two sweeps: rows produced as k grows (p fixed), and construction time
as p grows (k fixed) — the latter must stay flat in row count.
"""

import time

from repro.bench.reporting import format_table
from repro.core.truthtable import count_delta_rows, enumerate_delta_rows


def _build(p, k):
    return list(enumerate_delta_rows(p, range(k)))


def test_e7_growth_in_k(report, benchmark):
    p = 16
    rows = []
    timings = {}
    for k in range(1, 11):
        start = time.perf_counter()
        built = _build(p, k)
        timings[k] = time.perf_counter() - start
        assert len(built) == 2**k - 1 == count_delta_rows(k)
        rows.append([k, len(built), f"{timings[k] * 1e6:.0f} us"])
    report(
        format_table(
            ["modified relations k", "rows built (2^k - 1)", "time"],
            rows,
            title=f"E7a  truth-table growth in k (p = {p} fixed)",
        )
    )
    # Doubling behaviour: each +1 in k roughly doubles the rows.
    assert timings[10] > timings[5]

    benchmark(lambda: _build(p, 8))


def test_e7_independent_of_p(report, benchmark):
    k = 3
    rows = []
    for p in (4, 16, 64, 256):
        start = time.perf_counter()
        built = _build(p, k)
        elapsed = time.perf_counter() - start
        assert len(built) == 2**k - 1
        rows.append([p, len(built), f"{elapsed * 1e6:.0f} us"])
    report(
        format_table(
            ["view relations p", "rows built", "time"],
            rows,
            title=(
                "E7b  row count is independent of p (k = 3 fixed) — "
                "never 2^p"
            ),
        )
    )
    benchmark(lambda: _build(256, k))
