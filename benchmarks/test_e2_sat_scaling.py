"""E2 — satisfiability cost scaling (§4 complexity claims).

The paper: deciding a conjunction "can be done in time O(n³) where n is
the number of variables", via normalization + constraint graph +
Floyd's algorithm; a DNF of m conjunctions costs O(m·n³).

The experiment times Floyd's algorithm on chain conjunctions of growing
variable count and reports the growth ratio per doubling (n³ predicts
×8), and separately shows the linear m scaling for disjunctions.
"""

import time

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.bench.reporting import format_table
from repro.core.satisfiability import is_satisfiable, is_satisfiable_conjunction


def chain_conjunction(n: int) -> Conjunction:
    """x0 <= x1 <= … <= x_{n-1} plus bounds: satisfiable, n variables."""
    atoms = [Atom(f"x{i}", "<=", f"x{i + 1}", 1) for i in range(n - 1)]
    atoms.append(Atom("x0", ">=", 0))
    atoms.append(Atom(f"x{n - 1}", "<=", 3 * n))
    return Conjunction(atoms)


def _time(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e2_conjunction_scaling(benchmark, report):
    sizes = [8, 16, 32, 64]
    timings = {}
    for n in sizes:
        conj = chain_conjunction(n)
        assert is_satisfiable_conjunction(conj, method="floyd")
        timings[n] = _time(
            lambda c=conj: is_satisfiable_conjunction(c, method="floyd")
        )

    rows = []
    for i, n in enumerate(sizes):
        ratio = timings[n] / timings[sizes[i - 1]] if i else float("nan")
        rows.append(
            [n, f"{timings[n] * 1e3:.3f} ms", "-" if not i else f"x{ratio:.1f}"]
        )

    benchmark(
        lambda: is_satisfiable_conjunction(chain_conjunction(32), method="floyd")
    )

    report(
        format_table(
            ["variables n", "Floyd sat-check time", "growth per doubling"],
            rows,
            title=(
                "E2a  conjunction satisfiability — paper claims O(n^3), "
                "i.e. ~x8 per doubling"
            ),
        )
    )
    # Growth must be clearly superlinear (>2x) per doubling; exact x8 is
    # blurred by constant factors at small n and dict overhead.
    assert timings[64] / timings[16] > 4


def test_e2_disjunction_scaling(report, benchmark):
    n = 16
    rows = []
    timings = {}
    for m in (1, 2, 4, 8):
        condition = Condition([chain_conjunction(n) for _ in range(m)])
        # Force the worst case (no early exit) by making every disjunct
        # unsatisfiable: the paper's O(m n^3) is exactly this case.
        # The chain allows x0 <= x_{n-1} + (n-1); demanding
        # x_{n-1} < x0 - (n-1) closes a negative cycle in every disjunct.
        unsat = Condition(
            [
                Conjunction(
                    list(chain_conjunction(n).atoms)
                    + [Atom(f"x{n - 1}", "<", "x0", -(n - 1))]
                )
                for _ in range(m)
            ]
        )
        assert not is_satisfiable(unsat, method="floyd")
        timings[m] = _time(lambda c=unsat: is_satisfiable(c, method="floyd"))
        rows.append([m, f"{timings[m] * 1e3:.3f} ms"])

    benchmark(
        lambda: is_satisfiable(
            Condition([chain_conjunction(n) for _ in range(4)]), method="floyd"
        )
    )

    report(
        format_table(
            ["disjuncts m", "unsat DNF check time"],
            rows,
            title="E2b  DNF satisfiability — paper claims O(m n^3): linear in m",
        )
    )
    # Linear in m: quadrupling m should stay well under the n-doubling
    # blow-up (allow generous slack for timer noise).
    assert timings[8] / timings[1] < 16
