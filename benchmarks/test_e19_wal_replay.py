"""E19 — WAL append overhead and replay/recovery throughput.

The write-ahead delta log makes every commit pay serialization (and,
under ``sync="commit"``, an fsync) to buy crash recovery.  The first
table prices that premium per transaction across sync modes, with the
counter families (`wal_bytes_written`, `wal_fsyncs`) explaining where
the time goes.  The second table measures the payoff path: replaying
the logged stream into a recovered database — views catching up
differentially through the normal commit pipeline — against the
leader's original maintenance cost for the same stream.
"""

import random
import shutil
import tempfile
import time

from repro.algebra.expressions import BaseRef
from repro.bench.reporting import format_table
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.instrumentation import CostRecorder, recording
from repro.replication.durability import DurabilityManager
from repro.replication.recovery import recover

TRANSACTIONS = 300

VIEW = BaseRef("r").join(BaseRef("s")).select("C >= 30").project(["A", "C"])


def _make_db(seed=19):
    rng = random.Random(seed)
    db = Database()
    rows = {(i, rng.randint(0, 30)) for i in range(800)}
    db.create_relation("r", ["A", "B"], sorted(rows))
    srows = {(b, rng.randint(0, 60)) for b in range(31)}
    db.create_relation("s", ["B", "C"], sorted(srows))
    return db


def _stream(rng, transactions=TRANSACTIONS):
    next_id = 10_000
    for _ in range(transactions):
        rows = [(next_id + k, rng.randint(0, 30)) for k in range(3)]
        next_id += 3
        yield rows


def _run_leader(directory, sync, with_views=True):
    db = _make_db()
    maintainer = None
    if with_views:
        maintainer = ViewMaintainer(db)
        maintainer.define_view("v", VIEW)
    durability = None
    if sync is not None:
        durability = DurabilityManager(db, directory, sync=sync)
        durability.checkpoint(maintainer)
    recorder = CostRecorder()
    rng = random.Random(7)
    start = time.perf_counter()
    with recording(recorder):
        for rows in _stream(rng):
            with db.transact() as txn:
                txn.insert_many("r", rows)
    seconds = time.perf_counter() - start
    if durability is not None:
        durability.close()
    return db, seconds, recorder


def test_e19_wal_replay(report, benchmark):
    # ------------------------------------------------------------------
    # Table 1: the per-commit durability premium, by sync mode.
    # ------------------------------------------------------------------
    rows = []
    directory = None
    for sync in (None, "never", "close", "commit"):
        workdir = tempfile.mkdtemp(prefix="repro-e19-")
        _, seconds, recorder = _run_leader(workdir, sync)
        rows.append(
            [
                "no WAL" if sync is None else f'sync="{sync}"',
                f"{seconds / TRANSACTIONS * 1e6:.0f}",
                recorder.get("wal_records_appended"),
                recorder.get("wal_bytes_written"),
                recorder.get("wal_fsyncs"),
            ]
        )
        if sync == "commit":
            directory = workdir  # keep the durable copy for table 2
        else:
            shutil.rmtree(workdir, ignore_errors=True)
    report(
        format_table(
            ["configuration", "us/txn", "records", "bytes", "fsyncs"],
            rows,
            title=(
                "E19a  WAL append premium "
                f"({TRANSACTIONS} transactions, immediate view maintenance)"
            ),
        )
    )
    # Every transaction was logged exactly once under every WAL config.
    assert all(row[2] == TRANSACTIONS for row in rows[1:])

    # ------------------------------------------------------------------
    # Table 2: replay throughput — recovery's differential catch-up.
    # ------------------------------------------------------------------
    replay_recorder = CostRecorder()
    start = time.perf_counter()
    with recording(replay_recorder):
        recovery, recovered = recover(
            directory, lambda rec, m: rec.restore_view(m, "v", VIEW)
        )
    replay_seconds = time.perf_counter() - start
    replayed = replay_recorder.get("log_replay_transactions")
    assert replayed == TRANSACTIONS
    stats = recovered.stats("v")
    assert stats.transactions_seen == TRANSACTIONS  # differential, not recomputed
    report(
        format_table(
            ["path", "transactions", "seconds", "txn/s", "records read"],
            [
                [
                    "recover (replay WAL tail)",
                    replayed,
                    f"{replay_seconds:.3f}",
                    f"{replayed / replay_seconds:.0f}",
                    replay_recorder.get("wal_records_read"),
                ]
            ],
            title="E19b  recovery replay throughput (views catch up differentially)",
        )
    )
    shutil.rmtree(directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # The timed kernel: append + replay of a small fixed stream.
    # ------------------------------------------------------------------
    def append_and_replay():
        workdir = tempfile.mkdtemp(prefix="repro-e19-bench-")
        try:
            db = _make_db()
            maintainer = ViewMaintainer(db)
            maintainer.define_view("v", VIEW)
            with DurabilityManager(db, workdir, sync="never") as durability:
                durability.checkpoint(maintainer)
                rng = random.Random(11)
                for rows in _stream(rng, transactions=20):
                    with db.transact() as txn:
                        txn.insert_many("r", rows)
            recover(workdir, lambda rec, m: rec.restore_view(m, "v", VIEW))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    benchmark(append_and_replay)
