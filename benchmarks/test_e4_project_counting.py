"""E4 — project views: counting (§5.2 alt 1) vs key projection (alt 2)
vs full re-evaluation.

Example 5.1 shows why projection breaks naive differential deletion;
the paper fixes it with multiplicity counters and mentions carrying the
base key as the rejected alternative.  The experiment maintains
``V = π_B(r)`` under a mixed insert/delete stream three ways and
reports per-update cost and stored-view size — alternative (2) pays
storage (one stored tuple per base tuple) and query-time aggregation,
which is exactly why the paper picks (1).
"""

import random
import time

from repro.algebra.evaluate import project_relation
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.baselines.key_projection import KeyProjectionView
from repro.bench.reporting import format_table
from repro.core.counting import maintain_project_view

SCHEMA = RelationSchema(["A", "B"])
BASE_SIZE = 3000
UPDATES = 1500


def _base_rows(seed=3):
    rng = random.Random(seed)
    rows = set()
    while len(rows) < BASE_SIZE:
        rows.add((rng.randint(0, 100_000), rng.randint(0, 40)))
    return sorted(rows)


def _update_stream(rows, seed=4):
    rng = random.Random(seed)
    live = set(rows)
    stream = []
    for _ in range(UPDATES):
        if rng.random() < 0.5 and live:
            row = next(iter(live))
            live.discard(row)
            stream.append(("delete", row))
        else:
            row = (rng.randint(0, 100_000), rng.randint(0, 40))
            if row in live:
                continue
            live.add(row)
            stream.append(("insert", row))
    return stream


def test_e4_project_view_strategies(benchmark, report):
    rows = _base_rows()
    stream = _update_stream(rows)

    # --- Strategy 1: §5.2 counting ------------------------------------
    base = Relation.from_rows(SCHEMA, rows)
    counted = project_relation(base, ["B"])
    start = time.perf_counter()
    for op, row in stream:
        delta = (
            Delta(SCHEMA, inserted=[row])
            if op == "insert"
            else Delta(SCHEMA, deleted=[row])
        )
        if op == "insert":
            base.add(row)
        else:
            base.discard(row)
        maintain_project_view(counted, delta, ["B"])
    counting_seconds = time.perf_counter() - start
    assert counted == project_relation(base, ["B"])
    counting_size = len(counted)

    # --- Strategy 2: key projection ------------------------------------
    base2 = Relation.from_rows(SCHEMA, rows)
    keyed = KeyProjectionView(SCHEMA, ["B"], key=["A"])
    keyed.materialize(base2)
    start = time.perf_counter()
    for op, row in stream:
        delta = (
            Delta(SCHEMA, inserted=[row])
            if op == "insert"
            else Delta(SCHEMA, deleted=[row])
        )
        keyed.apply_delta(delta)
    keyed_seconds = time.perf_counter() - start
    keyed_size = len(keyed)
    # Query-time cost of alternative (2): aggregate on read.
    start = time.perf_counter()
    keyed_query = keyed.query()
    keyed_query_seconds = time.perf_counter() - start
    assert keyed_query == counted

    # --- Strategy 3: full re-evaluation ---------------------------------
    base3 = Relation.from_rows(SCHEMA, rows)
    start = time.perf_counter()
    for op, row in stream:
        if op == "insert":
            base3.add(row)
        else:
            base3.discard(row)
        recomputed = project_relation(base3, ["B"])
    full_seconds = time.perf_counter() - start
    assert recomputed == counted

    per = len(stream)
    rows_out = [
        [
            "counting (paper alt 1)",
            f"{counting_seconds / per * 1e6:.1f}",
            counting_size,
            "0 (view is the answer)",
        ],
        [
            "key projection (alt 2)",
            f"{keyed_seconds / per * 1e6:.1f}",
            keyed_size,
            f"{keyed_query_seconds * 1e3:.2f} ms aggregation",
        ],
        [
            "full re-evaluation",
            f"{full_seconds / per * 1e6:.1f}",
            counting_size,
            "0 (just recomputed)",
        ],
    ]
    report(
        format_table(
            ["strategy", "us per update", "stored tuples", "query-time cost"],
            rows_out,
            title=(
                f"E4  project view π_B(r), |r|={BASE_SIZE}, "
                f"{per} updates — counting: cheap updates, minimal "
                "storage, zero-cost reads"
            ),
        )
    )
    assert counting_seconds < full_seconds  # the paper's whole point
    assert keyed_size > counting_size  # alt 2 stores one tuple per base row

    def counting_run():
        b = Relation.from_rows(SCHEMA, rows[:500])
        v = project_relation(b, ["B"])
        for op, row in stream[:200]:
            if op == "insert" and row not in b:
                b.add(row)
                maintain_project_view(v, Delta(SCHEMA, inserted=[row]), ["B"])
            elif op == "delete" and row in b:
                b.discard(row)
                maintain_project_view(v, Delta(SCHEMA, deleted=[row]), ["B"])

    benchmark(counting_run)
