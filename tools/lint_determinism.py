#!/usr/bin/env python3
"""AST lint: no ambient time or randomness inside ``src/repro``.

The whole repository is built around determinism — the simulation
harness replays identical runs from a seed, compiled plans are
byte-for-byte reproducible across replicas, and the static analyzer's
reports must be byte-identical for the same input.  Ambient
nondeterminism breaks all of that silently, so this lint forbids, in
``src/repro``:

* ``time.time`` / ``time.time_ns`` / ``time.monotonic`` /
  ``time.monotonic_ns`` / ``time.perf_counter`` /
  ``time.perf_counter_ns`` — wall/monotonic clock reads;
* module-level ``random.*`` calls — the shared global RNG
  (constructing a seeded ``random.Random(seed)`` or an explicit
  ``random.SystemRandom`` instance is fine);
* ``datetime.datetime.now`` / ``utcnow`` / ``today`` and
  ``datetime.date.today`` — ambient dates;
* ``eval`` / ``exec`` — dynamic code execution, allowed only in the
  sanctioned kernel generator (``src/repro/core/codegen.py``), whose
  generated source is itself required to be byte-for-byte
  deterministic.

The sanctioned seams are allowlisted: the simulation clock
(``SimClock`` owns virtual time) and the benchmark harness (its whole
point is measuring real wall-clock).  Everything else must take a
clock or an RNG as an argument.

Usage (CI runs this from the repository root)::

    python tools/lint_determinism.py [ROOT]

Exits 1 with ``file:line: message`` diagnostics on violations.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files allowed to read ambient time: the virtual-clock seam and the
#: wall-clock benchmark harness.  Paths are relative to ROOT.
ALLOWLIST = frozenset(
    {
        Path("src/repro/simulation/clock.py"),
        Path("src/repro/bench/harness.py"),
    }
)

FORBIDDEN_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)

#: random.<attr> calls that *construct an explicit generator* are fine;
#: everything else on the module (random, randint, choice, shuffle, …)
#: draws from the hidden global RNG.
ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})

FORBIDDEN_DATETIME = frozenset({"now", "utcnow", "today"})

#: The one module allowed to ``compile()``/``exec`` source it built:
#: the batch-kernel generator.  Everywhere else, dynamic execution
#: hides code from this lint (and from review) — banned.
DYNAMIC_EXEC_ALLOWLIST = frozenset({Path("src/repro/core/codegen.py")})

FORBIDDEN_DYNAMIC = frozenset({"eval", "exec"})


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain of Names, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check_file(path: Path, root: Path) -> list[str]:
    """All determinism violations in one file, as ``file:line: msg``."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:  # a broken file is its own violation
        return [f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"]

    relative = path.relative_to(root)
    violations: list[str] = []

    def report(node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        violations.append(f"{relative}:{line}: {message}")

    allow_dynamic = relative in DYNAMIC_EXEC_ALLOWLIST
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            not allow_dynamic
            and isinstance(node.func, ast.Name)
            and node.func.id in FORBIDDEN_DYNAMIC
        ):
            report(
                node,
                f"{node.func.id}() executes dynamic code; only the "
                "kernel generator (core/codegen.py) may do that",
            )
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.partition(".")
        if head == "time" and tail in FORBIDDEN_TIME:
            report(
                node,
                f"{dotted}() reads the ambient clock; take a clock "
                "argument (see simulation/clock.py) instead",
            )
        elif head == "random" and tail and "." not in tail:
            if tail not in ALLOWED_RANDOM_ATTRS:
                report(
                    node,
                    f"{dotted}() uses the global RNG; construct a seeded "
                    "random.Random(seed) and pass it explicitly",
                )
        elif dotted in (
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        ) or (
            head in ("datetime", "date") and tail in FORBIDDEN_DATETIME
        ):
            report(
                node,
                f"{dotted}() reads the ambient date; pass timestamps in "
                "explicitly",
            )
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    source_root = root / "src" / "repro"
    if not source_root.is_dir():
        print(f"error: {source_root} is not a directory", file=sys.stderr)
        return 2
    violations: list[str] = []
    for path in sorted(source_root.rglob("*.py")):
        if path.relative_to(root) in ALLOWLIST:
            continue
        violations.extend(check_file(path, root))
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"{len(violations)} determinism violation(s); ambient time and "
            "the global RNG are banned in src/repro (see "
            "tools/lint_determinism.py)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
