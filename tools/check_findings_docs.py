#!/usr/bin/env python3
"""Docs lint: every analyzer finding code is documented.

The analyzer's finding vocabulary is closed
(:mod:`repro.analysis.findings` validates codes at construction), and
``docs/analysis.md`` carries the user-facing table of that vocabulary.
The two drift silently: a new ``F_*`` code ships, the table lags, and
``analyze --json`` starts emitting codes no documentation explains.
This lint pins them together — every ``F_*`` constant exported by
:mod:`repro.analysis` must appear, backtick-quoted, in the findings
table of ``docs/analysis.md``.

Usage (CI runs this from the repository root)::

    python tools/check_findings_docs.py

Exits 1 listing the undocumented codes (or documented ghosts — table
rows whose code no longer exists).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def exported_codes() -> dict[str, str]:
    """``F_*`` name → code string, as exported by ``repro.analysis``."""
    sys.path.insert(0, str(ROOT / "src"))
    import repro.analysis as analysis

    return {
        name: getattr(analysis, name)
        for name in analysis.__all__
        if name.startswith("F_")
    }


def documented_codes(text: str) -> set[str]:
    """Backtick-quoted codes in the findings table's ``code`` column."""
    codes: set[str] = set()
    for line in text.splitlines():
        match = re.match(r"\|\s*`([a-z_]+)`\s*\|", line)
        if match:
            codes.add(match.group(1))
    return codes


def main() -> int:
    doc_path = ROOT / "docs" / "analysis.md"
    exported = exported_codes()
    documented = documented_codes(doc_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    for name, code in sorted(exported.items()):
        if code not in documented:
            failures.append(
                f"{doc_path}: finding {name} = {code!r} is exported by "
                "repro.analysis but missing from the findings table"
            )
    for ghost in sorted(documented - set(exported.values())):
        failures.append(
            f"{doc_path}: table documents {ghost!r}, which repro.analysis "
            "no longer exports"
        )
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    print(
        f"findings docs OK: {len(exported)} codes documented in "
        f"{doc_path.relative_to(ROOT)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
