"""Setuptools shim.

Kept alongside pyproject.toml so the package installs editable in
offline environments whose setuptools predates PEP 660 wheel-less
editable builds (``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
