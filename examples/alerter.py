"""Alerters on top of maintained views ([BC79] motivation).

Buneman and Clemons proposed *alerters*: monitors that report when "a
state of the database, described by the view definition, has been
reached".  A maintained materialized view makes alerting trivial — the
view's delta IS the alert stream.  This example watches a sensor
network for readings that exceed a per-sensor threshold by more than
10 (an ``x op y + c`` condition, Section 4's atom shape) and prints an
alert whenever the alarm view gains or loses a tuple.

It also demonstrates the filter payoff emphasized by the paper.  The
two-variable condition alone cannot screen any reading (an unbounded
threshold might always match), so the alerter's author adds the
redundant bound ``value > 90`` — implied by the known threshold range
80–120 — and the Section 4 filter then proves most readings irrelevant
without touching the sensor table at all.

Run:  python examples/alerter.py
"""

import random

from repro import Database, BaseRef, ViewMaintainer
from repro.algebra.relation import Delta


def main() -> None:
    rng = random.Random(101)
    db = Database()
    db.create_relation(
        "sensor",
        ["sensor_id", "threshold"],
        [(i, rng.randint(80, 120)) for i in range(8)],
    )
    db.create_relation("reading", ["sensor_id", "value"], [])

    maintainer = ViewMaintainer(db)
    alarms = maintainer.define_view(
        "alarms",
        BaseRef("sensor")
        .join(BaseRef("reading"))
        .select("value > threshold + 10 and value > 90")
        .project(["sensor_id", "value"]),
    )

    # --- Subscribe to alarm-view changes: the alerter itself ----------
    fired: list[str] = []
    baseline = {values for values in alarms.contents.value_tuples()}

    def alert_hook(txn_id: int, deltas: dict) -> None:
        nonlocal baseline
        current = set(alarms.contents.value_tuples())
        for sensor_id, value in sorted(current - baseline):
            fired.append(
                f"  ALERT (txn {txn_id}): sensor {sensor_id} read {value}"
            )
        for sensor_id, value in sorted(baseline - current):
            fired.append(
                f"  clear (txn {txn_id}): sensor {sensor_id} back in range"
            )
        baseline = current

    # Registered after the maintainer, so it observes the updated view.
    db.add_commit_hook(alert_hook)

    print("Thresholds:",
          dict(sorted(db.relation("sensor").value_tuples())))
    print("\nStreaming 60 readings ...\n")

    for _ in range(60):
        with db.transact() as txn:
            txn.insert(
                "reading", (rng.randrange(8), rng.randint(0, 140))
            )

    for line in fired:
        print(line)

    stats = maintainer.stats("alarms")
    print(
        f"\n{stats.tuples_screened} readings screened, "
        f"{stats.tuples_irrelevant} provably irrelevant, "
        f"{len(fired)} alert events, "
        f"{len(alarms.contents)} alarms currently active."
    )


if __name__ == "__main__":
    main()
