"""Snapshot refresh: deferred maintenance ([AL80], paper Section 6).

The paper's conclusions note that views may also be "updated
periodically or only on demand.  Such materialized views are known as
snapshots and their maintenance mechanism as snapshot refresh.  The
approach proposed in this paper also applies to this environment."

This example runs the same view under both policies side by side:

* ``live``   — IMMEDIATE: updated inside every commit;
* ``nightly`` — DEFERRED: commits only accumulate composed net deltas
  (insert-then-delete pairs cancel across transactions), and a
  ``refresh()`` call applies the whole backlog through the identical
  filter + differential pipeline.

Run:  python examples/snapshot_refresh.py
"""

import random

from repro import BaseRef, Database, ViewMaintainer, check_view_consistency
from repro.core.maintainer import MaintenancePolicy


def main() -> None:
    rng = random.Random(77)
    db = Database()
    db.create_relation(
        "account", ["acct", "branch"], [(i, i % 5) for i in range(50)]
    )
    db.create_relation(
        "balance", ["acct", "amount"], [(i, rng.randint(0, 900)) for i in range(50)]
    )

    expression = (
        BaseRef("account")
        .join(BaseRef("balance"))
        .select("amount >= 500 and branch <= 2")
        .project(["acct", "amount"])
    )

    maintainer = ViewMaintainer(db)
    live = maintainer.define_view("live", expression)
    nightly = maintainer.define_view(
        "nightly", expression, policy=MaintenancePolicy.DEFERRED
    )
    print(f"Both views start with {len(live.contents)} rich accounts.\n")

    def churn(transactions: int) -> None:
        for _ in range(transactions):
            with db.transact() as txn:
                acct = rng.randrange(50)
                rows = [
                    row
                    for row in db.relation("balance").value_tuples()
                    if row[0] == acct
                ]
                if rows:
                    txn.update(
                        "balance", rows[0], (acct, rng.randint(0, 900))
                    )

    for day in range(1, 4):
        churn(25)
        pending = maintainer.pending_deltas("nightly")
        backlog = sum(
            len(d.inserted) + len(d.deleted) for d in pending.values()
        )
        print(
            f"Day {day}: live view has {len(live.contents)} rows "
            f"(always fresh); nightly backlog = {backlog} net tuple "
            f"changes across {len(pending)} relation(s)."
        )
        maintainer.refresh("nightly")
        assert nightly.contents == live.contents
        print(
            f"         nightly refresh applied -> {len(nightly.contents)} "
            "rows, identical to the live view."
        )

    for name in ("live", "nightly"):
        report = check_view_consistency(
            maintainer.view(name), db.instances()
        )
        print(f"\nConsistency of {name!r}: {report.summary()}", end="")
    print()

    live_stats = maintainer.stats("live")
    nightly_stats = maintainer.stats("nightly")
    print(
        f"\nlive view:    {live_stats.deltas_applied} differential updates "
        f"(one per relevant commit)"
    )
    print(
        f"nightly view: {nightly_stats.deltas_applied} differential updates "
        f"(one per refresh — the composed-delta amortization of [AL80])"
    )


if __name__ == "__main__":
    main()
