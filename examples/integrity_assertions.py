"""Integrity enforcement with the irrelevance filter ([HS78] extension).

The paper's conclusions note that irrelevant-update detection "can be
used in those contexts as well" — meaning trigger support and Hammer &
Sarin's integrity assertions.  This example declares two assertions
over a small banking schema:

* ``non_negative`` — no account balance may drop below zero
  (error predicate: σ_{balance<0}(accounts));
* ``orders_active`` — no order may reference a drained account
  (error predicate: σ_{balance≤0}(orders ⋈ accounts)).

Transactions are validated *before* commit; violating ones are aborted
with the exact error-predicate witnesses.  Updates that provably cannot
violate an assertion are screened out by the Section 4 filter without
evaluating anything.

Run:  python examples/integrity_assertions.py
"""

from repro import BaseRef, Database
from repro.extensions.assertions import AssertionMonitor, IntegrityViolation


def main() -> None:
    db = Database()
    db.create_relation(
        "accounts", ["acct", "balance"], [(1, 100), (2, 40), (3, 0)]
    )
    db.create_relation("orders", ["order_id", "acct"], [(10, 1), (11, 2)])

    monitor = AssertionMonitor(db)
    monitor.declare("non_negative", BaseRef("accounts").select("balance < 0"))
    monitor.declare(
        "orders_active",
        BaseRef("orders").join(BaseRef("accounts")).select("balance <= 0"),
    )
    print("Declared assertions:", ", ".join(monitor.assertion_names()))

    def attempt(description, build):
        txn = db.begin()
        build(txn)
        try:
            monitor.validate_transaction(txn)
        except IntegrityViolation as violation:
            txn.abort()
            print(f"  REJECTED  {description}\n            -> {violation}")
        else:
            txn.commit()
            print(f"  committed {description}")

    print("\nRunning transactions through pre-commit validation:\n")
    attempt(
        "deposit 50 into account 2",
        lambda txn: txn.update("accounts", (2, 40), (2, 90)),
    )
    attempt(
        "withdraw 200 from account 1 (overdraft!)",
        lambda txn: txn.update("accounts", (1, 100), (1, -100)),
    )
    attempt(
        "order 12 for account 3 (drained!)",
        lambda txn: txn.insert("orders", (12, 3)),
    )
    attempt(
        "order 13 for account 2",
        lambda txn: txn.insert("orders", (13, 2)),
    )
    attempt(
        "drain account 2 to zero while it has orders (violates join assertion)",
        lambda txn: txn.update("accounts", (2, 90), (2, 0)),
    )

    print("\nFinal accounts:")
    print(db.relation("accounts").pretty())
    print("\nFinal orders:")
    print(db.relation("orders").pretty())
    print(
        "\nEvery committed state satisfies both assertions; every "
        "violation was caught before commit, with witnesses."
    )


if __name__ == "__main__":
    main()
