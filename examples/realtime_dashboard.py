"""Real-time query support via materialized views ([GSV84] motivation).

Gardarin et al. considered materialized ("concrete") views for real-time
queries but discarded them "because of the lack of an efficient
algorithm to keep the concrete views up to date" — the gap this paper
fills.  This example plays that scenario out on an order-processing
database: a dashboard view of hot pending orders is kept materialized
while a stream of order transactions commits, and the cost of answering
the dashboard from the maintained view is compared against recomputing
the query on demand.

Run:  python examples/realtime_dashboard.py

With ``--monitor-json PATH`` and/or ``--monitor-html PATH`` the run
also maintains a *deferred* twin of the dashboard view under a
staleness SLA, driven by the refresh scheduler (docs/scheduler.md),
and writes the windowed staleness report.  The report derives only
from instrumentation counters and the virtual clock, so it is
byte-identical across runs — CI archives the HTML as an artifact.
"""

import argparse
import random
import time

from repro import BaseRef, ViewMaintainer, evaluate
from repro.core.maintainer import MaintenancePolicy
from repro.scheduler import Monitor, RefreshScheduler, StalenessSLA, TickClock
from repro.workloads.scenarios import sales_scenario


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--monitor-json", metavar="PATH",
        help="write the staleness report as JSON to PATH",
    )
    parser.add_argument(
        "--monitor-html", metavar="PATH",
        help="write the staleness report as standalone HTML to PATH",
    )
    args = parser.parse_args(argv)
    monitoring = bool(args.monitor_json or args.monitor_html)

    scenario = sales_scenario(customers=300, orders=3000, seed=42)
    db = scenario.database
    rng = random.Random(7)

    maintainer = ViewMaintainer(db)
    view = maintainer.define_view(scenario.view_name, scenario.expression)
    print("Dashboard view:", scenario.expression)

    # The revenue rollup: a real aggregate view (docs/aggregates.md),
    # maintained differentially through per-group SUM/AVG accumulators
    # instead of re-grouping the orders table on every refresh.
    revenue_expr = BaseRef("orders").aggregate(
        ["status"],
        [
            ("count", None, "orders"),
            ("sum", "amount", "revenue"),
            ("avg", "amount", "avg_order"),
        ],
    )
    revenue = maintainer.define_view("revenue_by_status", revenue_expr)
    print("Rollup view:   ", revenue_expr)
    print(f"Initially {len(view.contents)} hot pending orders across "
          f"{len(revenue.contents)} status buckets.\n")

    clock = TickClock()
    scheduler = None
    monitor = None
    if monitoring:
        # A deferred twin of the dashboard under a staleness SLA: the
        # scheduler decides when its backlog is applied, and the
        # monitor reports how stale it was allowed to become.
        maintainer.define_view(
            f"{scenario.view_name}_deferred",
            scenario.expression,
            policy=MaintenancePolicy.DEFERRED,
        )
        scheduler = RefreshScheduler(maintainer, clock=clock, batch_limit=1)
        scheduler.declare_sla(
            f"{scenario.view_name}_deferred",
            StalenessSLA(max_pending_commits=10, max_lag_ticks=25),
        )
        monitor = Monitor(maintainer, scheduler)
        monitor.begin(clock.now)

    next_order_id = 3000

    def random_transaction() -> None:
        nonlocal next_order_id
        with db.transact() as txn:
            for _ in range(rng.randint(1, 5)):
                kind = rng.random()
                if kind < 0.5:
                    # New order arrives.
                    txn.insert(
                        "orders",
                        (
                            next_order_id,
                            rng.randrange(300),
                            rng.randint(1, 5000),
                            0,
                        ),
                    )
                    next_order_id += 1
                else:
                    # An existing order changes status (ships/cancels).
                    rows = sorted(db.relation("orders").value_tuples())
                    order = rng.choice(rows)
                    txn.update(
                        "orders", order, order[:3] + (rng.randint(1, 3),)
                    )

    # --- Drive the workload -------------------------------------------
    transactions = 200
    start = time.perf_counter()
    for _ in range(transactions):
        random_transaction()
        clock.advance(1)
        if scheduler is not None:
            scheduler.tick()
    maintained_seconds = time.perf_counter() - start

    stats = maintainer.stats(scenario.view_name)
    print(f"Committed {transactions} transactions.")
    print(
        f"Filter screened {stats.tuples_screened} updated tuples, proved "
        f"{stats.tuples_irrelevant} irrelevant "
        f"({100 * stats.tuples_irrelevant / max(1, stats.tuples_screened):.0f}%)."
    )
    print(
        f"{stats.transactions_skipped} transactions were skipped outright; "
        f"{stats.deltas_applied} needed a differential update."
    )
    print(f"Dashboard now shows {len(view.contents)} hot pending orders.")
    print("Revenue by status (status, orders, revenue, avg order):")
    for row in sorted(revenue.contents.value_tuples()):
        print(f"  {row}")
    print(f"Total maintenance time: {maintained_seconds * 1000:.1f} ms "
          f"({maintained_seconds / transactions * 1e6:.0f} µs per transaction).\n")

    # --- Compare against recomputing the query on demand ---------------
    start = time.perf_counter()
    recomputed = evaluate(scenario.expression, db.instances())
    recompute_seconds = time.perf_counter() - start
    assert recomputed == view.contents
    assert evaluate(revenue_expr, db.instances()) == revenue.contents
    print(
        f"One from-scratch evaluation of the dashboard query takes "
        f"{recompute_seconds * 1e3:.2f} ms — every dashboard refresh would "
        "pay that without maintenance; the maintained view answers in O(1)."
    )

    if monitor is not None:
        report = monitor.report(clock.now)
        if args.monitor_json:
            with open(args.monitor_json, "w", encoding="utf-8") as handle:
                handle.write(report.as_json() + "\n")
            print(f"\nWrote staleness report (JSON) to {args.monitor_json}")
        if args.monitor_html:
            with open(args.monitor_html, "w", encoding="utf-8") as handle:
                handle.write(report.as_html() + "\n")
            print(f"Wrote staleness report (HTML) to {args.monitor_html}")


if __name__ == "__main__":
    main()
