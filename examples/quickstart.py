"""Quickstart: the paper's Example 4.1, end to end.

Creates the exact database instance printed in the paper, defines the
view  u = π_{A,D}( σ_{A<10 ∧ C>5 ∧ B=C} (r × s) )  as a maintained
materialized view, and then runs the example's two insertions —
one relevant, one provably irrelevant — showing how the Section 4
filter and the Section 5 differential algorithm cooperate.

Run:  python examples/quickstart.py
"""

from repro import BaseRef, Database, ViewMaintainer, check_view_consistency


def main() -> None:
    # --- Base relations, exactly as printed in Example 4.1 -----------
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
    db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])

    # --- The view definition ------------------------------------------
    expression = (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )

    maintainer = ViewMaintainer(db)
    view = maintainer.define_view("u", expression)

    print("View definition:", expression)
    print("\nInitial materialization of u:")
    print(view.contents.pretty())

    # --- The paper's two insertions -----------------------------------
    print("\nInserting (9, 10) and (11, 10) into r ...")
    with db.transact() as txn:
        txn.insert("r", (9, 10))    # relevant: 9 < 10 and B = 10 can match C
        txn.insert("r", (11, 10))   # irrelevant: 11 < 10 is false in every state

    print("\nView after the transaction:")
    print(view.contents.pretty())

    stats = maintainer.stats("u")
    print(
        f"\nThe filter screened {stats.tuples_screened} tuples and proved "
        f"{stats.tuples_irrelevant} irrelevant;"
    )
    print(
        f"{stats.deltas_applied} differential update(s) were applied "
        "instead of re-evaluating the view from scratch."
    )

    # --- Independent verification --------------------------------------
    report = check_view_consistency(view, db.instances())
    print("\nConsistency check against full re-evaluation:", report.summary())


if __name__ == "__main__":
    main()
