"""Operating a view fleet: the order-flow workload end to end.

The capstone demo: on a three-table order-processing database, this
script registers a fleet of views — including a *stacked* view defined
over another view — inspects their maintenance plans, applies the index
advisor's recommendations, streams mixed transactions through the
system, and reports what the Section 4 filter and the Section 5
differential machinery saved.

Run:  python examples/orderflow_operations.py
"""

from repro import ViewMaintainer, check_view_consistency
from repro.workloads.orderflow import OrderFlow


def main() -> None:
    flow = OrderFlow(customers=200, products=100, lineitems=2000)
    db = flow.database
    print(f"Loaded {flow!r}\n")

    maintainer = ViewMaintainer(db)
    for name, expression in flow.view_definitions().items():
        view = maintainer.define_view(name, expression)
        kind = (
            "stacked"
            if maintainer._dependencies[name] & set(maintainer.view_names())
            - {name}
            else "base"
        )
        print(f"defined {kind:<7} view {name:<16} ({len(view.contents)} tuples)")

    # --- Inspect a maintenance plan ------------------------------------
    print("\nPlan for maintaining 'pricey_open' when lineitem changes:")
    print(maintainer.explain("pricey_open", ["lineitem"]))

    # --- Index advisor ---------------------------------------------------
    print("\nIndex recommendations:")
    for name in maintainer.view_names():
        for relation, attrs in maintainer.recommended_indexes(name):
            print(f"  {name:<16} -> index on {relation}({', '.join(attrs)})")
        maintainer.create_recommended_indexes(name)
    print(f"  ({len(db.indexes)} indexes created)")

    # --- Stream transactions ---------------------------------------------
    transactions = 300
    print(f"\nStreaming {transactions} mixed transactions ...")
    for _ in flow.transactions(transactions):
        pass

    print("\nPer-view maintenance statistics:")
    header = (
        f"{'view':<16} {'seen':>5} {'skipped':>8} {'applied':>8} "
        f"{'screened':>9} {'irrelevant':>11}"
    )
    print(header)
    print("-" * len(header))
    for name in maintainer.view_names():
        stats = maintainer.stats(name)
        print(
            f"{name:<16} {stats.transactions_seen:>5} "
            f"{stats.transactions_skipped:>8} {stats.deltas_applied:>8} "
            f"{stats.tuples_screened:>9} {stats.tuples_irrelevant:>11}"
        )

    # --- Verify everything ------------------------------------------------
    for name in maintainer.view_names():
        report = check_view_consistency(
            maintainer.view(name),
            maintainer._combined_instances(),
            raise_on_mismatch=False,
        )
        print(f"\n{report.summary()}", end="")
    print("\n\nAll views verified against from-scratch recomputation.")


if __name__ == "__main__":
    main()
