"""A 3-shard cluster whose routing oracle provably silences one shard.

Stands up three shards over a key-range partition of ``orders`` and a
replicated ``regions`` table, with a view that restricts the join key
to the low end of the range.  Quantifying the paper's Theorem 4.1 over
each shard's declared key-range constraint, the coordinator *proves*
that shards 1 and 2 can never be affected by a ``regions`` delta — so
it never sends them one, and the ``cluster_deltas_skipped`` counter
records every send the proof avoided.

Run:  python examples/sharded_cluster.py
"""

from repro import BaseRef
from repro.cluster import ClusterTopology, PartitionSpec, build_cluster


def main() -> None:
    # --- Topology: orders partitioned on its key, 3 shards ------------
    # Shard 0 owns K <= 9, shard 1 owns 10..19, shard 2 owns K >= 20.
    topology = ClusterTopology(3, [PartitionSpec("orders", "K", (9, 19))])
    tables = {"orders": ["K", "AMOUNT"], "regions": ["RID", "POP"]}
    rows = {
        "orders": [(k, k * 10) for k in range(0, 30, 3)],
        "regions": [(rid, rid * 100) for rid in range(8)],
    }
    constraints = {"regions": "RID >= 0"}

    # The view joins orders to regions but pins K = RID and K <= 7:
    # every contributing orders row lives in shard 0's range, so on
    # shards 1 and 2 the view is provably empty — forever.
    views = [
        (
            "low_orders_by_region",
            BaseRef("orders")
            .join(BaseRef("regions"))
            .select("K = RID and K <= 7"),
        )
    ]

    coordinator = build_cluster(topology, tables, rows, constraints, views)

    print("Routing proofs derived at registration:")
    for line in coordinator.routing.describe():
        print(" ", line)

    # --- Commit deltas through the coordinator ------------------------
    print("\nCommitting: two orders (one per end of the key space) and")
    print("one regions row — the regions delta goes to shard 0 only.\n")
    for inserts in (
        {"orders": [[4, 40], [25, 250]]},
        {"regions": [[4, 444]]},
        {"regions": [[6, 666]]},
    ):
        txn_id = coordinator.submit(inserts=inserts)
        outcome = coordinator.outcome(txn_id)
        assert outcome is not None and outcome["status"] == "committed"
        print(f"  txn {txn_id} committed at cluster_seq {outcome['cluster_seq']}")

    print("\nMerged view contents:")
    print(coordinator.merged_relation("low_orders_by_region").pretty())

    counters = coordinator.recorder.counters
    sent = counters.get("cluster_deltas_sent", 0)
    skipped = counters.get("cluster_deltas_skipped", 0)
    print(f"Per-shard delta batches sent:    {sent}")
    print(f"Sends avoided by the oracle:     {skipped}")

    # The two regions transactions would each have broadcast to shards
    # 1 and 2; the Theorem 4.1 proofs skipped all four sends.
    assert skipped > 0, "the routing oracle should have skipped sends"
    assert skipped == 4
    print("\nThe skipped sends are machine-checked: each corresponds to a")
    print("satisfiability proof that the view condition conjoined with the")
    print("shard's key-range constraints is unsatisfiable (Theorem 4.1).")


if __name__ == "__main__":
    main()
