"""Durability and replication: WAL, crash recovery, and a follower.

The committed net-effect deltas the paper feeds to its view-update
mechanism are also a complete record of the database's history — so
they double as the unit of durability (write them to disk before
acknowledging the commit) and of replication (ship them to replicas
that maintain their own views).  This example runs the whole story:

1. a *leader* keeps two views current while every commit is appended to
   a write-ahead log, and takes one mid-stream checkpoint;
2. the process "crashes" (we simply abandon the objects);
3. *recovery* rebuilds base relations and both views from the
   checkpoint plus the WAL tail — the views catch up differentially
   through the normal commit pipeline, never by recomputation;
4. a *follower* boots from the same directory and maintains a view the
   leader never defined, from the shipped deltas alone.

Run:  python examples/durable_replication.py
"""

import random
import tempfile

from repro import (
    BaseRef,
    Database,
    DurabilityManager,
    Follower,
    MaintenancePolicy,
    ViewMaintainer,
    check_view_consistency,
    recover,
)

ORDERS_VIEW = (
    BaseRef("orders")
    .join(BaseRef("customers"))
    .select("amount >= 500 and region <= 2")
    .project(["cust", "amount"])
)
REGION_VIEW = BaseRef("customers").select("region = 1").project(["region"])


def build_leader(directory: str):
    rng = random.Random(7)
    db = Database()
    db.create_relation("customers", ["cust", "region"], [(i, i % 4) for i in range(40)])
    db.create_relation(
        "orders", ["cust", "amount"], [(i, rng.randint(0, 999)) for i in range(40)]
    )
    durability = DurabilityManager(db, directory)
    maintainer = ViewMaintainer(db)
    maintainer.define_view("big_orders", ORDERS_VIEW)
    maintainer.define_view(
        "region_counts", REGION_VIEW, policy=MaintenancePolicy.DEFERRED
    )
    # The WAL does not record schemas: the initial checkpoint is the
    # recovery starting point, so take it before the first transaction.
    durability.checkpoint(maintainer)
    return rng, db, durability, maintainer


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro-wal-")
    rng, db, durability, maintainer = build_leader(directory)

    def churn(transactions: int) -> None:
        for _ in range(transactions):
            with db.transact() as txn:
                cust = rng.randrange(40)
                txn.insert("orders", (cust, rng.randint(0, 999)))
                if rng.random() < 0.3:
                    txn.update("customers", (cust, cust % 4), (cust, rng.randrange(4)))

    churn(30)
    durability.checkpoint(maintainer)  # mid-stream: prunes covered segments
    churn(30)
    maintainer.refresh("region_counts")
    big = maintainer.view("big_orders").contents
    region = maintainer.view("region_counts").contents
    print(f"leader at WAL position {durability.position}:")
    print(f"  big_orders    {len(big)} tuples")
    print(f"  region_counts {region.total_count()} customers in region 1")

    # -- crash: the process dies without closing anything -------------
    del db, durability, maintainer

    # -- recovery -----------------------------------------------------
    def restore(recovery, fresh_maintainer):
        recovery.restore_view(fresh_maintainer, "big_orders", ORDERS_VIEW)
        recovery.restore_view(fresh_maintainer, "region_counts", REGION_VIEW)

    recovery, recovered = recover(directory, restore)
    recovered.refresh("region_counts")
    print(f"\nrecovered from checkpoint seq {recovery.checkpoint_sequence} "
          f"+ {recovery.last_sequence - recovery.checkpoint_sequence} replayed txns:")
    assert recovered.view("big_orders").contents == big
    assert recovered.view("region_counts").contents == region
    print("  both views match the pre-crash state, tuple for tuple")
    stats = recovered.stats("big_orders")
    print(f"  big_orders caught up differentially: "
          f"{stats.deltas_applied} deltas, {stats.tuples_irrelevant} updates "
          "screened as irrelevant")

    # -- follower -----------------------------------------------------
    follower = Follower(directory)
    follower.define_view(
        "cheap_orders",
        BaseRef("orders").select("amount < 100").project(["cust"]),
    )
    applied = follower.poll()
    cheap = follower.view("cheap_orders")
    print(f"\nfollower applied {applied} shipped records; its own view "
          f"'cheap_orders' has {len(cheap.contents)} tuples")
    check_view_consistency(cheap, follower.database.instances())
    print("follower view verified against its replica — maintained from "
          "deltas alone")


if __name__ == "__main__":
    main()
