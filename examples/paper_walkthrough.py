"""A narrated walkthrough of the paper, section by section.

Runs every worked example from "Efficiently Updating Materialized
Views" (Blakeley, Larson & Tompa, SIGMOD 1986) on this implementation,
in the order the paper presents them, printing what the paper says next
to what the code computes.

Run:  python examples/paper_walkthrough.py
"""

from repro import (
    BaseRef,
    Database,
    ViewMaintainer,
    parse_condition,
    to_normal_form,
)
from repro.core.irrelevance import is_irrelevant_update
from repro.core.satisfiability import is_satisfiable
from repro.core.truthtable import enumerate_delta_rows, full_truth_table, render_row


def heading(text):
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def section_4_example_4_1():
    heading("Section 4, Example 4.1 — relevant and irrelevant updates")
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 2), (5, 10), (12, 15)])
    db.create_relation("s", ["C", "D"], [(2, 10), (10, 20)])
    expr = (
        BaseRef("r")
        .product(BaseRef("s"))
        .select("A < 10 and C > 5 and B = C")
        .project(["A", "D"])
    )
    nf = to_normal_form(expr, db.schema_catalog())
    print("u =", expr)
    print("\nr:", sorted(db.relation("r").value_tuples()))
    print("s:", sorted(db.relation("s").value_tuples()))

    for tup in ((9, 10), (11, 10)):
        substituted = parse_condition(
            f"{tup[0]} < 10 and C > 5 and {tup[1]} = C"
        )
        sat = is_satisfiable(substituted)
        verdict = is_irrelevant_update(nf, "r", tup, db.relation("r").schema)
        print(
            f"\ninsert {tup} into r:"
            f"\n  C({tup[0]}, {tup[1]}, C) = {substituted}"
            f"\n  satisfiable: {sat}  ->  "
            + ("RELEVANT" if not verdict else "IRRELEVANT (provably, any state)")
        )
    print(
        "\nPaper: (9,10) is relevant; (11,10) is irrelevant regardless of "
        "the database state.  Reproduced."
    )


def section_5_1_select_views():
    heading("Section 5.1 — select views: v' = v ∪ σ_C(i_r) − σ_C(d_r)")
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 5), (2, 50)])
    m = ViewMaintainer(db, auto_verify=True)
    v = m.define_view("v", BaseRef("r").select("B < 10"))
    print("v = σ_{B<10}(r), initially:", sorted(v.contents.value_tuples()))
    with db.transact() as txn:
        txn.insert("r", (3, 7))
        txn.delete("r", (1, 5))
    print("after insert (3,7), delete (1,5):", sorted(v.contents.value_tuples()))
    print("No base relation was consulted: the delta alone sufficed.")


def section_5_2_project_views():
    heading("Section 5.2, Example 5.1 — project views need counters")
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 10), (2, 10), (3, 20)])
    m = ViewMaintainer(db, auto_verify=True)
    v = m.define_view("v", BaseRef("r").project(["B"]))
    print("v = π_B(r):")
    print(v.contents.pretty())
    with db.transact() as txn:
        txn.delete("r", (1, 10))
    print("\nafter delete (1,10) — 10 must SURVIVE ((2,10) still supports it):")
    print(v.contents.pretty())
    with db.transact() as txn:
        txn.delete("r", (2, 10))
    print("\nafter delete (2,10) — counter hits zero, 10 leaves:")
    print(v.contents.pretty())


def section_5_3_join_views():
    heading("Section 5.3 — join views and the truth table (p = 3)")
    names = ["r1", "r2", "r3"]
    print("The full 2^p table (row 1 = current view):")
    for i, row in enumerate(full_truth_table(3), start=1):
        bits = " ".join(str(c.value) for c in row)
        print(f"  row {i}:  {bits}   {render_row(row, names)}")
    print("\nTransaction inserts into r1 and r2 only -> evaluate rows 3, 5, 7:")
    for row in enumerate_delta_rows(3, [0, 1]):
        print("  " + render_row(row, names))

    db = Database()
    db.create_relation("r1", ["A", "B"], [(1, 1)])
    db.create_relation("r2", ["B", "C"], [(1, 1), (2, 2)])
    db.create_relation("r3", ["C", "D"], [(1, 1), (2, 2)])
    m = ViewMaintainer(db, auto_verify=True)
    v = m.define_view(
        "v", BaseRef("r1").join(BaseRef("r2")).join(BaseRef("r3"))
    )
    print("\nConcrete instance; view before:", sorted(v.contents.value_tuples()))
    with db.transact() as txn:
        txn.insert("r1", (9, 2))
        txn.insert("r2", (2, 1))
    print("insert (9,2) into r1 and (2,1) into r2; view after:")
    for values in sorted(v.contents.value_tuples()):
        print("  ", values)
    print("(verified against complete re-evaluation)")


def section_5_3_tags():
    heading("Section 5.3, Example 5.4 — mixed transactions and tags")
    from repro.algebra.tags import Tag, combine_join_tags

    print("The join tag table:")
    for left in (Tag.INSERT, Tag.DELETE, Tag.OLD):
        for right in (Tag.INSERT, Tag.DELETE, Tag.OLD):
            print(
                f"  {left.value:<6} ⋈ {right.value:<6} -> "
                f"{combine_join_tags(left, right).value}"
            )
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 10)])
    db.create_relation("s", ["B", "C"], [(10, 5)])
    m = ViewMaintainer(db, auto_verify=True)
    v = m.define_view("v", BaseRef("r").join(BaseRef("s")))
    print("\nview r ⋈ s before:", sorted(v.contents.value_tuples()))
    with db.transact() as txn:
        txn.insert("r", (2, 20))   # i_r
        txn.insert("s", (20, 6))   # i_s  -> i_r ⋈ i_s inserts
        txn.delete("r", (1, 10))   # d_r  -> d_r ⋈ s deletes
    print("after {insert (2,20) r, insert (20,6) s, delete (1,10) r}:")
    print("  ", sorted(v.contents.value_tuples()))


def section_5_4_spj():
    heading("Section 5.4, Example 5.5 / Algorithm 5.1 — SPJ views")
    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 10)])
    db.create_relation("s", ["B", "C"], [(10, 5), (20, 50)])
    m = ViewMaintainer(db, auto_verify=True)
    expr = BaseRef("r").join(BaseRef("s")).select("C > 10").project(["A"])
    v = m.define_view("v", expr)
    print("v = π_A(σ_{C>10}(r ⋈ s)), before:", sorted(v.contents.value_tuples()))
    with db.transact() as txn:
        txn.insert("r", (9, 20))
    print("after insert (9,20) into r:", sorted(v.contents.value_tuples()))
    print("\nThe maintenance plan the update executed:")
    print(m.explain("v", ["r"]))


def section_6_snapshots():
    heading("Section 6 — snapshots [AL80]: deferred refresh")
    from repro.core.maintainer import MaintenancePolicy

    db = Database()
    db.create_relation("r", ["A", "B"], [(1, 5)])
    m = ViewMaintainer(db)
    v = m.define_view(
        "snap", BaseRef("r").select("B >= 5"),
        policy=MaintenancePolicy.DEFERRED,
    )
    with db.transact() as txn:
        txn.insert("r", (2, 9))
    with db.transact() as txn:
        txn.delete("r", (2, 9))
    with db.transact() as txn:
        txn.insert("r", (3, 8))
    pending = m.pending_deltas("snap")
    print(
        "Three transactions committed; composed pending delta on r:",
        {
            "inserted": sorted(pending["r"].inserted),
            "deleted": sorted(pending["r"].deleted),
        },
    )
    print("(the insert/delete pair of (2,9) cancelled across transactions)")
    m.refresh("snap")
    print("after refresh:", sorted(v.contents.value_tuples()))


def main() -> None:
    section_4_example_4_1()
    section_5_1_select_views()
    section_5_2_project_views()
    section_5_3_join_views()
    section_5_3_tags()
    section_5_4_spj()
    section_6_snapshots()
    print("\nDone — every worked example reproduced.")


if __name__ == "__main__":
    main()
