"""Serving a maintained view over TCP: reads, writes, and live deltas.

The paper's machinery keeps a materialized view current inside one
process; the view-server puts that process on the network so that many
clients can read the view, commit transactions, and — in the alerter
spirit of [BC79] — subscribe to the view's delta stream without
polling.  This example runs the whole loop in one script:

1. start a ``ViewServer`` on an ephemeral port (via ``ServerHandle``,
   which hosts the asyncio loop on a background thread),
2. connect a *subscriber* client that tails the ``hot`` view's
   changefeed,
3. connect a *writer* client that commits transactions — some relevant
   to the view, some provably irrelevant (the Section 4 screening means
   those produce no delta and therefore no event),
4. show that a late subscriber can resume the feed from sequence 0 and
   replay everything it missed.

Run:  python examples/serve_client.py
"""

from repro import BaseRef, Database, ViewMaintainer
from repro.server import ServerConfig, ServerHandle, ViewClient, ViewServer


def main() -> None:
    db = Database()
    db.create_relation("order", ["order_id", "customer", "amount"], [])
    db.create_relation("customer", ["customer", "tier"], [(1, 1), (2, 2), (3, 1)])

    maintainer = ViewMaintainer(db)
    maintainer.define_view(
        "hot",
        BaseRef("order")
        .join(BaseRef("customer"))
        .select("tier = 1 and amount > 100")
        .project(["order_id", "amount"]),
    )

    server = ViewServer(db, maintainer, ServerConfig())
    with ServerHandle(server) as handle:
        print(f"serving on 127.0.0.1:{handle.port}")

        with ViewClient(port=handle.port) as subscriber, ViewClient(
            port=handle.port
        ) as writer:
            hello = subscriber.ping()
            print(f"server protocol v{hello['protocol']}, views: {hello['views']}")

            subscription = subscriber.subscribe("hot")
            print(f"subscribed to hot (id={subscription['subscription']})")

            # --- Commit through the wire --------------------------------
            # Two big tier-1 orders (relevant) and one small one that the
            # select condition screens out before any join work.
            writer.txn(insert={"order": [[10, 1, 500], [11, 3, 250]]})
            writer.txn(insert={"order": [[12, 1, 40]]})  # irrelevant
            writer.txn(delete={"order": [[10, 1, 500]]})

            # --- The delta stream IS the alert stream -------------------
            for event in subscriber.drain_events(2, timeout=5):
                delta = event["delta"]
                print(
                    f"seq={event['seq']}  +{delta['inserted']}  "
                    f"-{delta['deleted']}"
                )

            answer = writer.query("hot")
            print(f"hot now: {answer['rows']}")
            assert answer["rows"] == [[11, 250]]

            # --- Resume: a late subscriber replays the history ----------
            with ViewClient(port=handle.port) as late:
                resumed = late.subscribe("hot", from_seq=0)
                print(f"late subscriber replayed {resumed['replayed']} event(s)")
                replay = [e["seq"] for e in late.drain_events(2, timeout=5)]
                assert replay == [1, 3]  # txn 2 produced no delta: screened

            counters = writer.stats()["counters"]
            print(
                f"server counters: requests={counters['server_requests']} "
                f"txns={counters['server_txns_committed']} "
                f"events={counters['server_events_sent']}"
            )
    print("server drained and stopped")


if __name__ == "__main__":
    main()
