"""Counted and tagged relations.

Three tuple-collection types underpin the whole library:

* :class:`Relation` — a relation with the paper's Section 5.2
  *multiplicity counter*: a mapping from tuple to a positive count.
  Base relations always hold count 1 per tuple (the paper notes the
  counter "need not be explicitly stored" for them); materialized views
  rely on real counts so that projection distributes over difference.

* :class:`Delta` — the net effect of a transaction on one relation: a
  set of inserted tuples and a disjoint set of deleted tuples, exactly
  the ``(i_r, d_r)`` pair of Section 3.

* :class:`TaggedRelation` — tuples carrying an ``old``/``insert``/
  ``delete`` tag and a count; the operand and result type of the
  differential (truth-table row) evaluation of Section 5.3.

All three store rows as encoded value tuples aligned with their schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.algebra.tuples import Row, coerce_row
from repro.errors import MaintenanceError, SchemaError

ValueTuple = tuple[int, ...]


class Relation:
    """A multiset of tuples over one schema, stored as tuple → count.

    Counts are always positive; removing the last copy of a tuple
    removes its entry entirely, which is the paper's rule for deleting a
    view tuple "if the counter becomes zero".

    >>> r = Relation.from_rows(RelationSchema(["A", "B"]), [(1, 10), (2, 10)])
    >>> len(r)
    2
    >>> r.total_count()
    2
    """

    __slots__ = ("schema", "_counts")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._counts: dict[ValueTuple, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, schema: RelationSchema, rows: Iterable[object]
    ) -> "Relation":
        """Build a relation from any mix of Rows, mappings or sequences."""
        rel = cls(schema)
        for row in rows:
            rel.add(row)
        return rel

    @classmethod
    def from_counts(
        cls, schema: RelationSchema, counts: Mapping[ValueTuple, int]
    ) -> "Relation":
        """Build a relation directly from encoded tuple counts (internal)."""
        rel = cls(schema)
        for values, count in counts.items():
            if count <= 0:
                raise MaintenanceError(
                    f"relation counts must be positive, got {count} for {values}"
                )
            rel._counts[tuple(values)] = count
        return rel

    def copy(self) -> "Relation":
        """An independent copy sharing the (immutable) schema."""
        rel = Relation(self.schema)
        rel._counts = dict(self._counts)
        return rel

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, row: object, count: int = 1) -> None:
        """Insert ``count`` copies of ``row`` (incrementing its counter)."""
        if count <= 0:
            raise MaintenanceError(f"insert count must be positive, got {count}")
        values = coerce_row(self.schema, row)
        self._counts[values] = self._counts.get(values, 0) + count

    def discard(self, row: object, count: int = 1) -> None:
        """Remove ``count`` copies of ``row``.

        Raises :class:`MaintenanceError` when the relation does not hold
        that many copies — under correct differential maintenance a view
        counter never goes negative, so a failure here signals a bug (or
        a deliberately corrupted state in the tests).
        """
        if count <= 0:
            raise MaintenanceError(f"delete count must be positive, got {count}")
        values = coerce_row(self.schema, row)
        present = self._counts.get(values, 0)
        if present < count:
            raise MaintenanceError(
                f"cannot remove {count} copies of {values}: only {present} present"
            )
        if present == count:
            del self._counts[values]
        else:
            self._counts[values] = present - count

    def clear(self) -> int:
        """Drop every tuple; returns how many distinct tuples were held.

        Base-free hosts (followers and shard nodes carrying only
        self-maintainable views) call this to shed their base-relation
        copies after bootstrap — the schema stays, the rows go.
        """
        dropped = len(self._counts)
        self._counts.clear()
        return dropped

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *distinct* tuples."""
        return len(self._counts)

    def total_count(self) -> int:
        """Sum of all multiplicity counters."""
        return sum(self._counts.values())

    def __contains__(self, row: object) -> bool:
        try:
            values = coerce_row(self.schema, row)
        except SchemaError:
            return False
        return values in self._counts

    def count_of(self, row: object) -> int:
        """The multiplicity counter of ``row`` (0 when absent)."""
        values = coerce_row(self.schema, row)
        return self._counts.get(values, 0)

    def items(self) -> Iterator[tuple[ValueTuple, int]]:
        """Iterate ``(encoded_values, count)`` pairs (internal fast path)."""
        return iter(self._counts.items())

    def value_tuples(self) -> Iterator[ValueTuple]:
        """Iterate distinct encoded value tuples."""
        return iter(self._counts)

    def rows(self) -> Iterator[Row]:
        """Iterate distinct tuples as named :class:`Row` views."""
        for values in self._counts:
            yield Row(self.schema, values)

    def counts(self) -> dict[ValueTuple, int]:
        """A copy of the underlying count map."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Set/multiset algebra (used by baselines and consistency checks)
    # ------------------------------------------------------------------
    def union(self, other: "Relation") -> "Relation":
        """Counted union: counts add."""
        self._require_same_schema(other)
        out = self.copy()
        for values, count in other._counts.items():
            out._counts[values] = out._counts.get(values, 0) + count
        return out

    def difference(self, other: "Relation") -> "Relation":
        """Counted difference: counts subtract; must not go negative."""
        self._require_same_schema(other)
        out = self.copy()
        for values, count in other._counts.items():
            present = out._counts.get(values, 0)
            if present < count:
                raise MaintenanceError(
                    f"counted difference would be negative for {values}: "
                    f"{present} - {count}"
                )
            if present == count:
                out._counts.pop(values, None)
            else:
                out._counts[values] = present - count
        return out

    def _require_same_schema(self, other: "Relation") -> None:
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"schema mismatch: {self.schema.names} vs {other.schema.names}"
            )

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.names == other.schema.names and self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"<Relation {list(self.schema.names)} "
            f"{len(self)} tuples, total count {self.total_count()}>"
        )

    def pretty(self, limit: int = 20) -> str:
        """A small aligned text rendering, used by the examples."""
        header = " ".join(f"{n:>8}" for n in self.schema.names) + "    #"
        lines = [header, "-" * len(header)]
        for i, (values, count) in enumerate(sorted(self._counts.items())):
            if i >= limit:
                lines.append(f"... ({len(self) - limit} more)")
                break
            decoded = self.schema.decode_values(values)
            lines.append(" ".join(f"{v!r:>8}" for v in decoded) + f"  x{count}")
        return "\n".join(lines)


class Delta:
    """The net effect ``(i_r, d_r)`` of a transaction on one relation.

    Invariant (Section 3): the inserted and deleted tuple sets are
    disjoint from each other, inserts are disjoint from the pre-state
    and deletes are contained in it.  :class:`repro.engine.transactions`
    is responsible for establishing the invariant by net-effect
    cancellation; this class enforces insert/delete disjointness.
    """

    __slots__ = ("schema", "inserted", "deleted")

    def __init__(
        self,
        schema: RelationSchema,
        inserted: Iterable[object] = (),
        deleted: Iterable[object] = (),
    ) -> None:
        self.schema = schema
        self.inserted: dict[ValueTuple, int] = {}
        self.deleted: dict[ValueTuple, int] = {}
        for row in inserted:
            values = coerce_row(schema, row)
            self.inserted[values] = self.inserted.get(values, 0) + 1
        for row in deleted:
            values = coerce_row(schema, row)
            self.deleted[values] = self.deleted.get(values, 0) + 1
        overlap = self.inserted.keys() & self.deleted.keys()
        if overlap:
            raise MaintenanceError(
                f"delta inserts and deletes must be disjoint; overlap: {overlap}"
            )

    @classmethod
    def from_counts(
        cls,
        schema: RelationSchema,
        inserted: Mapping[ValueTuple, int],
        deleted: Mapping[ValueTuple, int],
    ) -> "Delta":
        """Internal constructor from pre-encoded count maps."""
        delta = cls(schema)
        delta.inserted = dict(inserted)
        delta.deleted = dict(deleted)
        overlap = delta.inserted.keys() & delta.deleted.keys()
        if overlap:
            raise MaintenanceError(
                f"delta inserts and deletes must be disjoint; overlap: {overlap}"
            )
        return delta

    def is_empty(self) -> bool:
        """True when the transaction had no net effect on this relation."""
        return not self.inserted and not self.deleted

    def insert_count(self) -> int:
        """Number of distinct net-inserted tuples."""
        return len(self.inserted)

    def delete_count(self) -> int:
        """Number of distinct net-deleted tuples."""
        return len(self.deleted)

    def tagged_items(self) -> Iterator[tuple[ValueTuple, Tag, int]]:
        """Iterate the delta as tagged tuples, the §5.3 representation."""
        for values, count in self.inserted.items():
            yield values, Tag.INSERT, count
        for values, count in self.deleted.items():
            yield values, Tag.DELETE, count

    def apply_to(self, relation: Relation) -> None:
        """Apply this delta in place: ``r := r ∪ i_r − d_r``."""
        for values, count in self.deleted.items():
            relation.discard(Row(relation.schema, values), count)
        for values, count in self.inserted.items():
            relation.add(Row(relation.schema, values), count)

    def compose(self, later: "Delta") -> "Delta":
        """The net effect of this delta followed by ``later``.

        Used by deferred (snapshot) maintenance to coalesce several
        transactions into one delta before a refresh.  A tuple inserted
        by one transaction and deleted by a later one cancels out, which
        is exactly the paper's "not represented at all in this set of
        changes" rule, lifted from within a transaction to a sequence of
        transactions.
        """
        if later.schema.names != self.schema.names:
            raise SchemaError(
                f"cannot compose deltas over {self.schema.names} "
                f"and {later.schema.names}"
            )
        inserted = dict(self.inserted)
        deleted = dict(self.deleted)

        for values, count in later.deleted.items():
            pending = inserted.get(values, 0)
            cancel = min(pending, count)
            if cancel:
                if pending == cancel:
                    del inserted[values]
                else:
                    inserted[values] = pending - cancel
            remaining = count - cancel
            if remaining:
                deleted[values] = deleted.get(values, 0) + remaining

        for values, count in later.inserted.items():
            pending = deleted.get(values, 0)
            cancel = min(pending, count)
            if cancel:
                if pending == cancel:
                    del deleted[values]
                else:
                    deleted[values] = pending - cancel
            remaining = count - cancel
            if remaining:
                inserted[values] = inserted.get(values, 0) + remaining

        return Delta.from_counts(self.schema, inserted, deleted)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return (
            self.schema.names == other.schema.names
            and self.inserted == other.inserted
            and self.deleted == other.deleted
        )

    def __repr__(self) -> str:
        return (
            f"<Delta {list(self.schema.names)} "
            f"+{len(self.inserted)} -{len(self.deleted)}>"
        )


class TaggedRelation:
    """Tuples carrying a tag and a count: the §5.3 evaluation currency.

    The map key is ``(values, tag)`` so the same tuple may legitimately
    appear under several tags while a differential expression is being
    evaluated (for instance, projected inserts and deletes landing on
    the same view tuple, which later partially cancel when the delta is
    applied to the stored view).
    """

    __slots__ = ("schema", "_counts")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self._counts: dict[tuple[ValueTuple, Tag], int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation, tag: Tag = Tag.OLD) -> "TaggedRelation":
        """Tag every tuple of ``relation`` with ``tag`` (default ``OLD``)."""
        out = cls(relation.schema)
        for values, count in relation.items():
            out._counts[(values, tag)] = count
        return out

    @classmethod
    def from_delta(cls, delta: Delta) -> "TaggedRelation":
        """The tagged form of a delta: inserts and deletes, tagged."""
        out = cls(delta.schema)
        for values, tag, count in delta.tagged_items():
            out._counts[(values, tag)] = count
        return out

    # ------------------------------------------------------------------
    # Mutation / inspection
    # ------------------------------------------------------------------
    def add(self, values: ValueTuple, tag: Tag, count: int = 1) -> None:
        """Accumulate ``count`` copies of ``values`` under ``tag``."""
        if tag is Tag.IGNORE:
            return
        if count <= 0:
            raise MaintenanceError(f"tagged count must be positive, got {count}")
        key = (values, tag)
        self._counts[key] = self._counts.get(key, 0) + count

    def items(self) -> Iterator[tuple[ValueTuple, Tag, int]]:
        """Iterate ``(values, tag, count)`` triples."""
        for (values, tag), count in self._counts.items():
            yield values, tag, count

    def __len__(self) -> int:
        return len(self._counts)

    def is_empty(self) -> bool:
        return not self._counts

    def count_of(self, values: ValueTuple, tag: Tag) -> int:
        """The count stored for ``values`` under ``tag`` (0 when absent)."""
        return self._counts.get((values, tag), 0)

    def merge(self, other: "TaggedRelation") -> None:
        """Accumulate all of ``other`` into this relation in place."""
        if other.schema.names != self.schema.names:
            raise SchemaError(
                f"schema mismatch: {self.schema.names} vs {other.schema.names}"
            )
        for (values, tag), count in other._counts.items():
            key = (values, tag)
            self._counts[key] = self._counts.get(key, 0) + count

    def to_delta(self) -> Delta:
        """Collapse the tagged tuples into a net :class:`Delta`.

        ``OLD`` tuples are dropped (they are already in the view);
        inserts and deletes of the same tuple cancel count-wise, which
        happens when different truth-table rows contribute opposite
        changes that net out.
        """
        inserted: dict[ValueTuple, int] = {}
        deleted: dict[ValueTuple, int] = {}
        for (values, tag), count in self._counts.items():
            if tag is Tag.INSERT:
                inserted[values] = inserted.get(values, 0) + count
            elif tag is Tag.DELETE:
                deleted[values] = deleted.get(values, 0) + count
        for values in list(inserted.keys() & deleted.keys()):
            cancel = min(inserted[values], deleted[values])
            inserted[values] -= cancel
            deleted[values] -= cancel
            if not inserted[values]:
                del inserted[values]
            if not deleted[values]:
                del deleted[values]
        return Delta.from_counts(self.schema, inserted, deleted)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaggedRelation):
            return NotImplemented
        return self.schema.names == other.schema.names and self._counts == other._counts

    def __repr__(self) -> str:
        by_tag: dict[Tag, int] = {}
        for (_, tag), count in self._counts.items():
            by_tag[tag] = by_tag.get(tag, 0) + count
        summary = ", ".join(f"{t.value}:{c}" for t, c in sorted(by_tag.items(), key=lambda kv: kv[0].value))
        return f"<TaggedRelation {list(self.schema.names)} {summary or 'empty'}>"
