"""Evaluation of SPJ expressions with the paper's redefined operators.

Two families of operators live here:

* **Counted operators** over :class:`~repro.algebra.relation.Relation`
  (Section 5.2): projection *sums* multiplicity counters, join
  *multiplies* them (the paper's ``t(N) = u(N) * v(N)``), selection
  leaves them unchanged.  :func:`evaluate` applies these to a whole
  expression tree — this is the "complete re-evaluation" the paper
  wants to avoid, and serves as our ground-truth baseline.

* **Tagged operators** over
  :class:`~repro.algebra.relation.TaggedRelation` (Section 5.3):
  identical count behaviour, plus tag combination per the paper's tag
  tables — in particular ``insert ⋈ delete`` pairs are discarded inside
  the join ("they do not emerge from the join").

Joins are hash joins keyed on the shared attributes; selections are
compiled to closures once per call so the per-row cost is a plain
function call.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.algebra.conditions import Condition, Var
from repro.algebra.expressions import (
    BaseRef,
    Difference,
    Expression,
    Join,
    Product,
    Project,
    Rename,
    Select,
    Union,
)
from repro.algebra.relation import Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag, combine_join_tags
from repro.errors import ExpressionError
from repro.instrumentation import charge

ValueTuple = tuple[int, ...]
Predicate = Callable[[ValueTuple], bool]


# ----------------------------------------------------------------------
# Condition compilation
# ----------------------------------------------------------------------

def compile_condition(condition: Condition, schema: RelationSchema) -> Predicate:
    """Compile ``condition`` into a fast row predicate for ``schema``.

    Variables are resolved to tuple positions once; the resulting
    closure evaluates one row with no dictionary lookups.
    """
    if condition.is_true():
        return lambda values: True
    if condition.is_false():
        return lambda values: False

    import operator as _op

    op_funcs = {
        "=": _op.eq,
        "<": _op.lt,
        ">": _op.gt,
        "<=": _op.le,
        ">=": _op.ge,
    }

    compiled_disjuncts: list[tuple[Callable, ...]] = []
    for disjunct in condition.disjuncts:
        atom_preds = []
        for atom in disjunct.atoms:
            func = op_funcs[atom.op]
            offset = atom.offset
            if isinstance(atom.left, Var) and isinstance(atom.right, Var):
                li = schema.index(atom.left.name)
                ri = schema.index(atom.right.name)
                atom_preds.append(
                    lambda v, f=func, li=li, ri=ri, c=offset: f(v[li], v[ri] + c)
                )
            elif isinstance(atom.left, Var):
                li = schema.index(atom.left.name)
                rc = atom.right.value + offset  # type: ignore[union-attr]
                atom_preds.append(lambda v, f=func, li=li, rc=rc: f(v[li], rc))
            elif isinstance(atom.right, Var):
                lc = atom.left.value  # type: ignore[union-attr]
                ri = schema.index(atom.right.name)
                atom_preds.append(
                    lambda v, f=func, lc=lc, ri=ri, c=offset: f(lc, v[ri] + c)
                )
            else:
                truth = atom.truth_value()
                atom_preds.append(lambda v, t=truth: t)
        compiled_disjuncts.append(tuple(atom_preds))

    if len(compiled_disjuncts) == 1:
        preds = compiled_disjuncts[0]
        return lambda values: all(p(values) for p in preds)

    disjuncts = tuple(compiled_disjuncts)
    return lambda values: any(all(p(values) for p in preds) for preds in disjuncts)


# ----------------------------------------------------------------------
# Counted operators over Relation
# ----------------------------------------------------------------------

def select_relation(relation: Relation, condition: Condition) -> Relation:
    """``σ_C(r)`` — counts unchanged (the paper's note on select)."""
    predicate = compile_condition(condition, relation.schema)
    out = Relation(relation.schema)
    for values, count in relation.items():
        charge("tuples_scanned")
        if predicate(values):
            out._counts[values] = count
    return out


def project_relation(relation: Relation, attributes: Sequence[str]) -> Relation:
    """``π_X(r)`` with summed multiplicity counters (Section 5.2)."""
    positions = relation.schema.positions(attributes)
    out_schema = relation.schema.project_schema(attributes)
    out = Relation(out_schema)
    counts = out._counts
    for values, count in relation.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in positions)
        counts[key] = counts.get(key, 0) + count
    return out


def join_relations(left: Relation, right: Relation) -> Relation:
    """Natural join with multiplied counters (Section 5.2's ⋈).

    Implemented as a hash join: the smaller operand is built into a hash
    table keyed on the shared attributes.  With no shared attributes the
    join degenerates into the cross product, as usual.
    """
    shared = left.schema.shared_names(right.schema)
    out_schema = left.schema.join_schema(right.schema)

    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_is_left = build is left

    build_keys = build.schema.positions(shared)
    probe_keys = probe.schema.positions(shared)

    # Positions of the probe-side attributes that are *not* shared,
    # needed to assemble output rows in out_schema order.
    table: dict[ValueTuple, list[tuple[ValueTuple, int]]] = {}
    for values, count in build.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in build_keys)
        table.setdefault(key, []).append((values, count))

    right_extra_positions = tuple(
        right.schema.index(n) for n in right.schema.names if n not in set(shared)
    )

    out = Relation(out_schema)
    counts = out._counts
    for probe_values, probe_count in probe.items():
        charge("join_probes")
        key = tuple(probe_values[i] for i in probe_keys)
        for build_values, build_count in table.get(key, ()):
            if build_is_left:
                lvals, rvals = build_values, probe_values
            else:
                lvals, rvals = probe_values, build_values
            row = lvals + tuple(rvals[i] for i in right_extra_positions)
            charge("tuples_emitted")
            counts[row] = counts.get(row, 0) + build_count * probe_count
    return out


def rename_relation(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """``ρ_mapping(r)`` — same tuples under a renamed schema."""
    out = Relation(relation.schema.renamed(mapping))
    out._counts = dict(relation._counts)
    return out


def product_relations(left: Relation, right: Relation) -> Relation:
    """Cross product with multiplied counters; schemas must be disjoint."""
    out_schema = left.schema.concat(right.schema)
    out = Relation(out_schema)
    counts = out._counts
    for lvals, lcount in left.items():
        for rvals, rcount in right.items():
            charge("tuples_emitted")
            counts[lvals + rvals] = lcount * rcount
    return out


def evaluate(expression: Expression, instances: Mapping[str, Relation]) -> Relation:
    """Fully evaluate an SPJ expression — complete re-evaluation.

    ``instances`` maps base-relation names to their current contents.
    This is the paper's "re-evaluating the relational expression that
    defines the view" and is used as the correctness oracle and the
    baseline against which the differential algorithm is measured.
    """
    charge("full_reevaluations")
    catalog = {name: rel.schema for name, rel in instances.items()}
    # Validates the tree up front, including condition variable scoping.
    expression.schema(catalog)
    return _evaluate_node(expression, instances)


def _evaluate_node(
    expression: Expression, instances: Mapping[str, Relation]
) -> Relation:
    if isinstance(expression, BaseRef):
        return instances[expression.name]
    if isinstance(expression, Select):
        return select_relation(
            _evaluate_node(expression.child, instances), expression.condition
        )
    if isinstance(expression, Project):
        return project_relation(
            _evaluate_node(expression.child, instances), expression.attributes
        )
    if isinstance(expression, Join):
        return join_relations(
            _evaluate_node(expression.left, instances),
            _evaluate_node(expression.right, instances),
        )
    if isinstance(expression, Product):
        return product_relations(
            _evaluate_node(expression.left, instances),
            _evaluate_node(expression.right, instances),
        )
    if isinstance(expression, Rename):
        return rename_relation(
            _evaluate_node(expression.child, instances), expression.mapping
        )
    if isinstance(expression, Union):
        left = _evaluate_node(expression.left, instances)
        right = _evaluate_node(expression.right, instances)
        return _align_schema(left, right.schema).union(right)
    if isinstance(expression, Difference):
        left = _evaluate_node(expression.left, instances)
        right = _evaluate_node(expression.right, instances)
        return left.difference(_align_schema(right, left.schema))
    from repro.algebra.aggregates import Aggregate, aggregate_relation

    if isinstance(expression, Aggregate):
        return aggregate_relation(
            _evaluate_node(expression.child, instances), expression.spec
        )
    raise ExpressionError(f"cannot evaluate {type(expression).__name__}")


def _align_schema(relation: Relation, target: RelationSchema) -> Relation:
    """Rebind a relation to an equally-named schema (domains may differ
    in provenance but names match by Union/Difference validation)."""
    if relation.schema is target or relation.schema == target:
        return relation
    out = Relation(target)
    out._counts = dict(relation._counts)
    return out


# ----------------------------------------------------------------------
# Tagged operators over TaggedRelation (Section 5.3)
# ----------------------------------------------------------------------

def tagged_select(relation: TaggedRelation, condition: Condition) -> TaggedRelation:
    """``σ_C`` over tagged tuples; tags pass through unchanged."""
    predicate = compile_condition(condition, relation.schema)
    out = TaggedRelation(relation.schema)
    for values, tag, count in relation.items():
        charge("tuples_scanned")
        if predicate(values):
            out.add(values, tag, count)
    return out


def tagged_project(
    relation: TaggedRelation, attributes: Sequence[str]
) -> TaggedRelation:
    """``π_X`` over tagged tuples; counts sum *per tag*."""
    positions = relation.schema.positions(attributes)
    out = TaggedRelation(relation.schema.project_schema(attributes))
    for values, tag, count in relation.items():
        charge("tuples_scanned")
        out.add(tuple(values[i] for i in positions), tag, count)
    return out


def tagged_join(left: TaggedRelation, right: TaggedRelation) -> TaggedRelation:
    """Natural join over tagged tuples, combining tags per the paper.

    ``insert ⋈ delete`` combinations yield ``IGNORE`` and are dropped
    inside the join, exactly as Section 5.3 specifies.
    """
    shared = left.schema.shared_names(right.schema)
    out_schema = left.schema.join_schema(right.schema)

    left_keys = left.schema.positions(shared)
    right_keys = right.schema.positions(shared)
    shared_set = set(shared)
    right_extra_positions = tuple(
        right.schema.index(n) for n in right.schema.names if n not in shared_set
    )

    table: dict[ValueTuple, list[tuple[ValueTuple, Tag, int]]] = {}
    for values, tag, count in left.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in left_keys)
        table.setdefault(key, []).append((values, tag, count))

    out = TaggedRelation(out_schema)
    for rvalues, rtag, rcount in right.items():
        charge("join_probes")
        key = tuple(rvalues[i] for i in right_keys)
        for lvalues, ltag, lcount in table.get(key, ()):
            tag = combine_join_tags(ltag, rtag)
            if tag is Tag.IGNORE:
                charge("tuples_ignored")
                continue
            row = lvalues + tuple(rvalues[i] for i in right_extra_positions)
            charge("tuples_emitted")
            out.add(row, tag, lcount * rcount)
    return out


def tagged_product(left: TaggedRelation, right: TaggedRelation) -> TaggedRelation:
    """Cross product over tagged tuples (disjoint schemas)."""
    out_schema = left.schema.concat(right.schema)
    out = TaggedRelation(out_schema)
    for lvalues, ltag, lcount in left.items():
        for rvalues, rtag, rcount in right.items():
            tag = combine_join_tags(ltag, rtag)
            if tag is Tag.IGNORE:
                charge("tuples_ignored")
                continue
            charge("tuples_emitted")
            out.add(lvalues + rvalues, tag, lcount * rcount)
    return out
