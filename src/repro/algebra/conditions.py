"""The selection-condition language of Section 4.

The paper restricts selection conditions to Boolean expressions built
from *atomic formulae* of the forms

    ``x op y``,   ``x op c``,   ``x op y + c``

where ``x`` and ``y`` are variables (attribute names), ``c`` is a
positive or negative integer constant, and ``op ∈ {=, <, >, ≤, ≥}``.
The operator ``≠`` is deliberately excluded: Rosenkrantz and Hunt's
polynomial satisfiability test — the engine behind irrelevant-update
detection — only works without it.  Conditions may combine atoms with
conjunction, and the paper additionally handles disjunctions of such
conjunctions (``C = C₁ ∨ C₂ ∨ … ∨ Cₘ``); this module therefore
represents every condition in *disjunctive normal form* (DNF).

The module provides:

* :class:`Var` / :class:`Const` — the two kinds of operand term;
* :class:`Atom` — one atomic formula, canonicalized so that any additive
  offset sits on the right-hand side (``left op right + c``);
* :class:`Conjunction` — a conjunction of atoms;
* :class:`Condition` — a disjunction of conjunctions (the general form);
* :func:`parse_condition` — a small recursive-descent parser accepting
  strings like ``"A < 10 and C > 5 and B = C"`` or
  ``"A <= B + 3 or D >= 7"``, with parentheses, converted to DNF.

All values are encoded integers (see :mod:`repro.algebra.domains`),
matching the paper's Section 3 convention.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.errors import ConditionError

#: Comparison operators admitted by the paper (no ``!=``).
OPERATORS = ("<=", ">=", "=", "<", ">")

_OP_FUNCS = {
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

#: The mirror image of each operator, used when swapping atom sides.
_OP_MIRROR = {"=": "=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


class Var:
    """A variable term: a reference to an attribute by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ConditionError(f"variable name must be a non-empty string: {name!r}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash((Var, self.name))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Const:
    """A constant term: an encoded integer value."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConditionError(f"constants must be integers, got {value!r}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Const, self.value))

    def __repr__(self) -> str:
        return f"Const({self.value})"


Term = Union[Var, Const]


def _coerce_term(term: object) -> Term:
    if isinstance(term, (Var, Const)):
        return term
    if isinstance(term, str):
        return Var(term)
    if isinstance(term, int) and not isinstance(term, bool):
        return Const(term)
    raise ConditionError(f"cannot interpret {term!r} as a condition term")


class Atom:
    """One atomic formula, canonicalized to ``left op right + offset``.

    Canonicalization rules applied at construction:

    * offsets attached to the left side move to the right with flipped
      sign (``x + a op y + b`` becomes ``x op y + (b − a)``);
    * if the right term is a constant, the offset folds into it;
    * if the *left* term is a constant but the right is a variable, the
      atom is mirrored so the variable is on the left (``5 < x`` becomes
      ``x > 5``), giving every atom one of the paper's three shapes —
      or the fully-ground shape ``c op d`` that arises after tuple
      substitution and can be evaluated outright.

    >>> Atom("A", "<", "B", offset=3)       # A < B + 3
    Atom(A < B + 3)
    >>> Atom(5, "<", "A")                   # mirrored to A > 5
    Atom(A > 5)
    >>> Atom(3, "<=", 7).truth_value()
    True
    """

    __slots__ = ("left", "op", "right", "offset")

    def __init__(self, left: object, op: str, right: object, offset: int = 0) -> None:
        if op not in _OP_FUNCS:
            if op in ("!=", "<>"):
                raise ConditionError(
                    "the operator != is outside the tractable class of "
                    "Rosenkrantz & Hunt and is not supported (Section 4)"
                )
            raise ConditionError(f"unknown comparison operator {op!r}")
        lterm = _coerce_term(left)
        rterm = _coerce_term(right)
        if isinstance(offset, bool) or not isinstance(offset, int):
            raise ConditionError(f"atom offset must be an integer, got {offset!r}")

        # Fold a constant right side together with the offset.
        if isinstance(rterm, Const):
            rterm = Const(rterm.value + offset)
            offset = 0
        # Put the variable on the left when only the right has one.
        if isinstance(lterm, Const) and isinstance(rterm, Var):
            lterm, rterm = rterm, Const(lterm.value - offset)
            op = _OP_MIRROR[op]
            offset = 0

        self.left = lterm
        self.op = op
        self.right = rterm
        self.offset = offset

    # ------------------------------------------------------------------
    # Shape queries (Definition 4.2 vocabulary)
    # ------------------------------------------------------------------
    def variables(self) -> frozenset[str]:
        """The set of variable names mentioned by the atom (α of Def 4.2)."""
        names = []
        if isinstance(self.left, Var):
            names.append(self.left.name)
        if isinstance(self.right, Var):
            names.append(self.right.name)
        return frozenset(names)

    def is_ground(self) -> bool:
        """True for fully-constant atoms ``c op d`` (variant *evaluable*)."""
        return isinstance(self.left, Const) and isinstance(self.right, Const)

    def is_single_variable(self) -> bool:
        """True for ``x op c`` atoms (one variable, one constant)."""
        return isinstance(self.left, Var) and isinstance(self.right, Const)

    def is_two_variable(self) -> bool:
        """True for ``x op y + c`` atoms."""
        return isinstance(self.left, Var) and isinstance(self.right, Var)

    def truth_value(self) -> bool:
        """Evaluate a ground atom; error if variables remain."""
        if not self.is_ground():
            raise ConditionError(f"{self!r} is not ground")
        assert isinstance(self.left, Const) and isinstance(self.right, Const)
        return _OP_FUNCS[self.op](self.left.value, self.right.value + self.offset)

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Truth of the atom under a total assignment of its variables."""
        lhs = self._term_value(self.left, assignment)
        rhs = self._term_value(self.right, assignment) + self.offset
        return _OP_FUNCS[self.op](lhs, rhs)

    @staticmethod
    def _term_value(term: Term, assignment: Mapping[str, int]) -> int:
        if isinstance(term, Const):
            return term.value
        try:
            return assignment[term.name]
        except KeyError:
            raise ConditionError(
                f"assignment is missing a value for variable {term.name!r}"
            ) from None

    def substitute(self, binding: Mapping[str, int]) -> "Atom":
        """Replace any bound variables by constants (Definition 4.1).

        Unbound variables are left intact; the result may be ground,
        single-variable or unchanged.
        """
        left: object = self.left
        right: object = self.right
        if isinstance(left, Var) and left.name in binding:
            left = Const(binding[left.name])
        if isinstance(right, Var) and right.name in binding:
            right = Const(binding[right.name])
        return Atom(left, self.op, right, self.offset)

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self.left, self.op, self.right, self.offset)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"Atom({self})"

    def __str__(self) -> str:
        left = self.left.name if isinstance(self.left, Var) else str(self.left.value)
        right = self.right.name if isinstance(self.right, Var) else str(self.right.value)
        if self.offset > 0:
            right = f"{right} + {self.offset}"
        elif self.offset < 0:
            right = f"{right} - {-self.offset}"
        return f"{left} {self.op} {right}"


class Conjunction:
    """A conjunction of atoms — one disjunct of a DNF condition.

    The empty conjunction is the constant ``True``.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        atom_list = []
        for atom in atoms:
            if not isinstance(atom, Atom):
                raise ConditionError(f"conjunction members must be Atoms, got {atom!r}")
            atom_list.append(atom)
        self.atoms: tuple[Atom, ...] = tuple(atom_list)

    def variables(self) -> frozenset[str]:
        """All variables mentioned by any atom."""
        out: frozenset[str] = frozenset()
        for atom in self.atoms:
            out |= atom.variables()
        return out

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Truth under a total assignment."""
        return all(atom.evaluate(assignment) for atom in self.atoms)

    def substitute(self, binding: Mapping[str, int]) -> "Conjunction":
        """Substitute constants for bound variables in every atom."""
        return Conjunction(atom.substitute(binding) for atom in self.atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Conjunction) and self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)

    def __repr__(self) -> str:
        return f"Conjunction({self})"

    def __str__(self) -> str:
        if not self.atoms:
            return "true"
        return " and ".join(str(a) for a in self.atoms)


class Condition:
    """A selection condition in DNF: a disjunction of conjunctions.

    * ``Condition.true()`` — one empty disjunct: always satisfied.
    * ``Condition.false()`` — no disjuncts: never satisfied (arises when
      simplification prunes every disjunct).
    """

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts: Iterable[Conjunction]) -> None:
        ds = []
        for d in disjuncts:
            if not isinstance(d, Conjunction):
                raise ConditionError(f"disjuncts must be Conjunctions, got {d!r}")
            ds.append(d)
        self.disjuncts: tuple[Conjunction, ...] = tuple(ds)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def true(cls) -> "Condition":
        return cls([Conjunction()])

    @classmethod
    def false(cls) -> "Condition":
        return cls([])

    @classmethod
    def of_atoms(cls, atoms: Iterable[Atom]) -> "Condition":
        """A single-conjunct condition from a list of atoms."""
        return cls([Conjunction(atoms)])

    @classmethod
    def coerce(cls, value: object) -> "Condition":
        """Accept a Condition, Conjunction, Atom, atom list or string."""
        if isinstance(value, Condition):
            return value
        if isinstance(value, Conjunction):
            return cls([value])
        if isinstance(value, Atom):
            return cls.of_atoms([value])
        if isinstance(value, str):
            return parse_condition(value)
        if isinstance(value, Sequence):
            return cls.of_atoms(list(value))
        raise ConditionError(f"cannot interpret {value!r} as a condition")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_true(self) -> bool:
        """Syntactically the constant ``True`` (an empty disjunct exists)."""
        return any(not d.atoms for d in self.disjuncts)

    def is_false(self) -> bool:
        """Syntactically the constant ``False`` (no disjuncts)."""
        return not self.disjuncts

    def variables(self) -> frozenset[str]:
        """The set Y of Section 4: all variables in the condition."""
        out: frozenset[str] = frozenset()
        for d in self.disjuncts:
            out |= d.variables()
        return out

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Truth under a total assignment of all variables."""
        return any(d.evaluate(assignment) for d in self.disjuncts)

    def substitute(self, binding: Mapping[str, int]) -> "Condition":
        """The substituted condition C(t, Y₂) of Definition 4.1."""
        return Condition(d.substitute(binding) for d in self.disjuncts)

    def conjoin(self, other: "Condition") -> "Condition":
        """DNF conjunction: distribute over the disjuncts."""
        other = Condition.coerce(other)
        return Condition(
            Conjunction(a.atoms + b.atoms)
            for a in self.disjuncts
            for b in other.disjuncts
        )

    def disjoin(self, other: "Condition") -> "Condition":
        """DNF disjunction: concatenate disjunct lists."""
        other = Condition.coerce(other)
        return Condition(self.disjuncts + other.disjuncts)

    def __and__(self, other: "Condition") -> "Condition":
        return self.conjoin(other)

    def __or__(self, other: "Condition") -> "Condition":
        return self.disjoin(other)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and self.disjuncts == other.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __repr__(self) -> str:
        return f"Condition({self})"

    def __str__(self) -> str:
        if not self.disjuncts:
            return "false"
        if len(self.disjuncts) == 1:
            return str(self.disjuncts[0])
        return " or ".join(f"({d})" for d in self.disjuncts)


#: Convenience constant: the always-true condition.
TRUE = Condition.true()


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<op><=|>=|==|=|<|>|!=|<>)"
    r"|(?P<num>-?\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)*)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<plus>\+)"
    r"|(?P<minus>-)"
    r")"
)

_KEYWORDS = {"and": "AND", "or": "OR", "true": "TRUE", "false": "FALSE"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ConditionError(f"cannot tokenize condition at: {remainder!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)  # type: ignore[arg-type]
        if kind == "name":
            lowered = value.lower()
            if lowered in _KEYWORDS:
                tokens.append((_KEYWORDS[lowered], value))
                continue
        assert kind is not None
        tokens.append((kind, value))
    tokens.append(("EOF", ""))
    return tokens


class _Parser:
    """Recursive-descent parser producing a DNF :class:`Condition`.

    Grammar (standard precedence: ``and`` binds tighter than ``or``)::

        condition := term ( OR term )*
        term      := factor ( AND factor )*
        factor    := atom | TRUE | FALSE | '(' condition ')'
        atom      := operand cmp operand
        operand   := NUM | NAME [ ('+'|'-') NUM ]
    """

    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._i = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._i]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _expect(self, kind: str) -> str:
        token_kind, value = self._next()
        if token_kind != kind:
            raise ConditionError(f"expected {kind}, got {value!r}")
        return value

    def parse(self) -> Condition:
        cond = self._condition()
        if self._peek()[0] != "EOF":
            raise ConditionError(f"unexpected trailing input: {self._peek()[1]!r}")
        return cond

    def _condition(self) -> Condition:
        cond = self._term()
        while self._peek()[0] == "OR":
            self._next()
            cond = cond.disjoin(self._term())
        return cond

    def _term(self) -> Condition:
        cond = self._factor()
        while self._peek()[0] == "AND":
            self._next()
            cond = cond.conjoin(self._factor())
        return cond

    def _factor(self) -> Condition:
        kind, _ = self._peek()
        if kind == "lparen":
            self._next()
            cond = self._condition()
            self._expect("rparen")
            return cond
        if kind == "TRUE":
            self._next()
            return Condition.true()
        if kind == "FALSE":
            self._next()
            return Condition.false()
        return Condition.of_atoms([self._atom()])

    def _atom(self) -> Atom:
        left_term, left_off = self._operand()
        op = self._expect("op")
        if op == "==":
            op = "="
        right_term, right_off = self._operand()
        # Move all offsets to the right-hand side.
        return Atom(left_term, op, right_term, right_off - left_off)

    def _operand(self) -> tuple[object, int]:
        kind, value = self._next()
        if kind == "num":
            return int(value), 0
        if kind != "name":
            raise ConditionError(f"expected a variable or number, got {value!r}")
        offset = 0
        nxt = self._peek()[0]
        if nxt in ("plus", "minus"):
            sign = 1 if nxt == "plus" else -1
            self._next()
            offset = sign * int(self._expect("num"))
        return value, offset


def parse_condition(text: str) -> Condition:
    """Parse a condition string into DNF.

    >>> str(parse_condition("A < 10 and C > 5 and B = C"))
    'A < 10 and C > 5 and B = C'
    >>> str(parse_condition("A <= B + 3 or D >= 7"))
    '(A <= B + 3) or (D >= 7)'
    """
    return _Parser(_tokenize(text)).parse()
