"""Aggregate views: GROUP BY + COUNT/SUM/AVG/MIN/MAX over an SPJ core.

The paper's Section 5.2 multiplicity counter is the degenerate case
(COUNT with no grouping keys) of per-group aggregate state.  This
module generalizes it: an :class:`Aggregate` node wraps an ordinary
SPJ expression (its *core*) and declares grouping keys plus a list of
:class:`AggregateColumn` specs.  The maintained view then holds one
visible row per non-empty group:

* ``count`` — the summed multiplicity of the group's core rows;
* ``sum``  — Σ value·count over the group (integer-valued domains);
* ``avg``  — ``sum // count`` (floor division, documented);
* ``min`` / ``max`` — the extremum over the group's *distinct* core
  values.  Sound deletes need per-value support counts — the classic
  unsound spot for incremental MIN/MAX — which is why the maintained
  state keeps the group's core-row support bag, not just totals
  (see :mod:`repro.core.aggregates`).

Aggregation must be the **outermost** operator of a view definition:
the core stays inside the paper's SPJ class, so the Section 5 delta
pipeline (screens, truth tables, counted projection) applies unchanged
to the core, and the aggregate fold is a separate, final stage.
Nested aggregates, or SPJ operators above an aggregate, are rejected
by :func:`~repro.algebra.expressions.to_normal_form`.

All arithmetic runs over *encoded* cell values (see
:mod:`repro.algebra.schema`): for integer domains the code is the
value itself; for label domains MIN/MAX order by registration code
(deterministic, and identical between differential maintenance and
full recompute), while SUM/AVG over a label domain is flagged as a
typed ERROR by the static analyzer (:mod:`repro.analysis`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.algebra.expressions import Expression, SchemaCatalog
from repro.algebra.relation import Relation
from repro.algebra.schema import Attribute, RelationSchema
from repro.errors import ExpressionError
from repro.instrumentation import charge

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "Aggregate",
    "AggregateColumn",
    "AggregateSpec",
    "aggregate_relation",
    "column_plans",
    "render_group",
]

#: The supported aggregate class, in canonical order.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")

ValueTuple = tuple[int, ...]
#: ``(func, position)`` pairs; position is -1 for ``count``.
ColumnPlan = tuple[tuple[str, int], ...]


class AggregateColumn:
    """One output column: an aggregate function over one core attribute.

    ``count`` takes no attribute (it counts rows); every other function
    takes exactly one.  ``alias`` names the output column and must be
    distinct from the grouping keys and the other aliases.
    """

    __slots__ = ("func", "attribute", "alias")

    def __init__(self, func: str, attribute: str | None, alias: str) -> None:
        if func not in AGGREGATE_FUNCTIONS:
            raise ExpressionError(
                f"unknown aggregate function {func!r}; supported: "
                f"{', '.join(AGGREGATE_FUNCTIONS)}"
            )
        if func == "count":
            if attribute is not None:
                raise ExpressionError(
                    "count takes no attribute (it counts the group's rows); "
                    f"got count({attribute})"
                )
        elif not attribute or not isinstance(attribute, str):
            raise ExpressionError(
                f"{func} needs exactly one attribute, got {attribute!r}"
            )
        if not alias or not isinstance(alias, str):
            raise ExpressionError(
                f"aggregate column needs a non-empty alias, got {alias!r}"
            )
        self.func = func
        self.attribute = attribute
        self.alias = alias

    def fingerprint(self) -> tuple[str, str | None, str]:
        """Hashable identity for plan caching."""
        return (self.func, self.attribute, self.alias)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateColumn):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __str__(self) -> str:
        inner = self.attribute if self.attribute is not None else "*"
        return f"{self.func}({inner}) as {self.alias}"

    def __repr__(self) -> str:
        return f"AggregateColumn({self})"


class AggregateSpec:
    """Grouping keys plus the aggregate column list of one view."""

    __slots__ = ("keys", "columns")

    def __init__(
        self,
        keys: Sequence[str],
        columns: Iterable[AggregateColumn],
    ) -> None:
        self.keys = tuple(keys)
        self.columns = tuple(columns)
        if not self.columns:
            raise ExpressionError(
                "an aggregate view needs at least one aggregate column"
            )
        if len(set(self.keys)) != len(self.keys):
            raise ExpressionError(f"duplicate grouping keys {self.keys}")
        for column in self.columns:
            if not isinstance(column, AggregateColumn):
                raise ExpressionError(
                    f"expected AggregateColumn, got {column!r}"
                )
        aliases = [column.alias for column in self.columns]
        if len(set(aliases)) != len(aliases):
            raise ExpressionError(f"duplicate aggregate aliases {aliases}")
        clash = set(aliases) & set(self.keys)
        if clash:
            raise ExpressionError(
                f"aggregate aliases {sorted(clash)} collide with grouping keys"
            )

    @property
    def has_minmax(self) -> bool:
        """True when any column is MIN or MAX (base-free obstruction)."""
        return any(column.func in ("min", "max") for column in self.columns)

    def input_attributes(self) -> tuple[str, ...]:
        """Core attributes the aggregates read, deduped in declared order."""
        seen: dict[str, None] = {}
        for column in self.columns:
            if column.attribute is not None:
                seen.setdefault(column.attribute, None)
        return tuple(seen)

    def core_attributes(self) -> tuple[str, ...]:
        """The attributes the SPJ core must produce: keys then inputs."""
        extra = tuple(
            a for a in self.input_attributes() if a not in self.keys
        )
        return self.keys + extra

    def output_schema(self, core_schema: RelationSchema) -> RelationSchema:
        """The visible schema: key attributes then one per column.

        Keys keep the core's domains; ``count``/``sum``/``avg`` columns
        are plain integers; ``min``/``max`` inherit the input's domain.
        """
        attrs = [
            core_schema.attributes[core_schema.index(key)]
            for key in self.keys
        ]
        for column in self.columns:
            if column.func in ("min", "max"):
                assert column.attribute is not None
                domain = core_schema.domain_of(column.attribute)
                attrs.append(Attribute(column.alias, domain))
            else:
                attrs.append(Attribute(column.alias))
        return RelationSchema(attrs)

    def fingerprint(self) -> tuple:
        """Hashable identity, mixed into the compiled plan fingerprint."""
        return (
            "aggregate",
            self.keys,
            tuple(column.fingerprint() for column in self.columns),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateSpec):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __str__(self) -> str:
        columns = ", ".join(str(column) for column in self.columns)
        if self.keys:
            return f"group by {', '.join(self.keys)} compute {columns}"
        return f"compute {columns}"

    def __repr__(self) -> str:
        return f"AggregateSpec({self})"


class Aggregate(Expression):
    """``γ_{keys; columns}(child)`` — the outermost aggregate operator."""

    __slots__ = ("child", "spec")

    def __init__(self, child: Expression, spec: AggregateSpec) -> None:
        if not isinstance(child, Expression):
            raise ExpressionError(
                f"Aggregate operand must be an Expression: {child!r}"
            )
        if not isinstance(spec, AggregateSpec):
            raise ExpressionError(
                f"Aggregate needs an AggregateSpec, got {spec!r}"
            )
        self.child = child
        self.spec = spec

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        child_schema = self.child.schema(catalog)
        missing = [
            name
            for name in self.spec.core_attributes()
            if name not in child_schema
        ]
        if missing:
            raise ExpressionError(
                f"aggregate references attributes {missing} not produced "
                f"by its operand (schema {child_schema.names})"
            )
        return self.spec.output_schema(child_schema)

    def base_names(self) -> tuple[str, ...]:
        return self.child.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"aggregate[{self.spec}]({self.child})"


# ----------------------------------------------------------------------
# The shared fold arithmetic
# ----------------------------------------------------------------------

def column_plans(spec: AggregateSpec, core_schema: RelationSchema) -> ColumnPlan:
    """Resolve each column to ``(func, core position)`` (-1 for count)."""
    return tuple(
        (
            column.func,
            -1
            if column.attribute is None
            else core_schema.index(column.attribute),
        )
        for column in spec.columns
    )


def render_group(
    key: ValueTuple,
    support: Mapping[ValueTuple, int],
    plans: ColumnPlan,
) -> ValueTuple | None:
    """The visible row of one group, from its core-row support bag.

    ``support`` maps the group's core rows (encoded) to their summed
    multiplicities.  Returns ``None`` for an empty group (the group
    emits no row at all — the aggregate analogue of "delete the view
    tuple when the counter reaches zero").  This is the single
    definition of the aggregate arithmetic: full evaluation
    (:func:`aggregate_relation`), the interpreter fold and the
    generated kernels (:mod:`repro.core.codegen`) must all agree with
    it cell for cell.
    """
    total = sum(support.values())
    if total <= 0:
        return None
    cells = list(key)
    for func, position in plans:
        if func == "count":
            cells.append(total)
        elif func == "sum":
            cells.append(
                sum(row[position] * count for row, count in support.items())
            )
        elif func == "avg":
            summed = sum(
                row[position] * count for row, count in support.items()
            )
            cells.append(summed // total)
        elif func == "min":
            cells.append(min(row[position] for row in support))
        else:  # max
            cells.append(max(row[position] for row in support))
    return tuple(cells)


def aggregate_relation(relation: Relation, spec: AggregateSpec) -> Relation:
    """Full evaluation: group ``relation`` and render every group.

    The input must produce every key and aggregate input attribute
    (it is typically the evaluated SPJ core).  Each non-empty group
    yields exactly one visible row with count 1 — aggregate view
    contents are sets, the multiplicity machinery lives underneath in
    the core support.  With no grouping keys the whole relation is one
    group, and an empty input yields an empty view (no row, matching
    SQL's ``GROUP BY ()`` with zero groups rather than a NULL row —
    documented in docs/aggregates.md).
    """
    schema = relation.schema
    key_positions = schema.positions(spec.keys)
    plans = column_plans(spec, schema)
    groups: dict[ValueTuple, dict[ValueTuple, int]] = {}
    for values, count in relation.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in key_positions)
        bag = groups.setdefault(key, {})
        bag[values] = bag.get(values, 0) + count
    counts: dict[ValueTuple, int] = {}
    for key in sorted(groups):
        row = render_group(key, groups[key], plans)
        if row is not None:
            counts[row] = 1
    return Relation.from_counts(spec.output_schema(schema), counts)
