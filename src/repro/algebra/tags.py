"""The paper's tag algebra (Section 5.3).

To handle transactions that both insert and delete, the paper tags every
tuple flowing through a differential evaluation as ``insert``,
``delete`` or ``old`` and redefines the join to combine tags.  Two
tables in the paper define the semantics; both are reproduced verbatim
here and exercised by experiment **E6**.

Join tag combination (the 9-row table of Section 5.3)::

    r1      r2      r1 ⋈ r2
    ------  ------  -------
    insert  insert  insert
    insert  delete  ignore
    insert  old     insert
    delete  insert  ignore
    delete  delete  delete
    delete  old     delete
    old     insert  insert
    old     delete  delete
    old     old     old

Select / project tag propagation (the unary table)::

    r       σ(r) or π(r)
    ------  ------------
    insert  insert
    delete  delete
    old     old

The meaning of ``old`` here is precise: a tuple tagged ``old`` is one
present *both before and after* the transaction (``r − d_r``).  With
that reading the table is exactly the algebraic expansion of
``(r − d_r ∪ i_r) ⋈ (s − d_s ∪ i_s)``: combinations producing tuples
present only in the new state are inserts, those present only in the old
state are deletes, ``insert ⋈ delete`` pairs exist in *neither* state
and are ignored ("do not emerge from the join", as the paper puts it).
"""

from __future__ import annotations

import enum


class Tag(enum.Enum):
    """Provenance tag attached to tuples during differential evaluation."""

    OLD = "old"
    INSERT = "insert"
    DELETE = "delete"
    #: Result marker only — never attached to a stored tuple.
    IGNORE = "ignore"

    def __repr__(self) -> str:
        return f"Tag.{self.name}"


#: The paper's join tag table, keyed by the operand tags.
JOIN_TAG_TABLE: dict[tuple[Tag, Tag], Tag] = {
    (Tag.INSERT, Tag.INSERT): Tag.INSERT,
    (Tag.INSERT, Tag.DELETE): Tag.IGNORE,
    (Tag.INSERT, Tag.OLD): Tag.INSERT,
    (Tag.DELETE, Tag.INSERT): Tag.IGNORE,
    (Tag.DELETE, Tag.DELETE): Tag.DELETE,
    (Tag.DELETE, Tag.OLD): Tag.DELETE,
    (Tag.OLD, Tag.INSERT): Tag.INSERT,
    (Tag.OLD, Tag.DELETE): Tag.DELETE,
    (Tag.OLD, Tag.OLD): Tag.OLD,
}

#: The paper's unary (select/project) tag table.
UNARY_TAG_TABLE: dict[Tag, Tag] = {
    Tag.INSERT: Tag.INSERT,
    Tag.DELETE: Tag.DELETE,
    Tag.OLD: Tag.OLD,
}


def combine_join_tags(left: Tag, right: Tag) -> Tag:
    """Tag of a joined tuple, per the paper's Section 5.3 table.

    ``IGNORE`` operands are not valid inputs: the paper specifies that
    ignored tuples are discarded *when performing the join*, so they can
    never reach a subsequent combination.
    """
    try:
        return JOIN_TAG_TABLE[(left, right)]
    except KeyError:
        raise ValueError(f"cannot combine tags {left!r} ⋈ {right!r}") from None


def unary_tag(tag: Tag) -> Tag:
    """Tag of a selected/projected tuple (identity on real tags)."""
    try:
        return UNARY_TAG_TABLE[tag]
    except KeyError:
        raise ValueError(f"{tag!r} cannot flow through a unary operator") from None
