"""Tuple (row) handling.

Internally, relations store rows as plain Python value tuples aligned
with their schema's attribute order — the cheapest hashable
representation for the join-heavy workloads of the benchmarks.  The
:class:`Row` class in this module is a *view* over such a value tuple
that offers mapping-style access by attribute name, used at API
boundaries and in examples; the inner loops of the evaluator never
allocate Rows.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.algebra.schema import RelationSchema
from repro.errors import SchemaError


class Row(Mapping[str, object]):
    """An immutable named view over one stored tuple.

    >>> from repro.algebra.schema import RelationSchema
    >>> schema = RelationSchema(["A", "B"])
    >>> row = Row(schema, (1, 2))
    >>> row["A"], row["B"]
    (1, 2)
    >>> dict(row)
    {'A': 1, 'B': 2}
    """

    __slots__ = ("schema", "values")

    def __init__(self, schema: RelationSchema, values: Sequence[int]) -> None:
        if len(values) != len(schema):
            raise SchemaError(
                f"row arity {len(values)} does not match schema {schema.names}"
            )
        self.schema = schema
        self.values: tuple[int, ...] = tuple(values)

    def __getitem__(self, name: str) -> object:
        i = self.schema.index(name)
        return self.schema.attributes[i].domain.decode(self.values[i])

    def __iter__(self) -> Iterator[str]:
        return iter(self.schema.names)

    def __len__(self) -> int:
        return len(self.values)

    def raw(self, name: str) -> int:
        """The encoded (integer) value of attribute ``name``."""
        return self.values[self.schema.index(name)]

    def project(self, names: Sequence[str]) -> "Row":
        """A Row over the sub-schema ``names``."""
        positions = self.schema.positions(names)
        return Row(
            self.schema.project_schema(names),
            tuple(self.values[i] for i in positions),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self.schema == other.schema and self.values == other.values
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self.values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={self[n]!r}" for n in self.schema.names)
        return f"Row({inner})"


def coerce_row(schema: RelationSchema, row: object) -> tuple[int, ...]:
    """Convert any user-supplied row shape to an encoded value tuple.

    Accepts a :class:`Row`, a mapping from attribute names, or a
    positional sequence, validating values against the schema's domains.
    """
    if isinstance(row, Row):
        if row.schema.names != schema.names:
            raise SchemaError(
                f"row schema {row.schema.names} does not match {schema.names}"
            )
        return row.values
    if isinstance(row, Mapping):
        missing = [n for n in schema.names if n not in row]
        if missing:
            raise SchemaError(f"row is missing attributes {missing}")
        extra = [n for n in row if n not in schema]
        if extra:
            raise SchemaError(f"row has attributes {extra} not in schema {schema.names}")
        return schema.encode_values([row[n] for n in schema.names])
    if isinstance(row, Sequence) and not isinstance(row, (str, bytes)):
        return schema.encode_values(row)
    raise SchemaError(f"cannot interpret {row!r} as a row of {schema.names}")
