"""Algebraic rewrites: condition simplification and selection pushdown.

The differential planner does its own pushdown over the flattened
normal form; this module provides the analogous *tree-level* rewrites,
useful when evaluating expressions with the naive tree evaluator and as
a validated reference for the planner's behaviour:

* :func:`simplify_condition` — evaluate ground atoms, drop disjuncts
  made false, deduplicate atoms;
* :func:`push_selections` — move selection atoms toward the leaves of
  an SPJ tree (classic heuristic: filter early, join less);
* :func:`is_spj` — membership test for the paper's supported class.

All rewrites preserve counted semantics, which the property tests
verify by comparing evaluation results before and after rewriting.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.algebra.expressions import (
    BaseRef,
    Expression,
    Join,
    Product,
    Project,
    Rename,
    Select,
)
from repro.algebra.schema import RelationSchema


def simplify_condition(condition: Condition) -> Condition:
    """Evaluate ground atoms and prune dead disjuncts.

    * a ground-false atom kills its disjunct;
    * ground-true atoms are dropped;
    * duplicate atoms within a disjunct collapse to one.

    The result may be ``Condition.false()`` (no disjuncts survive) or
    contain an empty conjunction (a disjunct became trivially true).

    >>> from repro.algebra.conditions import parse_condition
    >>> str(simplify_condition(parse_condition("3 < 5 and A > 2")))
    'A > 2'
    >>> simplify_condition(parse_condition("7 < 5 and A > 2")).is_false()
    True
    """
    survivors = []
    for disjunct in condition.disjuncts:
        atoms: list[Atom] = []
        seen: set[Atom] = set()
        dead = False
        for atom in disjunct.atoms:
            if atom.is_ground():
                if not atom.truth_value():
                    dead = True
                    break
                continue
            if atom not in seen:
                seen.add(atom)
                atoms.append(atom)
        if not dead:
            survivors.append(Conjunction(atoms))
    return Condition(survivors)


def is_spj(expression: Expression) -> bool:
    """True when the expression uses only S, P, J (plus ×, ρ) operators."""
    return all(
        isinstance(node, (BaseRef, Select, Project, Join, Product, Rename))
        for node in expression.walk()
    )


def push_selections(
    expression: Expression, catalog: Mapping[str, RelationSchema]
) -> Expression:
    """Push selection atoms toward the leaves of an SPJ tree.

    Only purely conjunctive conditions are split (a disjunction must
    stay whole to remain equivalent); each atom moves to the deepest
    subtree that produces all of its variables.  Counted semantics is
    preserved: selection commutes with join, product, rename and — for
    atoms over surviving attributes — with projection.
    """
    expression.schema(catalog)  # validate before rewriting
    rewritten, pending = _push(expression, (), catalog)
    if pending:
        rewritten = Select(rewritten, Condition.of_atoms(list(pending)))
    return rewritten


def _push(
    node: Expression,
    pending: tuple[Atom, ...],
    catalog: Mapping[str, RelationSchema],
) -> tuple[Expression, tuple[Atom, ...]]:
    """Rewrite ``node``, threading not-yet-placed atoms downward.

    Returns the rewritten node and the atoms that could not be placed
    inside it (the caller re-attaches them above).
    """
    if isinstance(node, Select):
        simplified = simplify_condition(node.condition)
        if len(simplified.disjuncts) == 1:
            child, leftover = _push(
                node.child, pending + simplified.disjuncts[0].atoms, catalog
            )
            return child, leftover
        child, leftover = _push(node.child, pending, catalog)
        return Select(child, simplified), leftover

    if isinstance(node, (Join, Product)):
        left_schema = node.left.schema(catalog).nameset
        right_schema = node.right.schema(catalog).nameset
        to_left, to_right, stay = [], [], []
        for atom in pending:
            names = atom.variables()
            if names <= left_schema:
                to_left.append(atom)
            elif names <= right_schema:
                to_right.append(atom)
            else:
                stay.append(atom)
        left, left_over = _push(node.left, tuple(to_left), catalog)
        right, right_over = _push(node.right, tuple(to_right), catalog)
        rebuilt: Expression = (
            Join(left, right) if isinstance(node, Join) else Product(left, right)
        )
        leftovers = tuple(stay) + left_over + right_over
        # Atoms spanning both sides apply right here, above the join.
        if leftovers:
            applicable = [
                a for a in leftovers
                if a.variables() <= (left_schema | right_schema)
            ]
            rest = tuple(a for a in leftovers if a not in applicable)
            if applicable:
                rebuilt = Select(rebuilt, Condition.of_atoms(applicable))
            return rebuilt, rest
        return rebuilt, ()

    if isinstance(node, Project):
        kept = node.child.schema(catalog).nameset
        inside = [a for a in pending if a.variables() <= kept]
        outside = tuple(a for a in pending if a not in inside)
        child, leftover = _push(node.child, tuple(inside), catalog)
        return Project(child, node.attributes), outside + leftover

    if isinstance(node, Rename):
        # Map pending atoms back through the rename, push, and keep the
        # rename on top.  Atoms mentioning non-renamed attributes pass
        # through unchanged; renamed ones get their variables restored.
        inverse = {new: old for old, new in node.mapping.items()}
        mapped = []
        for atom in pending:
            mapped.append(_rename_atom(atom, inverse))
        child, leftover = _push(node.child, tuple(mapped), catalog)
        forward = dict(node.mapping)
        restored = tuple(_rename_atom(a, forward) for a in leftover)
        return Rename(child, node.mapping), restored

    # Leaf (BaseRef) or unknown: attach whatever is pending right here.
    if pending:
        return Select(node, Condition.of_atoms(list(pending))), ()
    return node, ()


def _rename_atom(atom: Atom, mapping: Mapping[str, str]) -> Atom:
    from repro.algebra.conditions import Var

    left: object = atom.left
    right: object = atom.right
    if isinstance(left, Var) and left.name in mapping:
        left = Var(mapping[left.name])
    if isinstance(right, Var) and right.name in mapping:
        right = Var(mapping[right.name])
    return Atom(left, atom.op, right, atom.offset)
