"""Relation schemes.

A :class:`RelationSchema` is an *ordered* sequence of named attributes,
mirroring the paper's relation schemes ``R = {A, B}``.  Order matters
operationally (tuples are stored as plain value tuples aligned with the
schema), but schema equality and the set operations used by the paper's
formalism (``R_i ∩ R_j``, ``Y ∩ R``) treat a schema as the set of its
attribute names.

Attribute names are strings and must be unique within a schema.  The
paper's Section 4 formalism assumes the relation schemes mentioned in a
view are pairwise disjoint (``R_i ∩ R_j = ∅``); where the library needs
to combine relations whose schemas share names (natural join), the
normalization step of :mod:`repro.algebra.expressions` introduces
*qualified* attribute aliases such as ``s.B``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.algebra.domains import Domain, INTEGERS
from repro.errors import SchemaError


class Attribute:
    """A named attribute with a domain.

    Attributes compare equal by ``(name, domain)``; two attributes of the
    same name in different schemas refer to the same logical attribute,
    exactly as the paper's variable naming does.
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Domain | None = None) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        self.name = name
        self.domain = domain if domain is not None else INTEGERS

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.domain == other.domain
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r})"

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute under ``new_name``."""
        return Attribute(new_name, self.domain)


class RelationSchema:
    """An ordered relation scheme.

    Parameters
    ----------
    attributes:
        Either :class:`Attribute` objects or bare strings (which get the
        default integer domain, matching the paper's convention).

    Examples
    --------
    >>> R = RelationSchema(["A", "B"])
    >>> R.names
    ('A', 'B')
    >>> R.index("B")
    1
    """

    __slots__ = ("attributes", "names", "_index", "_nameset")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        attrs = []
        for a in attributes:
            if isinstance(a, str):
                attrs.append(Attribute(a))
            elif isinstance(a, Attribute):
                attrs.append(a)
            else:
                raise SchemaError(f"expected Attribute or str, got {a!r}")
        self.attributes: tuple[Attribute, ...] = tuple(attrs)
        self.names: tuple[str, ...] = tuple(a.name for a in self.attributes)
        if len(set(self.names)) != len(self.names):
            raise SchemaError(f"duplicate attribute names in schema {self.names}")
        if not self.names:
            raise SchemaError("a relation schema needs at least one attribute")
        self._index = {name: i for i, name in enumerate(self.names)}
        self._nameset = frozenset(self.names)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def index(self, name: str) -> int:
        """Position of attribute ``name`` in the schema order."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"schema {self.names} has no attribute {name!r}") from None

    def domain_of(self, name: str) -> Domain:
        """Domain of attribute ``name``."""
        return self.attributes[self.index(name)].domain

    def __contains__(self, name: object) -> bool:
        return name in self._nameset

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    @property
    def nameset(self) -> frozenset[str]:
        """The schema viewed as a set of attribute names (the paper's R)."""
        return self._nameset

    # ------------------------------------------------------------------
    # Set-style algebra on schemas
    # ------------------------------------------------------------------
    def is_disjoint(self, other: "RelationSchema") -> bool:
        """True when the schemas share no attribute name (``R ∩ S = ∅``)."""
        return self._nameset.isdisjoint(other._nameset)

    def shared_names(self, other: "RelationSchema") -> tuple[str, ...]:
        """Attribute names common to both schemas, in this schema's order."""
        return tuple(n for n in self.names if n in other._nameset)

    def concat(self, other: "RelationSchema") -> "RelationSchema":
        """Schema of a cross product; requires disjointness."""
        if not self.is_disjoint(other):
            raise SchemaError(
                "cross product requires disjoint schemas; "
                f"shared attributes: {self.shared_names(other)}"
            )
        return RelationSchema(self.attributes + other.attributes)

    def join_schema(self, other: "RelationSchema") -> "RelationSchema":
        """Schema of a natural join: this schema then ``other``'s new names."""
        extra = tuple(a for a in other.attributes if a.name not in self._nameset)
        return RelationSchema(self.attributes + extra)

    def project_schema(self, names: Sequence[str]) -> "RelationSchema":
        """Schema restricted to ``names`` (in the given order)."""
        if not names:
            raise SchemaError("projection needs at least one attribute")
        return RelationSchema(tuple(self.attributes[self.index(n)] for n in names))

    def positions(self, names: Sequence[str]) -> tuple[int, ...]:
        """Indices of ``names`` in schema order (for fast row slicing)."""
        return tuple(self.index(n) for n in names)

    def renamed(self, mapping: Mapping[str, str]) -> "RelationSchema":
        """Return a schema with attributes renamed per ``mapping``.

        Names absent from ``mapping`` are kept.  Used by the SPJ
        normalizer to qualify duplicate names before a cross product.
        """
        return RelationSchema(
            tuple(a.renamed(mapping.get(a.name, a.name)) for a in self.attributes)
        )

    # ------------------------------------------------------------------
    # Value handling
    # ------------------------------------------------------------------
    def encode_values(self, values: Sequence[object]) -> tuple[int, ...]:
        """Validate and encode one tuple of raw values against the schema."""
        if len(values) != len(self.attributes):
            raise SchemaError(
                f"tuple arity {len(values)} does not match schema arity "
                f"{len(self.attributes)} ({self.names})"
            )
        return tuple(
            attr.domain.validate(v) for attr, v in zip(self.attributes, values)
        )

    def decode_values(self, codes: Sequence[int]) -> tuple[object, ...]:
        """Invert :meth:`encode_values`."""
        return tuple(
            attr.domain.decode(c) for attr, c in zip(self.attributes, codes)
        )

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, RelationSchema) and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({list(self.names)!r})"
