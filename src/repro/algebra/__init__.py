"""Relational-algebra substrate.

This subpackage implements, from scratch, everything Section 3 of the
paper assumes of its host system: relation schemes over discrete domains,
tuples, *counted* relations (Section 5.2's multiplicity counters),
*tagged* delta relations (Section 5.3's insert/delete/old tags), the
select–project–join expression language, the condition language of
Section 4, and an evaluator implementing the paper's redefined project
and join operators.
"""

from repro.algebra.domains import Domain, IntegerDomain, FiniteDomain, StringDomain
from repro.algebra.schema import Attribute, RelationSchema
from repro.algebra.tuples import Row
from repro.algebra.tags import Tag, combine_join_tags, unary_tag
from repro.algebra.relation import Relation, TaggedRelation, Delta
from repro.algebra.conditions import (
    Atom,
    Conjunction,
    Condition,
    Term,
    Var,
    Const,
    TRUE,
    parse_condition,
)
from repro.algebra.expressions import (
    BaseRef,
    Select,
    Project,
    Join,
    Product,
    Rename,
    Union,
    Difference,
    Expression,
    NormalForm,
    Occurrence,
    to_normal_form,
)
from repro.algebra.evaluate import evaluate
from repro.algebra.rewrites import simplify_condition, push_selections, is_spj

__all__ = [
    "Domain",
    "IntegerDomain",
    "FiniteDomain",
    "StringDomain",
    "Attribute",
    "RelationSchema",
    "Row",
    "Tag",
    "combine_join_tags",
    "unary_tag",
    "Relation",
    "TaggedRelation",
    "Delta",
    "Atom",
    "Conjunction",
    "Condition",
    "Term",
    "Var",
    "Const",
    "TRUE",
    "parse_condition",
    "BaseRef",
    "Select",
    "Project",
    "Join",
    "Product",
    "Rename",
    "Union",
    "Difference",
    "Expression",
    "NormalForm",
    "Occurrence",
    "to_normal_form",
    "evaluate",
    "simplify_condition",
    "push_selections",
    "is_spj",
]
