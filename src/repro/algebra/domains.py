"""Attribute domains.

Section 3 of the paper assumes that *"all attributes are defined on
discrete and finite domains"* and notes that such a domain can always be
mapped to a subset of the natural numbers, which is why the paper uses
integer values in all examples.  The satisfiability machinery of
Section 4 (Rosenkrantz & Hunt) additionally relies on domains being
*discrete*, so that strict comparisons can be rewritten into weak ones
(``x < y + c  ≡  x ≤ y + c − 1``).

This module models that assumption explicitly.  Three domain flavours
are provided:

* :class:`IntegerDomain` — the unbounded discrete integers; the default
  and the domain used throughout the paper's examples.
* :class:`FiniteDomain` — an integer interval ``[lo, hi]``; useful for
  workload generation and for brute-force satisfiability cross-checks in
  the test suite.
* :class:`StringDomain` — an enumerated set of labels, internally mapped
  onto ``0 .. n−1`` so that all comparison machinery keeps operating on
  integers, exactly as the paper suggests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DomainError


class Domain:
    """Base class for attribute domains.

    A domain decides which raw Python values are admissible for an
    attribute and how they are encoded as integers.  All comparison and
    satisfiability logic in :mod:`repro.core` works on the integer
    encodings, in keeping with the paper's Section 3 convention.
    """

    #: Human-readable name used in reprs and error messages.
    name = "domain"

    def contains(self, value: object) -> bool:
        """Return ``True`` when ``value`` belongs to this domain."""
        raise NotImplementedError

    def encode(self, value: object) -> int:
        """Map an admissible ``value`` to its integer encoding."""
        raise NotImplementedError

    def decode(self, code: int) -> object:
        """Invert :meth:`encode`."""
        raise NotImplementedError

    def validate(self, value: object) -> int:
        """Encode ``value`` or raise :class:`DomainError` if inadmissible."""
        if not self.contains(value):
            raise DomainError(f"value {value!r} is not in {self!r}")
        return self.encode(value)

    def sample_values(self) -> Iterator[int]:
        """Yield *some* encoded values, used by witness construction.

        Infinite domains yield an unbounded stream; finite domains yield
        each member once.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__}>"


class IntegerDomain(Domain):
    """The unbounded discrete integers — the paper's default domain."""

    name = "integer"

    def contains(self, value: object) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def encode(self, value: object) -> int:
        return int(value)  # type: ignore[arg-type]

    def decode(self, code: int) -> object:
        return code

    def sample_values(self) -> Iterator[int]:
        # 0, 1, -1, 2, -2, ... : a fair enumeration of Z.
        yield 0
        k = 1
        while True:
            yield k
            yield -k
            k += 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntegerDomain)

    def __hash__(self) -> int:
        return hash(IntegerDomain)


class FiniteDomain(Domain):
    """A finite integer interval ``[lo, hi]`` (both ends inclusive).

    The paper only needs finiteness for its "discrete and finite"
    framing; the satisfiability test itself is sound over the unbounded
    integers.  Finite domains are what the test suite's brute-force
    oracle enumerates.
    """

    name = "finite"

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise DomainError(f"empty finite domain [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def contains(self, value: object) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.lo <= value <= self.hi
        )

    def encode(self, value: object) -> int:
        return int(value)  # type: ignore[arg-type]

    def decode(self, code: int) -> object:
        return code

    def sample_values(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1))

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FiniteDomain)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((FiniteDomain, self.lo, self.hi))

    def __repr__(self) -> str:
        return f"<FiniteDomain [{self.lo}, {self.hi}]>"


class StringDomain(Domain):
    """An enumerated label domain, encoded as ``0 .. n−1``.

    Following the paper's observation that any discrete finite domain can
    be mapped to naturals, labels are ordered by their position in the
    constructor argument; comparisons between encoded labels therefore
    follow that enumeration order.
    """

    name = "string"

    def __init__(self, labels: Iterable[str]) -> None:
        self.labels = tuple(labels)
        if not self.labels:
            raise DomainError("a StringDomain needs at least one label")
        if len(set(self.labels)) != len(self.labels):
            raise DomainError("StringDomain labels must be distinct")
        self._codes = {label: i for i, label in enumerate(self.labels)}

    def contains(self, value: object) -> bool:
        return value in self._codes

    def encode(self, value: object) -> int:
        try:
            return self._codes[value]  # type: ignore[index]
        except (KeyError, TypeError):
            raise DomainError(f"label {value!r} is not in {self!r}") from None

    def decode(self, code: int) -> object:
        try:
            return self.labels[code]
        except IndexError:
            raise DomainError(f"code {code} out of range for {self!r}") from None

    def sample_values(self) -> Iterator[int]:
        return iter(range(len(self.labels)))

    def __len__(self) -> int:
        return len(self.labels)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringDomain) and self.labels == other.labels

    def __hash__(self) -> int:
        return hash((StringDomain, self.labels))

    def __repr__(self) -> str:
        preview = ", ".join(self.labels[:4])
        if len(self.labels) > 4:
            preview += ", …"
        return f"<StringDomain {{{preview}}}>"


#: Shared default instance; attributes that do not declare a domain use it.
INTEGERS = IntegerDomain()
