"""The SPJ expression language and its paper normal form.

Views in the paper are defined by *SPJ expressions* — combinations of
selections, projections and joins (Section 3).  This module provides:

* an expression AST (:class:`BaseRef`, :class:`Select`,
  :class:`Project`, :class:`Join`, :class:`Product`) with schema
  resolution and validation against a catalog of base-relation schemas;

* :class:`NormalForm` — the paper's canonical shape
  ``π_X( σ_C(Y)( R₁ × R₂ × … × R_p ) )`` that both the irrelevance
  filter (Section 4) and the differential algorithm (Section 5) are
  stated over, together with :func:`to_normal_form`, which flattens any
  SPJ tree into it.

Flattening notes
----------------
The paper assumes the relation schemes in a view are pairwise disjoint
(natural joins are written over shared attribute names, but the §4
formalism uses a cross product with explicit equality conditions).  We
bridge the two by *qualifying* attribute occurrences: each base-relation
occurrence in the flattened product renames any attribute whose name
has already been used, and natural joins contribute explicit equality
atoms between the two qualified copies.  Self-joins therefore work: the
two occurrences of the relation simply carry different qualified names.

Counted semantics is preserved by flattening: selections commute with
each other and with the product, and collapsing a tower of projections
into the outermost one leaves the final counts unchanged (summing
counts in one step equals summing them in stages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.algebra.conditions import Atom, Condition
from repro.algebra.schema import RelationSchema
from repro.errors import ExpressionError, SchemaError

if TYPE_CHECKING:  # runtime import would cycle: aggregates imports us
    from repro.algebra.aggregates import Aggregate, AggregateColumn

SchemaCatalog = Mapping[str, RelationSchema]


class Expression:
    """Base class of SPJ expression nodes."""

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        """The output schema of this expression under ``catalog``."""
        raise NotImplementedError

    def base_names(self) -> tuple[str, ...]:
        """Names of base relations mentioned, in left-to-right order
        (with repetition for self-joins)."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Fluent construction sugar -----------------------------------------
    def select(self, condition: object) -> "Select":
        """``σ_condition(self)`` — accepts a Condition or a string."""
        return Select(self, Condition.coerce(condition))

    def project(self, attributes: Sequence[str]) -> "Project":
        """``π_attributes(self)``."""
        return Project(self, attributes)

    def join(self, other: "Expression") -> "Join":
        """Natural join ``self ⋈ other``."""
        return Join(self, other)

    def product(self, other: "Expression") -> "Product":
        """Cross product ``self × other`` (disjoint schemas required)."""
        return Product(self, other)

    def rename(self, mapping: Mapping[str, str]) -> "Rename":
        """``ρ_mapping(self)`` — rename output attributes."""
        return Rename(self, mapping)

    def union(self, other: "Expression") -> "Union":
        """Counted union ``self ∪ other`` (evaluate-only)."""
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        """Counted difference ``self − other`` (evaluate-only)."""
        return Difference(self, other)

    def aggregate(
        self,
        keys: Sequence[str],
        columns: Sequence["AggregateColumn | tuple[str, str | None, str]"],
    ) -> "Aggregate":
        """``γ_{keys; columns}(self)`` — aggregate view sugar.

        ``columns`` entries are :class:`~repro.algebra.aggregates.
        AggregateColumn` instances or ``(func, attribute, alias)``
        triples (attribute ``None`` for ``count``).
        """
        from repro.algebra.aggregates import (
            Aggregate,
            AggregateColumn,
            AggregateSpec,
        )

        cols = [
            column
            if isinstance(column, AggregateColumn)
            else AggregateColumn(column[0], column[1], column[2])
            for column in columns
        ]
        return Aggregate(self, AggregateSpec(keys, cols))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class BaseRef(Expression):
    """A reference to a named base relation."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ExpressionError(f"base relation name must be a string: {name!r}")
        self.name = name

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        try:
            return catalog[self.name]
        except KeyError:
            raise ExpressionError(f"unknown base relation {self.name!r}") from None

    def base_names(self) -> tuple[str, ...]:
        return (self.name,)

    def children(self) -> tuple[Expression, ...]:
        return ()

    def __str__(self) -> str:
        return self.name


class Select(Expression):
    """``σ_C(child)``."""

    __slots__ = ("child", "condition")

    def __init__(self, child: Expression, condition: object) -> None:
        if not isinstance(child, Expression):
            raise ExpressionError(f"Select operand must be an Expression: {child!r}")
        self.child = child
        self.condition = Condition.coerce(condition)

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        child_schema = self.child.schema(catalog)
        unknown = self.condition.variables() - child_schema.nameset
        if unknown:
            raise ExpressionError(
                f"selection references attributes {sorted(unknown)} not produced "
                f"by its operand (schema {child_schema.names})"
            )
        return child_schema

    def base_names(self) -> tuple[str, ...]:
        return self.child.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"select[{self.condition}]({self.child})"


class Project(Expression):
    """``π_X(child)`` with the paper's counted semantics."""

    __slots__ = ("child", "attributes")

    def __init__(self, child: Expression, attributes: Sequence[str]) -> None:
        if not isinstance(child, Expression):
            raise ExpressionError(f"Project operand must be an Expression: {child!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise ExpressionError("projection needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise ExpressionError(f"duplicate attributes in projection {attrs}")
        self.child = child
        self.attributes = attrs

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        child_schema = self.child.schema(catalog)
        missing = [a for a in self.attributes if a not in child_schema]
        if missing:
            raise ExpressionError(
                f"projection references attributes {missing} not produced "
                f"by its operand (schema {child_schema.names})"
            )
        return child_schema.project_schema(self.attributes)

    def base_names(self) -> tuple[str, ...]:
        return self.child.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        return f"project[{', '.join(self.attributes)}]({self.child})"


class Join(Expression):
    """Natural join ``left ⋈ right`` on all shared attribute names."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        for side in (left, right):
            if not isinstance(side, Expression):
                raise ExpressionError(f"Join operand must be an Expression: {side!r}")
        self.left = left
        self.right = right

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        return self.left.schema(catalog).join_schema(self.right.schema(catalog))

    def base_names(self) -> tuple[str, ...]:
        return self.left.base_names() + self.right.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} join {self.right})"


class Rename(Expression):
    """``ρ_mapping(child)`` — rename output attributes.

    Not part of the paper's SPJ vocabulary, but the standard companion
    operator that makes *self-joins* expressible: without renaming, a
    natural join of a relation with itself is the identity.  Renaming
    is transparent to maintenance — the normal form already tracks
    attribute provenance through qualified names.
    """

    __slots__ = ("child", "mapping")

    def __init__(self, child: Expression, mapping: Mapping[str, str]) -> None:
        if not isinstance(child, Expression):
            raise ExpressionError(f"Rename operand must be an Expression: {child!r}")
        if not mapping:
            raise ExpressionError("Rename needs a non-empty attribute mapping")
        self.child = child
        self.mapping = dict(mapping)

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        child_schema = self.child.schema(catalog)
        missing = [a for a in self.mapping if a not in child_schema]
        if missing:
            raise ExpressionError(
                f"rename references attributes {missing} not produced "
                f"by its operand (schema {child_schema.names})"
            )
        try:
            return child_schema.renamed(self.mapping)
        except SchemaError as exc:
            raise ExpressionError(str(exc)) from exc

    def base_names(self) -> tuple[str, ...]:
        return self.child.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __str__(self) -> str:
        inner = ", ".join(f"{old}->{new}" for old, new in self.mapping.items())
        return f"rename[{inner}]({self.child})"


class Product(Expression):
    """Cross product ``left × right``; schemas must be disjoint."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        for side in (left, right):
            if not isinstance(side, Expression):
                raise ExpressionError(f"Product operand must be an Expression: {side!r}")
        self.left = left
        self.right = right

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        left_schema = self.left.schema(catalog)
        right_schema = self.right.schema(catalog)
        try:
            return left_schema.concat(right_schema)
        except SchemaError as exc:
            raise ExpressionError(str(exc)) from exc

    def base_names(self) -> tuple[str, ...]:
        return self.left.base_names() + self.right.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


class Union(Expression):
    """Counted union ``left ∪ right`` (counts add).

    Evaluate-only: union views are maintained through
    :class:`repro.extensions.union_views.UnionView` (one normal form
    per branch), not through :func:`to_normal_form`, which rejects
    this operator with a pointer there.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        for side in (left, right):
            if not isinstance(side, Expression):
                raise ExpressionError(f"Union operand must be an Expression: {side!r}")
        self.left = left
        self.right = right

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        left_schema = self.left.schema(catalog)
        right_schema = self.right.schema(catalog)
        if left_schema.names != right_schema.names:
            raise ExpressionError(
                f"union operands disagree on schema: {left_schema.names} "
                f"vs {right_schema.names}"
            )
        return left_schema

    def base_names(self) -> tuple[str, ...]:
        return self.left.base_names() + self.right.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} union {self.right})"


class Difference(Expression):
    """Counted difference ``left − right`` (counts subtract).

    Evaluate-only, like :class:`Union`; additionally, the left side
    must dominate the right count-wise at evaluation time or the
    counted difference is undefined (see
    :meth:`repro.algebra.relation.Relation.difference`).  Difference is
    not monotone, so it falls outside anything Section 5 can maintain.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: Expression, right: Expression) -> None:
        for side in (left, right):
            if not isinstance(side, Expression):
                raise ExpressionError(
                    f"Difference operand must be an Expression: {side!r}"
                )
        self.left = left
        self.right = right

    def schema(self, catalog: SchemaCatalog) -> RelationSchema:
        left_schema = self.left.schema(catalog)
        right_schema = self.right.schema(catalog)
        if left_schema.names != right_schema.names:
            raise ExpressionError(
                f"difference operands disagree on schema: {left_schema.names} "
                f"vs {right_schema.names}"
            )
        return left_schema

    def base_names(self) -> tuple[str, ...]:
        return self.left.base_names() + self.right.base_names()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


# ----------------------------------------------------------------------
# Normal form
# ----------------------------------------------------------------------


class Occurrence:
    """One base-relation occurrence in a flattened product.

    ``rename`` maps each original attribute name to its *qualified* name
    in the flattened product's namespace; ``inverse`` goes back.
    """

    __slots__ = ("name", "position", "rename", "inverse")

    def __init__(self, name: str, position: int, rename: Mapping[str, str]) -> None:
        self.name = name
        self.position = position
        self.rename = dict(rename)
        self.inverse = {q: o for o, q in self.rename.items()}

    def qualified_names(self) -> tuple[str, ...]:
        """Qualified names of this occurrence's attributes."""
        return tuple(self.rename.values())

    def fingerprint(self) -> tuple:
        """A hashable identity for plan caching (name + renaming)."""
        return (self.name, self.position, tuple(sorted(self.rename.items())))

    def __repr__(self) -> str:
        return f"<Occurrence {self.name}#{self.position}>"


class NormalForm:
    """The paper's canonical view shape ``π_X σ_C (R₁ × … × R_p)``.

    Attributes
    ----------
    occurrences:
        The base-relation occurrences, left to right.
    condition:
        The collected selection condition in DNF, over qualified names.
    projection:
        ``(output_name, qualified_name)`` pairs defining π_X.
    qualified_schema:
        The schema of the flattened product (all qualified attributes).
    """

    __slots__ = ("occurrences", "condition", "projection", "qualified_schema")

    def __init__(
        self,
        occurrences: Sequence[Occurrence],
        condition: Condition,
        projection: Sequence[tuple[str, str]],
        qualified_schema: RelationSchema,
    ) -> None:
        self.occurrences = tuple(occurrences)
        self.condition = condition
        self.projection = tuple(projection)
        self.qualified_schema = qualified_schema

        known = qualified_schema.nameset
        stray = self.condition.variables() - known
        if stray:
            raise ExpressionError(
                f"normal-form condition mentions unknown attributes {sorted(stray)}"
            )
        for _, qualified in self.projection:
            if qualified not in known:
                raise ExpressionError(
                    f"normal-form projection mentions unknown attribute {qualified!r}"
                )

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Base-relation names, one per occurrence (repeats on self-join)."""
        return tuple(o.name for o in self.occurrences)

    def output_schema(self) -> RelationSchema:
        """Schema of the view, using output (user-visible) names."""
        attrs = []
        for output_name, qualified in self.projection:
            attr = self.qualified_schema.attributes[
                self.qualified_schema.index(qualified)
            ]
            attrs.append(attr.renamed(output_name))
        return RelationSchema(attrs)

    def occurrences_of(self, relation_name: str) -> tuple[Occurrence, ...]:
        """All occurrences of ``relation_name`` (≥ 2 for a self-join)."""
        return tuple(o for o in self.occurrences if o.name == relation_name)

    def condition_variables(self) -> frozenset[str]:
        """The set Y of Section 4 (qualified)."""
        return self.condition.variables()

    def fingerprint(self) -> tuple:
        """A hashable, structural identity of this normal form.

        Two normal forms with equal fingerprints denote the same
        maintenance problem: same occurrences (names and renamings),
        same DNF condition (atoms are canonicalized and hashable —
        see :mod:`repro.algebra.conditions`), same projection and same
        flattened schema.  The compiled-plan cache
        (:mod:`repro.core.plancache`) uses this as the identity a
        cached plan was built for, so a view re-registered under the
        same name with a *different* definition can never be served a
        stale plan.
        """
        return (
            tuple(o.fingerprint() for o in self.occurrences),
            self.condition,
            self.projection,
            tuple(self.qualified_schema.names),
        )

    def __repr__(self) -> str:
        proj = ", ".join(out for out, _ in self.projection)
        rels = " x ".join(o.name for o in self.occurrences)
        return f"<NormalForm project[{proj}] select[{self.condition}] ({rels})>"


def to_normal_form(expression: Expression, catalog: SchemaCatalog) -> NormalForm:
    """Flatten an SPJ expression into the paper's normal form.

    Raises :class:`ExpressionError` when the expression is outside the
    SPJ class or ill-formed with respect to ``catalog``.
    """
    # Validate eagerly so error messages reference the original tree.
    expression.schema(catalog)

    used_names: set[str] = set()
    occurrences: list[Occurrence] = []
    counter = [0]

    def fresh_name(base: str) -> str:
        if base not in used_names:
            used_names.add(base)
            return base
        n = 2
        while f"{base}_{n}" in used_names:
            n += 1
        name = f"{base}_{n}"
        used_names.add(name)
        return name

    def flatten(
        node: Expression,
    ) -> tuple[Condition, dict[str, str]]:
        """Return (condition, visible) for ``node``.

        ``visible`` maps the node's output attribute names to qualified
        names in the flattened product.
        """
        if isinstance(node, BaseRef):
            schema = catalog[node.name]
            rename = {attr: fresh_name(attr) for attr in schema.names}
            occurrences.append(Occurrence(node.name, counter[0], rename))
            counter[0] += 1
            return Condition.true(), dict(rename)

        if isinstance(node, Select):
            condition, visible = flatten(node.child)
            binding_free = node.condition
            # Requalify the selection's variables.
            requalified = _requalify(binding_free, visible)
            return condition.conjoin(requalified), visible

        if isinstance(node, Project):
            condition, visible = flatten(node.child)
            return condition, {a: visible[a] for a in node.attributes}

        if isinstance(node, Rename):
            condition, visible = flatten(node.child)
            return condition, {
                node.mapping.get(name, name): qualified
                for name, qualified in visible.items()
            }

        if isinstance(node, Join):
            left_cond, left_visible = flatten(node.left)
            right_cond, right_visible = flatten(node.right)
            condition = left_cond.conjoin(right_cond)
            shared = set(left_visible) & set(right_visible)
            for name in sorted(shared):
                condition = condition.conjoin(
                    Condition.of_atoms(
                        [Atom(left_visible[name], "=", right_visible[name])]
                    )
                )
            visible = dict(left_visible)
            for name, qualified in right_visible.items():
                if name not in visible:
                    visible[name] = qualified
            return condition, visible

        if isinstance(node, Product):
            left_cond, left_visible = flatten(node.left)
            right_cond, right_visible = flatten(node.right)
            shared = set(left_visible) & set(right_visible)
            if shared:
                raise ExpressionError(
                    f"cross product operands share attributes {sorted(shared)}"
                )
            visible = dict(left_visible)
            visible.update(right_visible)
            return left_cond.conjoin(right_cond), visible

        if isinstance(node, Union):
            raise ExpressionError(
                "Union views are maintained per branch — use "
                "repro.extensions.union_views.UnionView instead of "
                "registering a Union expression directly"
            )
        from repro.algebra.aggregates import Aggregate

        if isinstance(node, Aggregate):
            raise ExpressionError(
                "aggregation must be the outermost operator of a view "
                "definition — the maintainer peels the Aggregate node off "
                "and normalizes only its SPJ core; nested aggregates (or "
                "SPJ operators above an aggregate) are not supported"
            )
        raise ExpressionError(
            f"{type(node).__name__} is outside the SPJ class supported "
            "by the differential algorithm (Section 5)"
        )

    condition, visible = flatten(expression)

    qualified_attrs = []
    for occ in occurrences:
        schema = catalog[occ.name]
        for attr in schema.attributes:
            qualified_attrs.append(attr.renamed(occ.rename[attr.name]))
    qualified_schema = RelationSchema(qualified_attrs)

    output_names = expression.schema(catalog).names
    projection = [(name, visible[name]) for name in output_names]
    return NormalForm(occurrences, condition, projection, qualified_schema)


def requalify_condition(
    condition: Condition, mapping: Mapping[str, str]
) -> Condition:
    """Rewrite a condition's variables through a rename ``mapping``.

    Used during flattening (selection conditions move into the flat
    product's qualified namespace) and by the static analyzer, which
    pushes a relation constraint ``K_R`` — written over R's own
    attribute names — through an :class:`Occurrence`'s rename so it can
    be conjoined with the view condition.  Raises
    :class:`ExpressionError` when the condition mentions a variable the
    mapping does not cover.
    """
    from repro.algebra.conditions import Conjunction, Var

    def map_atom(atom: Atom) -> Atom:
        left: object = atom.left
        right: object = atom.right
        if isinstance(left, Var):
            left = Var(mapping[left.name])
        if isinstance(right, Var):
            right = Var(mapping[right.name])
        return Atom(left, atom.op, right, atom.offset)

    missing = condition.variables() - set(mapping)
    if missing:
        raise ExpressionError(
            f"condition references attributes {sorted(missing)} not visible "
            "under the rename mapping"
        )
    return Condition(
        Conjunction(map_atom(a) for a in disjunct) for disjunct in condition.disjuncts
    )


# Backwards-compatible internal alias (flattening's original name).
_requalify = requalify_condition
