"""A tiny interactive shell over the public API.

Intended for exploration and demos, not as a query language: the
commands map one-to-one onto library calls, and the view syntax covers
exactly the paper's SPJ class.

Commands::

    create table <name> (<attr>, <attr>, ...)
    insert into <name> values (v, ...) [, (v, ...)]*
    delete from <name> values (v, ...) [, (v, ...)]*
    create view <name> as <rel> [join <rel>]* [where <condition>]
                               [select <attr>, <attr>, ...]
    create view <name> deferred as ...
    refresh <view>
    show <name>                 -- relation or view contents
    stats <view>                -- maintenance counters
    explain <view> changing <rel>[, <rel>]*
                                -- the maintenance plan for an update
    recommend indexes <view>    -- indexes the planner would probe
    create index on <rel> (<attr>, ...)
    tables / views              -- list catalog entries
    drop view <name>
    help
    exit | quit

Views may reference previously created views by name (stacked views).

Run interactively with ``python -m repro.cli``.
"""

from __future__ import annotations

import re
import sys

from repro.algebra.expressions import BaseRef, Expression
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import ReproError


class ShellError(ReproError):
    """A command could not be parsed or executed."""


_CREATE_TABLE = re.compile(
    r"create\s+table\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE
)
_INSERT = re.compile(r"insert\s+into\s+(\w+)\s+values\s+(.*)$", re.IGNORECASE)
_DELETE = re.compile(r"delete\s+from\s+(\w+)\s+values\s+(.*)$", re.IGNORECASE)
_CREATE_VIEW = re.compile(
    r"create\s+view\s+(\w+)\s+(deferred\s+)?as\s+(.*)$", re.IGNORECASE
)
_ROW = re.compile(r"\(([^)]*)\)")


class Shell:
    """State and command dispatch for one interactive session."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database if database is not None else Database()
        self.maintainer = ViewMaintainer(self.database)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the text to display."""
        line = line.strip().rstrip(";")
        if not line:
            return ""
        lowered = line.lower()
        if lowered in ("help", "?"):
            return __doc__.split("Commands::", 1)[1].split("Run interactively", 1)[0]
        if lowered in ("exit", "quit"):
            raise EOFError
        if lowered == "tables":
            return ", ".join(self.database.relation_names()) or "(no tables)"
        if lowered == "views":
            return ", ".join(self.maintainer.view_names()) or "(no views)"

        match = _CREATE_TABLE.match(line)
        if match:
            return self._create_table(match.group(1), match.group(2))
        match = _INSERT.match(line)
        if match:
            return self._modify(match.group(1), match.group(2), insert=True)
        match = _DELETE.match(line)
        if match:
            return self._modify(match.group(1), match.group(2), insert=False)
        match = _CREATE_VIEW.match(line)
        if match:
            return self._create_view(
                match.group(1), bool(match.group(2)), match.group(3)
            )
        if lowered.startswith("refresh "):
            name = line.split(None, 1)[1].strip()
            did = self.maintainer.refresh(name)
            return f"refreshed {name}" if did else f"{name} was already current"
        if lowered.startswith("show "):
            return self._show(line.split(None, 1)[1].strip())
        if lowered.startswith("stats "):
            name = line.split(None, 1)[1].strip()
            stats = self.maintainer.stats(name)
            return "\n".join(f"{k}: {v}" for k, v in stats.as_dict().items())
        if lowered.startswith("recommend indexes "):
            name = line.split(None, 2)[2].strip()
            recommendations = self.maintainer.recommended_indexes(name)
            if not recommendations:
                return f"view {name} needs no indexes"
            return "\n".join(
                f"create index on {rel} ({', '.join(attrs)})"
                for rel, attrs in recommendations
            )
        match = re.match(
            r"create\s+index\s+on\s+(\w+)\s*\(([^)]*)\)\s*$", line, re.IGNORECASE
        )
        if match:
            attrs = [a.strip() for a in match.group(2).split(",") if a.strip()]
            if not attrs:
                raise ShellError("an index needs at least one attribute")
            self.database.create_index(match.group(1), attrs)
            return f"created index on {match.group(1)}({', '.join(attrs)})"
        if lowered.startswith("explain "):
            match = re.match(
                r"explain\s+(\w+)\s+changing\s+(.*)$", line, re.IGNORECASE
            )
            if not match:
                raise ShellError("usage: explain <view> changing <rel>[, <rel>]*")
            relations = [
                r.strip() for r in match.group(2).split(",") if r.strip()
            ]
            return self.maintainer.explain(match.group(1), relations)
        if lowered.startswith("drop view "):
            name = line.split(None, 2)[2].strip()
            self.maintainer.drop_view(name)
            return f"dropped view {name}"
        raise ShellError(f"cannot parse: {line!r} (try 'help')")

    # ------------------------------------------------------------------
    # Command implementations
    # ------------------------------------------------------------------
    def _create_table(self, name: str, attr_text: str) -> str:
        attrs = [a.strip() for a in attr_text.split(",") if a.strip()]
        if not attrs:
            raise ShellError("a table needs at least one attribute")
        self.database.create_relation(name, attrs)
        return f"created table {name}({', '.join(attrs)})"

    def _parse_rows(self, text: str) -> list[tuple[int, ...]]:
        rows = []
        for match in _ROW.finditer(text):
            cells = [c.strip() for c in match.group(1).split(",") if c.strip()]
            try:
                rows.append(tuple(int(c) for c in cells))
            except ValueError:
                raise ShellError(f"values must be integers: ({match.group(1)})")
        if not rows:
            raise ShellError("expected at least one (v, ...) row")
        return rows

    def _modify(self, name: str, rows_text: str, insert: bool) -> str:
        rows = self._parse_rows(rows_text)
        with self.database.transact() as txn:
            for row in rows:
                if insert:
                    txn.insert(name, row)
                else:
                    txn.delete(name, row)
        verb = "inserted into" if insert else "deleted from"
        return f"{len(rows)} row(s) {verb} {name}"

    def _create_view(self, name: str, deferred: bool, body: str) -> str:
        expression = self._parse_view_body(body)
        policy = (
            MaintenancePolicy.DEFERRED if deferred else MaintenancePolicy.IMMEDIATE
        )
        view = self.maintainer.define_view(name, expression, policy=policy)
        kind = "deferred" if deferred else "immediate"
        return f"created {kind} view {name} ({len(view.contents)} tuples)"

    def _parse_view_body(self, body: str) -> Expression:
        """``<rel> [join <rel>]* [where <cond>] [select <attrs>]``."""
        select_attrs: list[str] | None = None
        lowered = body.lower()
        select_index = lowered.rfind(" select ")
        if select_index >= 0:
            select_attrs = [
                a.strip()
                for a in body[select_index + len(" select "):].split(",")
                if a.strip()
            ]
            body = body[:select_index]
            lowered = body.lower()
        condition: str | None = None
        where_index = lowered.find(" where ")
        if where_index >= 0:
            condition = body[where_index + len(" where "):].strip()
            body = body[:where_index]
        relation_names = [
            token.strip()
            for token in re.split(r"\s+join\s+", body.strip(), flags=re.IGNORECASE)
            if token.strip()
        ]
        if not relation_names:
            raise ShellError("a view needs at least one relation")
        expression: Expression = BaseRef(relation_names[0])
        for relation_name in relation_names[1:]:
            expression = expression.join(BaseRef(relation_name))
        if condition:
            expression = expression.select(condition)
        if select_attrs:
            expression = expression.project(select_attrs)
        return expression

    def _show(self, name: str) -> str:
        if name in self.maintainer.view_names():
            return self.maintainer.view(name).contents.pretty()
        return self.database.relation(name).pretty()


def main() -> int:  # pragma: no cover - interactive loop
    """REPL entry point: ``python -m repro.cli``."""
    shell = Shell()
    print("repro shell — materialized views per Blakeley/Larson/Tompa 1986.")
    print("Type 'help' for commands, 'quit' to leave.")
    while True:
        try:
            line = input("repro> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.execute(line)
        except EOFError:
            return 0
        except ReproError as exc:
            output = f"error: {exc}"
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
