"""A tiny interactive shell over the public API, plus durability verbs.

Intended for exploration and demos, not as a query language: the
commands map one-to-one onto library calls, and the view syntax covers
exactly the paper's SPJ class.

Invocations::

    python -m repro.cli                      -- interactive shell
    python -m repro.cli recover DIR [--shell]
        Rebuild a database from the newest checkpoint plus the WAL tail
        in DIR (see docs/durability.md) and print a recovery summary;
        --shell then opens the interactive shell on the recovered
        database.
    python -m repro.cli follow DIR [--from N] [--once] [--interval S]
        Tail the WAL in DIR, printing one line per committed
        transaction.  --once drains the log and exits; the default
        polls every S seconds (0.5) until interrupted.
    python -m repro.cli serve DIR [--host H] [--port P] [--view NAME=SPEC]*
        Recover the database in DIR (checkpoint + WAL tail) and serve
        it over the network protocol of docs/server.md.  Each --view
        re-registers one view using the shell's view grammar, e.g.
        --view "hot=r join s where C > 5 select A, C"; views named in
        the checkpoint adopt their stored contents and catch up
        differentially.  Commits from clients are appended to DIR's
        WAL.  Ctrl-C shuts down gracefully.
    python -m repro.cli serve-cluster DIR --shards N
                                 --partition "rel:key:b1,b2,..."
                                 [--view NAME=SPEC]* [--host H] [--port P]
        Recover the database in DIR, split it across N in-process
        shards (each --partition names one relation's integer key and
        its N-1 strictly increasing range boundaries; unlisted
        relations replicate), and serve the cluster over the same wire
        protocol as ``serve`` (docs/cluster.md).  Every --view must
        reference exactly one partitioned relation.  The cluster serves
        from memory: commits are NOT appended back to DIR's WAL.
    python -m repro.cli simulate [--seed N] [--episodes N] [--events N]
                                 [--followers N] [--clients N]
                                 [--no-crashes] [--no-partitions]
                                 [--no-ddl] [--corruption] [--trace]
                                 [--sharded [--shards N] [--broadcast]]
        Run the deterministic simulation harness (docs/testing.md):
        seeded random workloads under injected crashes, torn writes,
        lost fsyncs and network faults, checked after every quiescent
        point by a full-recompute oracle across the leader, recovered
        state, followers and client changefeed mirrors.  The same seed
        always replays the identical run; a divergence prints the
        failing episode's seed and a minimized event trace, and exits 1.
        --base-free-followers adds replicas that shed their base
        copies (self-maintainable views only); --sharded --base-free
        runs every non-home shard base-free (docs/scheduler.md);
        adding --keyed declares a key on the partitioned relation and
        drives it with unrestricted inserts and deletes, exercising
        key-occupancy presence tracking (docs/cluster.md).
    python -m repro.cli monitor [--seed N] [--commits N]
                                [--json PATH] [--html PATH]
        Drive a seeded synthetic workload under staleness SLAs and
        render the windowed staleness report (docs/scheduler.md):
        deterministic JSON to stdout or --json PATH, and optionally a
        standalone HTML page to --html PATH.  The same seed produces
        byte-identical reports.
    python -m repro.cli analyze FILE [FILE ...] [--json]
        Run the static view analyzer (docs/analysis.md) over spec
        files of shell commands (one command per line; blank lines and
        lines starting with ``#`` or ``--`` are skipped).  All files
        build one catalog, so cross-file view pairs are compared.  The
        report — text by default, ``--json`` for machine consumption —
        is deterministic: the same input produces byte-identical
        output.  Exits 1 when any ERROR-level finding is present
        (CI runs this over ``examples/``).

Shell commands::

    create table <name> (<attr>, <attr>, ...)
    insert into <name> values (v, ...) [, (v, ...)]*
    delete from <name> values (v, ...) [, (v, ...)]*
    create view <name> as <rel> [join <rel>]* [where <condition>]
                               [select <attr>, <attr>, ...]
                               [group by <attr>, ...]
                               [compute <agg> as <alias>, ...]
                               -- <agg> is count(), count(*), or one of
                                  sum/avg/min/max(<attr>); `group by`
                                  requires `compute` (docs/aggregates.md)
    create view <name> deferred as ...
    refresh <view>
    refresh --all | quiesce     -- apply every deferred view's backlog
    show <name>                 -- relation or view contents
    stats <view>                -- maintenance counters, backlog depth,
                                   and the self-maintainability verdict
    explain <view> [changing <rel>[, <rel>]*]
                                -- the compiled maintenance plan: the
                                   invariant/variant screening split,
                                   join order, index bindings, and the
                                   chase proofs (derived view keys, FK
                                   reductions); the bare form assumes
                                   every referenced relation changed
    explain <view> source       -- the generated kernel source the
                                   plan executes (docs/codegen.md)
    recommend indexes <view>    -- indexes the planner would probe
    create index on <rel> (<attr>, ...)
    drop index on <rel> (<attr>, ...)
    constrain <rel> where <condition>
                                -- declare an integrity constraint;
                                   existing rows must satisfy it and
                                   commits enforce it from then on
    drop constraint <rel>       -- remove a relation's constraint
    declare key <rel> (<attr>, ...)
                                -- declare a candidate key; existing
                                   rows must be collision-free and
                                   commits enforce it from then on;
                                   the chase turns it into plan-level
                                   proofs (docs/analysis.md)
    drop key <rel> [(<attr>, ...)]
    declare fk <rel> (<attr>, ...) references <rel> (<attr>, ...)
                                -- declare a foreign key onto a
                                   declared key of the referenced
                                   relation
    drop fk <rel> references <rel>
    keys                        -- list declared keys and foreign keys
    constraints                 -- list declared constraints, keys and
                                   foreign keys
    analyze                     -- run the static analyzer over every
                                   registered view (docs/analysis.md)
    tables / views              -- list catalog entries
    drop view <name>
    help
    exit | quit

Views may reference previously created views by name (stacked views).

Run interactively with ``python -m repro.cli``.
"""

from __future__ import annotations

import contextlib
import re
import sys

from repro.algebra.expressions import BaseRef, Expression
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import ReproError


class ShellError(ReproError):
    """A command could not be parsed or executed."""


_CREATE_TABLE = re.compile(
    r"create\s+table\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE
)
_INSERT = re.compile(r"insert\s+into\s+(\w+)\s+values\s+(.*)$", re.IGNORECASE)
_DELETE = re.compile(r"delete\s+from\s+(\w+)\s+values\s+(.*)$", re.IGNORECASE)
_CREATE_VIEW = re.compile(
    r"create\s+view\s+(\w+)\s+(deferred\s+)?as\s+(.*)$", re.IGNORECASE
)
_ROW = re.compile(r"\(([^)]*)\)")


class Shell:
    """State and command dispatch for one interactive session."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database if database is not None else Database()
        self.maintainer = ViewMaintainer(self.database)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the text to display."""
        line = line.strip().rstrip(";")
        if not line:
            return ""
        lowered = line.lower()
        if lowered in ("help", "?"):
            return __doc__.split("Shell commands::", 1)[1].split(
                "Run interactively", 1
            )[0]
        if lowered in ("exit", "quit"):
            raise EOFError
        if lowered == "tables":
            return ", ".join(self.database.relation_names()) or "(no tables)"
        if lowered == "views":
            return ", ".join(self.maintainer.view_names()) or "(no views)"

        match = _CREATE_TABLE.match(line)
        if match:
            return self._create_table(match.group(1), match.group(2))
        match = _INSERT.match(line)
        if match:
            return self._modify(match.group(1), match.group(2), insert=True)
        match = _DELETE.match(line)
        if match:
            return self._modify(match.group(1), match.group(2), insert=False)
        match = _CREATE_VIEW.match(line)
        if match:
            return self._create_view(
                match.group(1), bool(match.group(2)), match.group(3)
            )
        if lowered == "quiesce" or lowered in ("refresh --all", "refresh -a"):
            return self._quiesce()
        if lowered.startswith("refresh "):
            name = line.split(None, 1)[1].strip()
            did = self.maintainer.refresh(name)
            return f"refreshed {name}" if did else f"{name} was already current"
        if lowered.startswith("show "):
            return self._show(line.split(None, 1)[1].strip())
        if lowered.startswith("stats "):
            name = line.split(None, 1)[1].strip()
            stats = self.maintainer.stats(name)
            lines = [f"{k}: {v}" for k, v in stats.as_dict().items()]
            lines.extend(
                f"backlog_{k}: {v}"
                for k, v in self.maintainer.backlog(name).items()
            )
            lines.extend(
                f"{k}: {v}"
                for k, v in self.maintainer.codegen_stats().as_dict().items()
            )
            verdict = self.maintainer.self_maintainability(name)
            lines.append(
                f"self_maintainable: {str(verdict.self_maintainable).lower()}"
                f" ({verdict.kind})"
            )
            return "\n".join(lines)
        if lowered.startswith("recommend indexes "):
            name = line.split(None, 2)[2].strip()
            recommendations = self.maintainer.recommended_indexes(name)
            if not recommendations:
                return f"view {name} needs no indexes"
            return "\n".join(
                f"create index on {rel} ({', '.join(attrs)})"
                for rel, attrs in recommendations
            )
        match = re.match(
            r"create\s+index\s+on\s+(\w+)\s*\(([^)]*)\)\s*$", line, re.IGNORECASE
        )
        if match:
            attrs = [a.strip() for a in match.group(2).split(",") if a.strip()]
            if not attrs:
                raise ShellError("an index needs at least one attribute")
            self.database.create_index(match.group(1), attrs)
            return f"created index on {match.group(1)}({', '.join(attrs)})"
        match = re.match(
            r"drop\s+index\s+on\s+(\w+)\s*\(([^)]*)\)\s*$", line, re.IGNORECASE
        )
        if match:
            attrs = [a.strip() for a in match.group(2).split(",") if a.strip()]
            if self.database.drop_index(match.group(1), attrs):
                return f"dropped index on {match.group(1)}({', '.join(attrs)})"
            return f"no index on {match.group(1)}({', '.join(attrs)})"
        if lowered.startswith("explain "):
            match = re.match(r"explain\s+(\w+)\s+source\s*$", line, re.IGNORECASE)
            if match:
                return self.maintainer.kernel_source(match.group(1))
            match = re.match(
                r"explain\s+(\w+)\s+changing\s+(.*)$", line, re.IGNORECASE
            )
            if match:
                relations = [
                    r.strip() for r in match.group(2).split(",") if r.strip()
                ]
                return self.maintainer.explain(match.group(1), relations)
            match = re.match(r"explain\s+(\w+)\s*$", line, re.IGNORECASE)
            if not match:
                raise ShellError(
                    "usage: explain <view> [changing <rel>[, <rel>]*] "
                    "| explain <view> source"
                )
            # The bare form: the full plan as if every referenced base
            # relation changed — including the chase proofs (derived
            # view keys, FK reductions) the plan embeds.
            name = match.group(1)
            view = self.maintainer.view(name)
            relations = sorted(set(view.definition.normal_form.relation_names))
            return self.maintainer.explain(name, relations)
        if lowered.startswith("drop view "):
            name = line.split(None, 2)[2].strip()
            self.maintainer.drop_view(name)
            return f"dropped view {name}"
        match = re.match(
            r"constrain\s+(\w+)\s+where\s+(.*)$", line, re.IGNORECASE
        )
        if match:
            condition = self.database.declare_constraint(
                match.group(1), match.group(2).strip()
            )
            return f"constrained {match.group(1)} where {condition}"
        match = re.match(r"drop\s+constraint\s+(\w+)\s*$", line, re.IGNORECASE)
        if match:
            if self.database.drop_constraint(match.group(1)):
                return f"dropped constraint on {match.group(1)}"
            return f"no constraint on {match.group(1)}"
        match = re.match(
            r"declare\s+key\s+(\w+)\s*\(([^)]*)\)\s*$", line, re.IGNORECASE
        )
        if match:
            attrs = [a.strip() for a in match.group(2).split(",") if a.strip()]
            if not attrs:
                raise ShellError("a key needs at least one attribute")
            key = self.database.declare_key(match.group(1), attrs)
            return f"declared key ({', '.join(key)}) on {match.group(1)}"
        match = re.match(
            r"drop\s+key\s+(\w+)\s*(?:\(([^)]*)\))?\s*$", line, re.IGNORECASE
        )
        if match:
            attrs = [
                a.strip()
                for a in (match.group(2) or "").split(",")
                if a.strip()
            ]
            if self.database.drop_key(match.group(1), attrs or None):
                return f"dropped key on {match.group(1)}"
            return f"no such key on {match.group(1)}"
        match = re.match(
            r"declare\s+fk\s+(\w+)\s*\(([^)]*)\)\s+references\s+"
            r"(\w+)\s*\(([^)]*)\)\s*$",
            line,
            re.IGNORECASE,
        )
        if match:
            attrs = [a.strip() for a in match.group(2).split(",") if a.strip()]
            ref_attrs = [
                a.strip() for a in match.group(4).split(",") if a.strip()
            ]
            if not attrs or not ref_attrs:
                raise ShellError(
                    "a foreign key needs attributes on both sides"
                )
            fk = self.database.declare_foreign_key(
                match.group(1), attrs, match.group(3), ref_attrs
            )
            return f"declared foreign key {fk.describe()}"
        match = re.match(
            r"drop\s+fk\s+(\w+)\s+references\s+(\w+)\s*$", line, re.IGNORECASE
        )
        if match:
            if self.database.drop_foreign_key(match.group(1), match.group(2)):
                return (
                    f"dropped foreign key(s) from {match.group(1)} "
                    f"to {match.group(2)}"
                )
            return (
                f"no foreign key from {match.group(1)} to {match.group(2)}"
            )
        if lowered == "keys":
            return self._list_keys() or "(no keys)"
        if lowered == "constraints":
            return self._list_constraints()
        if lowered == "analyze":
            return self.maintainer.analyze().format()
        raise ShellError(f"cannot parse: {line!r} (try 'help')")

    # ------------------------------------------------------------------
    # Command implementations
    # ------------------------------------------------------------------
    def _create_table(self, name: str, attr_text: str) -> str:
        attrs = [a.strip() for a in attr_text.split(",") if a.strip()]
        if not attrs:
            raise ShellError("a table needs at least one attribute")
        self.database.create_relation(name, attrs)
        return f"created table {name}({', '.join(attrs)})"

    def _parse_rows(self, text: str) -> list[tuple[int, ...]]:
        rows = []
        for match in _ROW.finditer(text):
            cells = [c.strip() for c in match.group(1).split(",") if c.strip()]
            try:
                rows.append(tuple(int(c) for c in cells))
            except ValueError:
                raise ShellError(
                    f"values must be integers: ({match.group(1)})"
                ) from None
        if not rows:
            raise ShellError("expected at least one (v, ...) row")
        return rows

    def _modify(self, name: str, rows_text: str, insert: bool) -> str:
        rows = self._parse_rows(rows_text)
        with self.database.transact() as txn:
            for row in rows:
                if insert:
                    txn.insert(name, row)
                else:
                    txn.delete(name, row)
        verb = "inserted into" if insert else "deleted from"
        return f"{len(rows)} row(s) {verb} {name}"

    def _create_view(self, name: str, deferred: bool, body: str) -> str:
        expression = self._parse_view_body(body)
        policy = (
            MaintenancePolicy.DEFERRED if deferred else MaintenancePolicy.IMMEDIATE
        )
        view = self.maintainer.define_view(name, expression, policy=policy)
        kind = "deferred" if deferred else "immediate"
        return f"created {kind} view {name} ({len(view.contents)} tuples)"

    def _parse_view_body(self, body: str) -> Expression:
        return parse_view_expression(body)

    def _quiesce(self) -> str:
        refreshed = self.maintainer.quiesce()
        if not refreshed:
            return "all views current"
        return "refreshed " + ", ".join(refreshed)

    def _show(self, name: str) -> str:
        if name in self.maintainer.view_names():
            return self.maintainer.view(name).contents.pretty()
        return self.database.relation(name).pretty()

    def _list_keys(self) -> str:
        lines = [
            f"key ({', '.join(key)}) on {name}"
            for name, declared in self.database.keys.items()
            for key in declared
        ]
        lines.extend(
            f"foreign key {fk.describe()}"
            for fk in self.database.keys.foreign_key_items()
        )
        return "\n".join(lines)

    def _list_constraints(self) -> str:
        lines = [
            f"constrain {name} where {condition}"
            for name, condition in self.database.constraints.items()
        ]
        keys = self._list_keys()
        if keys:
            lines.extend(keys.splitlines())
        return "\n".join(lines) or "(no constraints)"


_AGG_COLUMN = re.compile(
    r"(count|sum|avg|min|max)\s*\(\s*(\*|\w*)\s*\)\s+as\s+(\w+)\s*$",
    re.IGNORECASE,
)


def _parse_aggregate_columns(text: str) -> list[tuple[str, str | None, str]]:
    """``f(attr) as alias, ...`` → ``(func, attribute, alias)`` triples."""
    columns: list[tuple[str, str | None, str]] = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        match = _AGG_COLUMN.match(piece)
        if not match:
            raise ShellError(
                f"cannot parse aggregate column {piece!r} "
                "(expected 'count() as alias' or 'sum(attr) as alias')"
            )
        func = match.group(1).lower()
        attribute: str | None = match.group(2) or None
        if attribute == "*":
            attribute = None
        if func == "count":
            if attribute is not None:
                raise ShellError(
                    f"count takes no attribute: write 'count() as "
                    f"{match.group(3)}' or 'count(*) as {match.group(3)}'"
                )
        elif attribute is None:
            raise ShellError(f"{func} needs an attribute, e.g. {func}(A)")
        columns.append((func, attribute, match.group(3)))
    if not columns:
        raise ShellError("compute needs at least one aggregate column")
    return columns


def parse_view_expression(body: str) -> Expression:
    """``<rel> [join <rel>]* [where <cond>] [select <attrs>]
    [group by <keys>] [compute <aggs>]``.

    The shell's view grammar, shared with ``serve --view NAME=SPEC``.
    """
    lowered = body.lower()
    aggregate_columns: list[tuple[str, str | None, str]] | None = None
    group_keys: list[str] = []
    compute_index = lowered.rfind(" compute ")
    if compute_index >= 0:
        aggregate_columns = _parse_aggregate_columns(
            body[compute_index + len(" compute "):]
        )
        body = body[:compute_index]
        lowered = body.lower()
    group_index = lowered.rfind(" group by ")
    if group_index >= 0:
        if aggregate_columns is None:
            raise ShellError(
                "group by requires a compute clause, e.g. "
                "'r group by A compute count() as n'"
            )
        group_keys = [
            k.strip()
            for k in body[group_index + len(" group by "):].split(",")
            if k.strip()
        ]
        if not group_keys:
            raise ShellError("group by needs at least one attribute")
        body = body[:group_index]
        lowered = body.lower()
    select_attrs: list[str] | None = None
    select_index = lowered.rfind(" select ")
    if select_index >= 0:
        select_attrs = [
            a.strip()
            for a in body[select_index + len(" select "):].split(",")
            if a.strip()
        ]
        body = body[:select_index]
        lowered = body.lower()
    condition: str | None = None
    where_index = lowered.find(" where ")
    if where_index >= 0:
        condition = body[where_index + len(" where "):].strip()
        body = body[:where_index]
    relation_names = [
        token.strip()
        for token in re.split(r"\s+join\s+", body.strip(), flags=re.IGNORECASE)
        if token.strip()
    ]
    if not relation_names:
        raise ShellError("a view needs at least one relation")
    expression: Expression = BaseRef(relation_names[0])
    for relation_name in relation_names[1:]:
        expression = expression.join(BaseRef(relation_name))
    if condition:
        expression = expression.select(condition)
    if select_attrs:
        expression = expression.project(select_attrs)
    if aggregate_columns is not None:
        expression = expression.aggregate(group_keys, aggregate_columns)
    return expression


def _format_record(record) -> str:
    """One ``follow`` output line for a WAL record."""
    parts = []
    for name in sorted(record.deltas_doc):
        delta_doc = record.deltas_doc[name]
        parts.append(
            f"{name}:+{len(delta_doc.get('inserted', ()))}"
            f"/-{len(delta_doc.get('deleted', ()))}"
        )
    return f"seq={record.sequence} txn={record.txn_id} " + " ".join(parts)


def run_recover(directory: str) -> tuple[str, Database]:
    """Recover base state from ``directory``; returns (summary, database).

    View definitions are code, not data, so the CLI restores base
    relations only; it lists the views the checkpoint carried so the
    owning application knows what to ``restore_view``.
    """
    from repro.replication.recovery import Recovery

    recovery = Recovery(directory)
    replayed = recovery.replay()
    lines = [
        f"checkpoint at WAL sequence {recovery.checkpoint_sequence}",
        f"replayed {replayed} transaction(s), now at sequence "
        f"{recovery.last_sequence}",
    ]
    if recovery.tail_damage is not None:
        lines.append(
            f"stopped at torn tail (a resuming writer will truncate it): "
            f"{recovery.tail_damage!r}"
        )
    for name in recovery.database.relation_names():
        lines.append(f"  {name}: {len(recovery.database.relation(name))} tuples")
    views = recovery.checkpointed_views()
    if views:
        lines.append(
            "checkpointed views (restore with Recovery.restore_view): "
            + ", ".join(views)
        )
    return "\n".join(lines), recovery.database


def run_follow(
    directory: str,
    after: int = 0,
    once: bool = True,
    interval: float = 0.5,
    emit=print,
) -> int:
    """Tail the WAL, emitting one line per record; returns the last seq."""
    from repro.replication.wal import WalReader

    reader = WalReader(directory)
    position = after
    while True:
        for record in reader.records(after=position):
            emit(_format_record(record))
            position = record.sequence
        if reader.tail_damage is not None:
            emit(f"(waiting at torn tail: {reader.tail_damage!r})")
        if once:
            return position
        import time  # pragma: no cover - interactive loop

        time.sleep(interval)  # pragma: no cover


def parse_view_option(text: str) -> tuple[str, Expression]:
    """One ``NAME=SPEC`` pair from ``serve --view`` into a definition."""
    name, _, spec = text.partition("=")
    name = name.strip()
    if not name or not spec.strip():
        raise ShellError(
            f"--view expects NAME=SPEC, e.g. 'hot=r join s where C > 5'; got {text!r}"
        )
    return name, parse_view_expression(spec.strip())


def build_served_state(directory: str, view_options: list[str]):
    """Recover DIR and register the requested views; ready to serve.

    Returns ``(recovery, maintainer, replayed)`` — base relations from
    the newest checkpoint, each ``--view`` restored (adopting
    checkpointed contents when present, so catch-up is differential),
    and the WAL tail replayed through the normal commit pipeline.
    """
    from repro.core.maintainer import ViewMaintainer
    from repro.replication.recovery import Recovery

    recovery = Recovery(directory)
    maintainer = ViewMaintainer(recovery.database)
    for option in view_options:
        name, expression = parse_view_option(option)
        recovery.restore_view(maintainer, name, expression)
    replayed = recovery.replay()
    return recovery, maintainer, replayed


def run_serve(
    directory: str,
    host: str = "127.0.0.1",
    port: int = 7707,
    view_options: list[str] | None = None,
    emit=print,
    on_start=None,
) -> int:
    """The ``serve`` verb: recover DIR, then serve it until interrupted.

    A :class:`~repro.replication.durability.DurabilityManager` is
    re-attached to the recovered database, so client transactions resume
    appending to DIR's WAL — a served database stays durable.
    """
    import asyncio

    from repro.replication.durability import DurabilityManager
    from repro.server.server import ServerConfig, ViewServer

    recovery, maintainer, replayed = build_served_state(
        directory, view_options or []
    )
    database = recovery.database
    durability = DurabilityManager(database, directory)
    server = ViewServer(
        database,
        maintainer,
        ServerConfig(host=host, port=port),
        durability=durability,
    )

    async def _serve() -> None:
        try:
            await server.start()
        except OSError as exc:
            raise ReproError(f"cannot bind {host}:{port}: {exc}") from exc
        # Ctrl-C → graceful drain instead of a mid-commit teardown;
        # suppressed errors mean no signal support here (non-main
        # thread, Windows).
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            import signal

            asyncio.get_running_loop().add_signal_handler(
                signal.SIGINT, lambda: asyncio.ensure_future(server.shutdown())
            )
        emit(
            f"serving {directory} on {host}:{server.port} "
            f"(replayed {replayed} WAL transaction(s), "
            f"views: {', '.join(maintainer.view_names()) or 'none'})"
        )
        if on_start is not None:  # embedding/test hook, called in-loop
            on_start(server)
        try:
            await server.wait_closed()
        finally:
            durability.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        emit("shutting down")
    return 0


def parse_partition_option(text: str):
    """``rel:key:b1,b2,...`` → a :class:`~repro.cluster.topology.
    PartitionSpec` (boundaries may be empty for a 1-shard cluster)."""
    from repro.cluster.topology import PartitionSpec

    parts = text.split(":")
    if len(parts) not in (2, 3) or not parts[0].strip() or not parts[1].strip():
        raise ShellError(
            "--partition expects 'rel:key:b1,b2,...', e.g. 'r:A:10,20'; "
            f"got {text!r}"
        )
    relation, key = parts[0].strip(), parts[1].strip()
    boundary_text = parts[2].strip() if len(parts) == 3 else ""
    try:
        boundaries = [
            int(piece) for piece in boundary_text.split(",") if piece.strip()
        ]
    except ValueError:
        raise ShellError(
            f"--partition boundaries must be integers; got {text!r}"
        ) from None
    return PartitionSpec(relation, key, boundaries)


def run_serve_cluster(
    directory: str,
    shards: int,
    partition_options: list[str],
    view_options: list[str] | None = None,
    host: str = "127.0.0.1",
    port: int = 7707,
    emit=print,
    on_start=None,
) -> int:
    """The ``serve-cluster`` verb: recover DIR, shard it, serve it.

    The recovered base relations, constraints and requested views are
    re-homed onto an in-process cluster (docs/cluster.md): shard 0 is
    the home shard, DirectLink transports keep client transactions
    synchronous, and the analyzer-derived routing table is printed at
    startup.  Unlike ``serve``, the cluster holds everything in memory
    and does not append commits back to DIR's WAL.
    """
    import asyncio

    from repro.cluster.coordinator import build_cluster
    from repro.cluster.frontend import ClusterServer
    from repro.cluster.topology import ClusterTopology
    from repro.replication.recovery import Recovery
    from repro.server.server import ServerConfig

    recovery = Recovery(directory)
    replayed = recovery.replay()
    database = recovery.database
    topology = ClusterTopology(
        shards, [parse_partition_option(option) for option in partition_options]
    )
    tables = {
        name: list(database.relation(name).schema.names)
        for name in database.relation_names()
    }
    rows = {
        name: [
            database.relation(name).schema.decode_values(values)
            for values in sorted(database.relation(name).value_tuples())
        ]
        for name in database.relation_names()
    }
    constraints = dict(database.constraints.items())
    views = [parse_view_option(option) for option in (view_options or [])]
    coordinator = build_cluster(
        topology, tables, rows, constraints, views
    )
    server = ClusterServer(coordinator, ServerConfig(host=host, port=port))

    async def _serve() -> None:
        try:
            await server.start()
        except OSError as exc:
            raise ReproError(f"cannot bind {host}:{port}: {exc}") from exc
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            import signal

            asyncio.get_running_loop().add_signal_handler(
                signal.SIGINT, lambda: asyncio.ensure_future(server.shutdown())
            )
        routing = coordinator.routing.describe()
        emit(
            f"serving {directory} as a {shards}-shard cluster on "
            f"{host}:{server.port} (replayed {replayed} WAL "
            f"transaction(s), views: "
            f"{', '.join(name for name, _ in views) or 'none'})"
        )
        for line in routing:
            emit(f"  routing: {line}")
        if not routing:
            emit("  routing: no provably skippable deltas")
        if on_start is not None:  # embedding/test hook, called in-loop
            on_start(server)
        await server.wait_closed()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        emit("shutting down")
    return 0


def run_analyze(
    paths: list[str],
    as_json: bool = False,
    show_source: bool = False,
    emit=print,
) -> int:
    """The ``analyze`` verb; returns the process exit code.

    Every file is a sequence of shell commands (the grammar ``help``
    prints): typically ``create table``, ``constrain`` and
    ``create view`` lines.  One shell executes all files in order, so
    views may reference tables, constraints and views from earlier
    files; the analyzer then runs once over the combined catalog.
    ``show_source`` appends each registered view's generated kernel
    source after the findings (docs/codegen.md).  Exit code 1 means at
    least one ERROR-level finding.
    """
    shell = Shell()
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise ShellError(f"cannot read {path}: {exc}") from exc
        for number, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line or line.startswith("#") or line.startswith("--"):
                continue
            try:
                shell.execute(line)
            except ReproError as exc:
                raise ShellError(f"{path}:{number}: {exc}") from exc
    report = shell.maintainer.analyze()
    emit(report.as_json() if as_json else report.format())
    if show_source:
        for name in sorted(shell.maintainer.view_names()):
            emit(f"-- kernel source for view {name!r} --")
            emit(shell.maintainer.kernel_source(name))
    return 1 if report.has_errors else 0


def run_simulate(
    seed: int = 0,
    episodes: int = 10,
    events: int = 40,
    followers: int = 1,
    base_free_followers: int = 1,
    clients: int = 2,
    crashes: bool = True,
    partitions: bool = True,
    ddl: bool = True,
    corruption: bool = False,
    trace: bool = False,
    use_codegen: bool = True,
    emit=print,
) -> int:
    """The ``simulate`` verb; returns the process exit code.

    Output is a pure function of the arguments (the harness owns all
    randomness and time), so piping two runs with the same seed through
    ``diff`` is itself a determinism test.  ``use_codegen=False``
    (``--interpreter``) pins every copy to the per-tuple interpreter —
    the oracle rounds then certify the ablation baseline the generated
    kernels are checked against.
    """
    from repro.simulation import SimulationConfig, run_simulation

    config = SimulationConfig(
        seed=seed,
        episodes=episodes,
        events=events,
        followers=followers,
        base_free_followers=base_free_followers,
        clients=clients,
        crashes=crashes,
        partitions=partitions,
        ddl=ddl,
        corruption=corruption,
        use_codegen=use_codegen,
    )
    report = run_simulation(config)
    emit(report.format())
    if trace:
        for result in report.episodes:
            emit(f"episode seed={result.seed}")
            for line in result.trace:
                emit(f"  {line}")
    return 0 if report.ok else 1


def run_simulate_cluster(
    seed: int = 0,
    episodes: int = 5,
    events: int = 60,
    shards: int = 3,
    crashes: bool = True,
    partitions: bool = True,
    routed: bool = True,
    base_free: bool = False,
    keyed: bool = False,
    emit=print,
) -> int:
    """The ``simulate --sharded`` verb; returns the process exit code.

    Runs the sharded-cluster harness of docs/cluster.md: seeded client
    transactions against an in-process cluster over lossy simulated
    links, with shard crashes and coordinator-side partitions, checked
    at quiescence against a single-node full recompute.  ``keyed``
    declares a key on the partitioned relation, which with
    ``base_free`` lifts the home-range workload restriction: key
    occupancy lets base-free owners reproduce presence semantics.
    """
    from repro.cluster.sim import ClusterSimConfig, run_cluster_simulation

    config = ClusterSimConfig(
        seed=seed,
        episodes=episodes,
        events=events,
        shards=shards,
        crashes=crashes,
        partitions=partitions,
        routed=routed,
        base_free=base_free,
        keyed=keyed,
    )
    report = run_cluster_simulation(config)
    emit(report.format())
    return 0 if report.ok else 1


def run_monitor(
    seed: int = 0,
    commits: int = 150,
    json_path: str | None = None,
    html_path: str | None = None,
    emit=print,
) -> int:
    """The ``monitor`` verb; returns the process exit code.

    Drives a seeded synthetic workload — one immediate view and two
    deferred views under staleness SLAs, with the refresh scheduler
    ticking every third commit so backlogs genuinely accumulate — then
    renders the windowed staleness report (docs/scheduler.md).  Output
    is a pure function of the arguments: the same seed yields
    byte-identical JSON and HTML, which is what lets CI archive the
    HTML artifact and diff it between runs.
    """
    import random

    from repro.scheduler import (
        Monitor,
        RefreshScheduler,
        StalenessSLA,
        TickClock,
    )

    rng = random.Random(f"monitor:{seed}")
    database = Database()
    database.create_relation(
        "r", ("A", "B"), [(a, (a * 3) % 7) for a in range(7)]
    )
    database.create_relation(
        "s", ("C", "D"), [(c, (c + 2) % 7) for c in range(7)]
    )
    maintainer = ViewMaintainer(database)
    maintainer.define_view("hot", BaseRef("r").select("A <= 3"))
    maintainer.define_view(
        "joined",
        BaseRef("r").join(BaseRef("s")).select("A = C"),
        policy=MaintenancePolicy.DEFERRED,
    )
    maintainer.define_view(
        "digest",
        BaseRef("s").select("D >= 2").project(["C"]),
        policy=MaintenancePolicy.DEFERRED,
    )
    clock = TickClock()
    scheduler = RefreshScheduler(maintainer, clock=clock, batch_limit=1)
    scheduler.declare_sla("joined", StalenessSLA(max_pending_commits=5))
    scheduler.declare_sla(
        "digest", StalenessSLA(max_pending_commits=9, max_lag_ticks=12)
    )
    monitor = Monitor(maintainer, scheduler)
    monitor.begin(clock.now)
    # Rows deleted are always rows previously inserted (tracked in
    # ``live``), so every seeded transaction is legal.
    live: dict[str, list[tuple[int, int]]] = {
        "r": [(a, (a * 3) % 7) for a in range(7)],
        "s": [(c, (c + 2) % 7) for c in range(7)],
    }
    for _ in range(commits):
        name = rng.choice(("r", "r", "s"))
        with database.transact() as txn:
            if live[name] and rng.random() < 0.35:
                victim = live[name].pop(rng.randrange(len(live[name])))
                txn.delete(name, victim)
            row = (rng.randrange(7), rng.randrange(7))
            txn.insert(name, row)
            live[name].append(row)
        clock.advance(1)
        scheduler.note_commit()
        if clock.now % 3 == 0:
            scheduler.tick()
    report = monitor.report(clock.now)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(report.as_json() + "\n")
        emit(f"wrote JSON report to {json_path}")
    if html_path:
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(report.as_html() + "\n")
        emit(f"wrote HTML report to {html_path}")
    if not json_path and not html_path:
        emit(report.as_json())
    return 0


def repl(shell: Shell | None = None) -> int:  # pragma: no cover - interactive
    """The interactive loop behind ``python -m repro.cli``."""
    shell = shell if shell is not None else Shell()
    print("repro shell — materialized views per Blakeley/Larson/Tompa 1986.")
    print("Type 'help' for commands, 'quit' to leave.")
    while True:
        try:
            line = input("repro> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = shell.execute(line)
        except EOFError:
            return 0
        except ReproError as exc:
            output = f"error: {exc}"
        if output:
            print(output)


def main(argv: list[str] | None = None) -> int:
    """Entry point: shell by default, ``recover``/``follow`` verbs."""
    import argparse

    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv:
        return repl()

    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)
    recover_parser = commands.add_parser(
        "recover", help="rebuild a database from checkpoint + WAL tail"
    )
    recover_parser.add_argument("directory")
    recover_parser.add_argument(
        "--shell",
        action="store_true",
        help="open the interactive shell on the recovered database",
    )
    follow_parser = commands.add_parser(
        "follow", help="tail a WAL directory's committed transactions"
    )
    follow_parser.add_argument("directory")
    follow_parser.add_argument(
        "--from",
        dest="after",
        type=int,
        default=0,
        metavar="N",
        help="start after WAL sequence N (default 0: from the beginning)",
    )
    follow_parser.add_argument(
        "--once", action="store_true", help="drain the log and exit"
    )
    follow_parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="S",
        help="poll interval in seconds when not --once",
    )
    serve_parser = commands.add_parser(
        "serve", help="recover a database and serve it over TCP"
    )
    serve_parser.add_argument("directory")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7707)
    serve_parser.add_argument(
        "--view",
        dest="views",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help=(
            "define one served view with the shell grammar, e.g. "
            "'hot=r join s where C > 5 select A, C' (repeatable)"
        ),
    )
    cluster_parser = commands.add_parser(
        "serve-cluster",
        help="recover a database and serve it as a sharded cluster",
    )
    cluster_parser.add_argument("directory")
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=7707)
    cluster_parser.add_argument(
        "--shards", type=int, default=2, help="shard count (default 2)"
    )
    cluster_parser.add_argument(
        "--partition",
        dest="partitions",
        action="append",
        default=[],
        metavar="REL:KEY:B1,B2,...",
        help=(
            "partition one relation by an integer key with N-1 strictly "
            "increasing boundaries, e.g. 'r:A:10,20' (repeatable; "
            "unlisted relations replicate to every shard)"
        ),
    )
    cluster_parser.add_argument(
        "--view",
        dest="views",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help=(
            "define one served view with the shell grammar; it must "
            "reference exactly one partitioned relation (repeatable)"
        ),
    )
    simulate_parser = commands.add_parser(
        "simulate",
        help="run the deterministic fault-injection simulator",
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    simulate_parser.add_argument(
        "--episodes", type=int, default=10, help="episodes to run (default 10)"
    )
    simulate_parser.add_argument(
        "--events", type=int, default=40, help="events per episode (default 40)"
    )
    simulate_parser.add_argument(
        "--followers", type=int, default=1, help="replica count (default 1)"
    )
    simulate_parser.add_argument(
        "--base-free-followers", type=int, default=1,
        help=(
            "extra replicas hosting self-maintainable views without "
            "base-relation copies (default 1; docs/scheduler.md)"
        ),
    )
    simulate_parser.add_argument(
        "--clients", type=int, default=2, help="changefeed clients (default 2)"
    )
    simulate_parser.add_argument(
        "--no-crashes", action="store_true", help="disable crash/recovery events"
    )
    simulate_parser.add_argument(
        "--no-partitions", action="store_true",
        help="disable partitions, stalls and lossy replica channels",
    )
    simulate_parser.add_argument(
        "--no-ddl", action="store_true", help="disable DDL and view churn"
    )
    simulate_parser.add_argument(
        "--corruption", action="store_true",
        help="inject bit-flip corruption (episodes end at the injection)",
    )
    simulate_parser.add_argument(
        "--trace", action="store_true", help="print every episode's full trace"
    )
    simulate_parser.add_argument(
        "--interpreter", action="store_true",
        help=(
            "maintain every copy with the per-tuple interpreter instead "
            "of the generated batch kernels (docs/codegen.md ablation)"
        ),
    )
    simulate_parser.add_argument(
        "--sharded", action="store_true",
        help="run the sharded-cluster harness instead (docs/cluster.md)",
    )
    simulate_parser.add_argument(
        "--shards", type=int, default=3,
        help="shard count for --sharded (default 3)",
    )
    simulate_parser.add_argument(
        "--broadcast", action="store_true",
        help="with --sharded: disable analyzer-driven delta skipping",
    )
    simulate_parser.add_argument(
        "--base-free", action="store_true",
        help=(
            "with --sharded: non-home shards drop their base-relation "
            "copies and maintain views from shipped deltas alone"
        ),
    )
    simulate_parser.add_argument(
        "--keyed", action="store_true",
        help=(
            "with --sharded: declare a key on the partitioned relation; "
            "with --base-free this lifts the home-range workload "
            "restriction via key-occupancy tracking"
        ),
    )
    monitor_parser = commands.add_parser(
        "monitor",
        help="render a staleness report over a seeded synthetic workload",
    )
    monitor_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    monitor_parser.add_argument(
        "--commits", type=int, default=150,
        help="transactions to drive through the window (default 150)",
    )
    monitor_parser.add_argument(
        "--json", dest="json_path", metavar="PATH",
        help="write the JSON report to PATH instead of stdout",
    )
    monitor_parser.add_argument(
        "--html", dest="html_path", metavar="PATH",
        help="also write the standalone HTML report to PATH",
    )
    analyze_parser = commands.add_parser(
        "analyze",
        help="statically analyze view definitions from spec files",
    )
    analyze_parser.add_argument(
        "files", nargs="+", metavar="FILE",
        help="spec file(s) of shell commands building one catalog",
    )
    analyze_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    analyze_parser.add_argument(
        "--source", action="store_true",
        help="also print each view's generated kernel source",
    )
    options = parser.parse_args(argv)

    try:
        if options.command == "recover":
            summary, database = run_recover(options.directory)
            print(summary)
            if options.shell:  # pragma: no cover - interactive
                return repl(Shell(database))
            return 0
        if options.command == "simulate" and options.sharded:
            return run_simulate_cluster(
                seed=options.seed,
                episodes=options.episodes,
                events=options.events,
                shards=options.shards,
                crashes=not options.no_crashes,
                partitions=not options.no_partitions,
                routed=not options.broadcast,
                base_free=options.base_free,
                keyed=options.keyed,
            )
        if options.command == "simulate":
            return run_simulate(
                seed=options.seed,
                episodes=options.episodes,
                events=options.events,
                followers=options.followers,
                base_free_followers=options.base_free_followers,
                clients=options.clients,
                crashes=not options.no_crashes,
                partitions=not options.no_partitions,
                ddl=not options.no_ddl,
                corruption=options.corruption,
                trace=options.trace,
                use_codegen=not options.interpreter,
            )
        if options.command == "monitor":
            return run_monitor(
                seed=options.seed,
                commits=options.commits,
                json_path=options.json_path,
                html_path=options.html_path,
            )
        if options.command == "analyze":
            return run_analyze(
                options.files,
                as_json=options.json,
                show_source=options.source,
            )
        if options.command == "serve":
            return run_serve(
                options.directory,
                host=options.host,
                port=options.port,
                view_options=options.views,
            )
        if options.command == "serve-cluster":
            return run_serve_cluster(
                options.directory,
                shards=options.shards,
                partition_options=options.partitions,
                view_options=options.views,
                host=options.host,
                port=options.port,
            )
        run_follow(
            options.directory,
            after=options.after,
            once=options.once,
            interval=options.interval,
        )
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print()
        return 0
    except ReproError as exc:
        # One line on stderr, exit 1 — never a traceback: a missing or
        # corrupt directory is an operator mistake, not a library bug.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
