"""Checkpoint documents: a base snapshot anchored to a WAL position.

A checkpoint is the recovery starting point: one JSON document holding
every base relation (via :func:`repro.engine.persistence`), the stored
contents of every materialized view (multiplicity counters included),
the transaction-id counter, and the WAL sequence the snapshot is
current as of.  Recovery loads the newest checkpoint and replays only
the WAL records *after* its sequence — views restored from the
checkpoint then catch up differentially, never by recomputation.

View *definitions* are code, not data: the checkpoint persists each
view's contents and policy under its name, and the recovering process
re-supplies the defining expression (exactly as a follower supplies its
own).  A checkpoint written with ``maintainer=None`` simply omits view
contents; recovery then falls back to materializing from the snapshot
state before replay.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any

from repro.algebra.relation import Relation
from repro.engine.database import Database
from repro.engine.persistence import (
    PersistenceError,
    database_from_document,
    database_to_document,
    relation_from_document,
    relation_to_document,
)
from repro.errors import ReplicationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.maintainer import ViewMaintainer

#: Bumped on any incompatible checkpoint-format change.
CHECKPOINT_FORMAT_VERSION = 1

_PREFIX = "checkpoint-"
_SUFFIX = ".json"


def checkpoint_path(directory: str, wal_sequence: int) -> str:
    """The canonical path of a checkpoint at one WAL position."""
    return os.path.join(directory, f"{_PREFIX}{wal_sequence:016d}{_SUFFIX}")


def checkpoint_paths(directory: str) -> list[tuple[int, str]]:
    """Sorted ``(wal_sequence, path)`` pairs of a directory's checkpoints."""
    if not os.path.isdir(directory):
        raise ReplicationError(f"durability directory {directory!r} does not exist")
    found = []
    for entry in os.listdir(directory):
        if not (entry.startswith(_PREFIX) and entry.endswith(_SUFFIX)):
            continue
        stem = entry[len(_PREFIX):-len(_SUFFIX)]
        try:
            sequence = int(stem)
        except ValueError:
            raise ReplicationError(
                f"unrecognized checkpoint name {entry!r}"
            ) from None
        found.append((sequence, os.path.join(directory, entry)))
    found.sort()
    return found


def latest_checkpoint_path(directory: str) -> str | None:
    """Path of the newest checkpoint, or ``None`` when there is none."""
    found = checkpoint_paths(directory)
    return found[-1][1] if found else None


def write_checkpoint(
    directory: str,
    database: Database,
    wal_sequence: int,
    maintainer: "ViewMaintainer | None" = None,
) -> str:
    """Write a checkpoint document; returns its path.

    The document is written to a temporary file and atomically renamed
    into place, so a crash mid-checkpoint leaves the previous checkpoint
    intact and the half-written file ignored (its name never matches).
    """
    views: dict[str, Any] = {}
    if maintainer is not None:
        for name in maintainer.view_names():
            view = maintainer.view(name)
            # Aggregate views persist their core support relation (the
            # visible group rows are derived state); plain views persist
            # their contents.  Same document shape either way.
            views[name] = {
                "policy": maintainer.policy(name).value,
                "relation": relation_to_document(view.stored_contents()),
            }
    doc = {
        "format": CHECKPOINT_FORMAT_VERSION,
        "wal_sequence": wal_sequence,
        "next_txn_id": database.next_txn_id,
        "database": database_to_document(database),
        "views": views,
    }
    path = checkpoint_path(directory, wal_sequence)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as stream:
        json.dump(doc, stream, indent=1, sort_keys=True)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp_path, path)
    return path


class Checkpoint:
    """A decoded checkpoint document."""

    __slots__ = ("wal_sequence", "next_txn_id", "_database_doc", "_views")

    def __init__(self, doc: dict[str, Any]) -> None:
        if doc.get("format") != CHECKPOINT_FORMAT_VERSION:
            raise ReplicationError(
                f"unsupported checkpoint format {doc.get('format')!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        try:
            self.wal_sequence = int(doc["wal_sequence"])
            self.next_txn_id = int(doc["next_txn_id"])
            self._database_doc = doc["database"]
            self._views = doc.get("views", {})
        except (KeyError, TypeError, ValueError) as exc:
            raise ReplicationError(f"checkpoint document is malformed: {exc}") from exc

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read and validate a checkpoint file."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                doc = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReplicationError(f"cannot read checkpoint {path!r}: {exc}") from exc
        return cls(doc)

    def build_database(self) -> Database:
        """A fresh database holding the snapshot's base relations."""
        try:
            database = database_from_document(self._database_doc)
        except PersistenceError as exc:
            raise ReplicationError(f"checkpoint snapshot is invalid: {exc}") from exc
        database.advance_txn_counter(self.next_txn_id)
        return database

    def view_names(self) -> tuple[str, ...]:
        """Names of the views whose contents the checkpoint carries."""
        return tuple(sorted(self._views))

    def view_contents(self, name: str) -> Relation | None:
        """The stored (counted) contents of one view, if persisted."""
        entry = self._views.get(name)
        if entry is None:
            return None
        try:
            return relation_from_document(entry["relation"], name, allow_counts=True)
        except (PersistenceError, KeyError, TypeError) as exc:
            raise ReplicationError(
                f"checkpointed view {name!r} is invalid: {exc}"
            ) from exc

    def view_policy(self, name: str) -> str | None:
        """The maintenance policy recorded for one view, if persisted."""
        entry = self._views.get(name)
        return entry.get("policy") if isinstance(entry, dict) else None

    def __repr__(self) -> str:
        return (
            f"<Checkpoint wal_seq={self.wal_sequence} "
            f"{len(self._views)} views>"
        )
