"""Changefeed followers: independent views downstream of the WAL.

The paper's machinery needs nothing from the base store beyond the
committed delta stream — so a replica that receives (a directory
containing) the leader's checkpoint and WAL can maintain materialized
views the leader has never heard of.  :class:`Follower` is that
replica: it boots its own base-relation copy from the newest
checkpoint, registers its *own* view definitions, and then advances a
position cursor through the log, re-committing each shipped record
through its private commit pipeline.  Every poll runs the same
irrelevance filter and differential evaluation the leader runs, just
against the follower's view set.

Consistency model: a follower is *sequentially consistent with lag* —
after ``poll()`` returns 0 with an undamaged tail, the follower's base
relations equal the leader's as of the follower's position, and each
follower view equals what the same definition would contain on the
leader (deferred views after a ``refresh``).

Base-free hosting
-----------------
With ``base_free=True`` the follower sheds its base-relation copy once
its views are registered: every view must be **self-maintainable**
(:mod:`repro.scheduler.selfmaint` — maintainable from the view's own
counted contents plus the delta, with no base access), the bootstrap
rows are cleared, and each shipped record is decoded into net deltas
and fed straight to the maintainer
(:meth:`~repro.core.maintainer.ViewMaintainer.apply_deltas`) instead of
being re-committed against base state.  The maintained views stay
byte-for-byte what the full replica computes, because the compiled
plan's single-occurrence delta row never reads an OLD operand — only
the memory for the base copies is gone.  Constraint enforcement is
necessarily the leader's job in this mode: a base-free host has no
state to validate deltas against.

Declared keys widen what a base-free follower may host.  Declaring the
leader's keys and foreign keys on the follower
(:meth:`Follower.declare_key` / :meth:`Follower.declare_foreign_key`,
before the views) feeds the chase the premises for the ``fk_join``
self-maintainability class: a join view whose probe relations are
reached through declared foreign keys onto their declared keys
compiles to an FK-reduced plan that executes over the delta relation
alone, so it — inserts *and* deletes, which the shipped records carry
as leader-validated net effects — maintains exactly like a
single-relation view, with probe-relation deltas proven irrelevant and
dropped wholesale.
"""

from __future__ import annotations

from repro.algebra.expressions import Expression
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.log import replay_records
from repro.errors import ReplicationError
from repro.instrumentation import charge
from repro.replication.checkpoints import Checkpoint, latest_checkpoint_path
from repro.replication.recovery import decode_wal_record
from repro.replication.wal import TailDamage, WalReader


class Follower:
    """Consumes a WAL directory and maintains its own views from it.

    ``maintainer_options`` are passed through to the follower's private
    :class:`ViewMaintainer` (e.g. ``use_relevance_filter=False`` for an
    ablation replica).  ``base_free=True`` drops the base-relation copy
    after view registration (see the module docstring); it requires
    every registered view to be self-maintainable.
    """

    def __init__(
        self, directory: str, base_free: bool = False, **maintainer_options
    ) -> None:
        self.directory = directory
        self.base_free = base_free
        #: Distinct base tuples shed by base-free hosting (0 until the
        #: first applied record; the benchmark's memory-saving measure).
        self.base_rows_dropped = 0
        self._base_dropped = False
        path = latest_checkpoint_path(directory)
        if path is None:
            raise ReplicationError(
                f"no checkpoint in {directory!r}: followers bootstrap their "
                "base-relation copy (and schemas) from the leader's checkpoint"
            )
        checkpoint = Checkpoint.load(path)
        #: The follower's private base-relation replica.
        self.database = checkpoint.build_database()
        #: WAL sequence the replica is current as of.
        self.position = checkpoint.wal_sequence
        # Replayed commits keep their WAL sequences in the replica's
        # in-memory log, so follower view refresh positions are the
        # same WAL positions a server changefeed reports.
        self.database.log.advance_sequence(self.position + 1)
        #: The follower's own maintainer — define any views on it.
        self.maintainer = ViewMaintainer(self.database, **maintainer_options)
        #: Torn-tail report from the last poll (None when clean).
        self.tail_damage: TailDamage | None = None
        self._reader = WalReader(directory)

    # ------------------------------------------------------------------
    # View management (delegates to the private maintainer)
    # ------------------------------------------------------------------
    def define_view(
        self,
        name: str,
        expression: Expression,
        policy: MaintenancePolicy = MaintenancePolicy.IMMEDIATE,
    ) -> MaterializedView:
        """Register one of the follower's own views.

        The initial materialization evaluates against the replica at
        the current position; subsequent polls maintain it
        differentially from shipped deltas alone.  On a base-free
        follower all views must be registered before the first record
        is applied — the bootstrap rows the materialization needs are
        shed at that point.
        """
        if self._base_dropped:
            raise ReplicationError(
                f"cannot define view {name!r}: this base-free follower has "
                "already shed its base-relation copy; register every view "
                "before applying records"
            )
        return self.maintainer.define_view(name, expression, policy=policy)

    def view(self, name: str) -> MaterializedView:
        """One of the follower's materialized views."""
        return self.maintainer.view(name)

    def declare_key(self, relation_name: str, attributes) -> tuple[str, ...]:
        """Declare a candidate key on the follower's replica.

        Mirror the leader's declarations *before* defining views: the
        chase premises unlock the ``fk_join`` self-maintainability
        class, letting a base-free follower host FK-joins (see the
        module docstring).  The follower never enforces keys itself —
        shipped records are leader-validated — so declarations here
        are purely analysis premises.
        """
        return self.database.declare_key(relation_name, attributes)

    def declare_foreign_key(
        self,
        relation_name: str,
        attributes,
        ref_relation: str,
        ref_attributes,
    ):
        """Declare a foreign key on the follower's replica (see
        :meth:`declare_key`; the referenced key must be declared
        first)."""
        return self.database.declare_foreign_key(
            relation_name, attributes, ref_relation, ref_attributes
        )

    def refresh(self, name: str) -> bool:
        """Apply a deferred follower view's composed backlog."""
        return self.maintainer.refresh(name)

    # ------------------------------------------------------------------
    # The changefeed loop
    # ------------------------------------------------------------------
    def apply_record(self, record: WalRecord) -> bool:
        """Re-commit one shipped record; False for an applied duplicate.

        This is the single entry point every transport funnels into:
        :meth:`poll` reads records off the shared directory, a
        simulated or real network feed hands them over one at a time.
        Records at or below :attr:`position` are ignored (at-least-once
        delivery makes duplicates normal); a record that skips ahead
        raises :class:`~repro.errors.ReplicationError`, since applying
        it would silently drop the gap — in-order delivery is the
        caller's job (buffer and reorder before calling).
        """
        if record.sequence <= self.position:
            return False
        if record.sequence != self.position + 1:
            raise ReplicationError(
                f"follower at position {self.position} cannot apply record "
                f"{record.sequence}: records {self.position + 1}.."
                f"{record.sequence - 1} are missing"
            )
        if self.base_free:
            self.shed_base_copies()
            log_record = decode_wal_record(self.database, record)
            appended = self.database.log.append(
                log_record.txn_id, log_record.deltas
            )
            if appended.sequence != record.sequence:
                raise ReplicationError(
                    f"base-free follower log assigned sequence "
                    f"{appended.sequence} to WAL record {record.sequence}; "
                    "the in-memory log is out of step with the WAL"
                )
            self.maintainer.apply_deltas(log_record.txn_id, log_record.deltas)
        else:
            replay_records(
                self.database,
                [decode_wal_record(self.database, record)],
                preserve_txn_ids=True,
            )
        self.position = record.sequence
        return True

    # ------------------------------------------------------------------
    # Base-free hosting
    # ------------------------------------------------------------------
    @property
    def base_dropped(self) -> bool:
        """True once the base-relation copy has been shed."""
        return self._base_dropped

    def shed_base_copies(self) -> int:
        """Drop the bootstrap base rows (base-free mode; idempotent).

        Validates that every registered view is self-maintainable —
        anything else would silently diverge once the base copies are
        gone, so offenders are a :class:`ReplicationError` naming the
        views and why.  Returns the number of distinct base tuples
        dropped (also kept on :attr:`base_rows_dropped`).  Called
        automatically before the first record application.
        """
        if not self.base_free:
            raise ReplicationError(
                "shed_base_copies() requires base_free=True"
            )
        if self._base_dropped:
            return self.base_rows_dropped
        offenders = [
            name
            for name in self.maintainer.view_names()
            if not self.maintainer.is_self_maintainable(name)
        ]
        if offenders:
            reasons = "; ".join(
                f"{name}: {self.maintainer.self_maintainability(name).reason}"
                for name in offenders
            )
            raise ReplicationError(
                "base-free follower cannot host non-self-maintainable "
                f"view(s) {offenders}: {reasons}"
            )
        dropped = 0
        for name in sorted(self.database.relation_names()):
            dropped += self.database.relation(name).clear()
        self.base_rows_dropped = dropped
        self._base_dropped = True
        charge("base_free_rows_dropped", dropped)
        return dropped

    def poll(self, max_records: int | None = None) -> int:
        """Consume newly shipped records; returns how many were applied.

        Each record is re-committed as one transaction under its
        original id, advancing :attr:`position`.  A torn tail stops the
        poll (and is reported on :attr:`tail_damage`) — the next poll
        picks up whatever the leader completes afterwards.
        """
        applied = 0
        for record in self._reader.records(after=self.position):
            if self.apply_record(record):
                applied += 1
            if max_records is not None and applied >= max_records:
                break
        self.tail_damage = self._reader.tail_damage
        return applied

    def lag(self) -> int:
        """How many committed records the follower has not yet applied."""
        return max(0, self._reader.last_sequence() - self.position)

    def __repr__(self) -> str:
        return (
            f"<Follower {self.directory!r} position={self.position} "
            f"{len(self.maintainer.view_names())} views>"
        )
