"""Changefeed followers: independent views downstream of the WAL.

The paper's machinery needs nothing from the base store beyond the
committed delta stream — so a replica that receives (a directory
containing) the leader's checkpoint and WAL can maintain materialized
views the leader has never heard of.  :class:`Follower` is that
replica: it boots its own base-relation copy from the newest
checkpoint, registers its *own* view definitions, and then advances a
position cursor through the log, re-committing each shipped record
through its private commit pipeline.  Every poll runs the same
irrelevance filter and differential evaluation the leader runs, just
against the follower's view set.

Consistency model: a follower is *sequentially consistent with lag* —
after ``poll()`` returns 0 with an undamaged tail, the follower's base
relations equal the leader's as of the follower's position, and each
follower view equals what the same definition would contain on the
leader (deferred views after a ``refresh``).
"""

from __future__ import annotations

from repro.algebra.expressions import Expression
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.log import replay_records
from repro.errors import ReplicationError
from repro.replication.checkpoints import Checkpoint, latest_checkpoint_path
from repro.replication.recovery import decode_wal_record
from repro.replication.wal import TailDamage, WalReader


class Follower:
    """Consumes a WAL directory and maintains its own views from it.

    ``maintainer_options`` are passed through to the follower's private
    :class:`ViewMaintainer` (e.g. ``use_relevance_filter=False`` for an
    ablation replica).
    """

    def __init__(self, directory: str, **maintainer_options) -> None:
        self.directory = directory
        path = latest_checkpoint_path(directory)
        if path is None:
            raise ReplicationError(
                f"no checkpoint in {directory!r}: followers bootstrap their "
                "base-relation copy (and schemas) from the leader's checkpoint"
            )
        checkpoint = Checkpoint.load(path)
        #: The follower's private base-relation replica.
        self.database = checkpoint.build_database()
        #: WAL sequence the replica is current as of.
        self.position = checkpoint.wal_sequence
        # Replayed commits keep their WAL sequences in the replica's
        # in-memory log, so follower view refresh positions are the
        # same WAL positions a server changefeed reports.
        self.database.log.advance_sequence(self.position + 1)
        #: The follower's own maintainer — define any views on it.
        self.maintainer = ViewMaintainer(self.database, **maintainer_options)
        #: Torn-tail report from the last poll (None when clean).
        self.tail_damage: TailDamage | None = None
        self._reader = WalReader(directory)

    # ------------------------------------------------------------------
    # View management (delegates to the private maintainer)
    # ------------------------------------------------------------------
    def define_view(
        self,
        name: str,
        expression: Expression,
        policy: MaintenancePolicy = MaintenancePolicy.IMMEDIATE,
    ) -> MaterializedView:
        """Register one of the follower's own views.

        The initial materialization evaluates against the replica at
        the current position; subsequent polls maintain it
        differentially from shipped deltas alone.
        """
        return self.maintainer.define_view(name, expression, policy=policy)

    def view(self, name: str) -> MaterializedView:
        """One of the follower's materialized views."""
        return self.maintainer.view(name)

    def refresh(self, name: str) -> bool:
        """Apply a deferred follower view's composed backlog."""
        return self.maintainer.refresh(name)

    # ------------------------------------------------------------------
    # The changefeed loop
    # ------------------------------------------------------------------
    def apply_record(self, record: WalRecord) -> bool:
        """Re-commit one shipped record; False for an applied duplicate.

        This is the single entry point every transport funnels into:
        :meth:`poll` reads records off the shared directory, a
        simulated or real network feed hands them over one at a time.
        Records at or below :attr:`position` are ignored (at-least-once
        delivery makes duplicates normal); a record that skips ahead
        raises :class:`~repro.errors.ReplicationError`, since applying
        it would silently drop the gap — in-order delivery is the
        caller's job (buffer and reorder before calling).
        """
        if record.sequence <= self.position:
            return False
        if record.sequence != self.position + 1:
            raise ReplicationError(
                f"follower at position {self.position} cannot apply record "
                f"{record.sequence}: records {self.position + 1}.."
                f"{record.sequence - 1} are missing"
            )
        replay_records(
            self.database,
            [decode_wal_record(self.database, record)],
            preserve_txn_ids=True,
        )
        self.position = record.sequence
        return True

    def poll(self, max_records: int | None = None) -> int:
        """Consume newly shipped records; returns how many were applied.

        Each record is re-committed as one transaction under its
        original id, advancing :attr:`position`.  A torn tail stops the
        poll (and is reported on :attr:`tail_damage`) — the next poll
        picks up whatever the leader completes afterwards.
        """
        applied = 0
        for record in self._reader.records(after=self.position):
            if self.apply_record(record):
                applied += 1
            if max_records is not None and applied >= max_records:
                break
        self.tail_damage = self._reader.tail_damage
        return applied

    def lag(self) -> int:
        """How many committed records the follower has not yet applied."""
        return max(0, self._reader.last_sequence() - self.position)

    def __repr__(self) -> str:
        return (
            f"<Follower {self.directory!r} position={self.position} "
            f"{len(self.maintainer.view_names())} views>"
        )
