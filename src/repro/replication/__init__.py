"""Durability and replication: the committed delta stream made portable.

The package turns the engine's in-memory update log into infrastructure
(see ``docs/durability.md``):

* :mod:`~repro.replication.wal` — the on-disk write-ahead delta log:
  checksummed JSONL records in rotating segments, with torn-tail
  truncation;
* :mod:`~repro.replication.checkpoints` — base snapshots (plus view
  contents) anchored to a WAL position;
* :mod:`~repro.replication.durability` — the leader-side commit hook
  and checkpoint/prune operation;
* :mod:`~repro.replication.recovery` — crash recovery that re-derives
  every view differentially from snapshot + WAL tail;
* :mod:`~repro.replication.follower` — changefeed consumers maintaining
  their own independently-defined views from shipped deltas alone.
"""

from repro.replication.checkpoints import (
    Checkpoint,
    checkpoint_path,
    latest_checkpoint_path,
    write_checkpoint,
)
from repro.replication.durability import DurabilityManager
from repro.replication.follower import Follower
from repro.replication.recovery import Recovery, recover
from repro.replication.wal import (
    DEFAULT_SEGMENT_BYTES,
    TailDamage,
    WalCorruptionError,
    WalReader,
    WalRecord,
    WalWriter,
)

__all__ = [
    "Checkpoint",
    "checkpoint_path",
    "latest_checkpoint_path",
    "write_checkpoint",
    "DurabilityManager",
    "Follower",
    "Recovery",
    "recover",
    "DEFAULT_SEGMENT_BYTES",
    "TailDamage",
    "WalCorruptionError",
    "WalReader",
    "WalRecord",
    "WalWriter",
]
