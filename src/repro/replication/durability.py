"""Wiring the WAL into a live database's commit pipeline.

:class:`DurabilityManager` is the leader-side component: a commit hook
that serializes every committed transaction's net-effect deltas into
the write-ahead log, plus the checkpoint operation that snapshots the
base relations (and, given a maintainer, every view's stored contents)
and prunes fully-covered log segments.

The intended lifecycle::

    db = Database()
    db.create_relation(...)                  # schema is checkpoint state,
    durability = DurabilityManager(db, dir)  # not WAL state — so attach
    maintainer = ViewMaintainer(db)          # and checkpoint before the
    maintainer.define_view(...)              # first transaction:
    durability.checkpoint(maintainer)
    ...transactions...                       # appended to the WAL
    durability.checkpoint(maintainer)        # any time; prunes old segments

After a crash, :class:`repro.replication.recovery.Recovery` rebuilds
the database from the newest checkpoint plus the WAL tail; attaching a
fresh ``DurabilityManager`` to the recovered database resumes appending
after the last intact record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.algebra.relation import Delta
from repro.engine.database import Database
from repro.engine.persistence import deltas_to_document
from repro.replication.checkpoints import write_checkpoint
from repro.replication.wal import DEFAULT_SEGMENT_BYTES, WalIO, WalWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.maintainer import ViewMaintainer


class DurabilityManager:
    """Owns the WAL writer and checkpoints for one database.

    Constructing the manager opens (or creates) the log in
    ``directory`` — recovering a torn tail if the previous process
    crashed mid-append — and registers a commit hook on ``database``.
    ``segment_bytes``, ``sync`` and ``io`` are passed through to
    :class:`~repro.replication.wal.WalWriter`.
    """

    def __init__(
        self,
        database: Database,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "commit",
        io: WalIO | None = None,
    ) -> None:
        self.database = database
        self.directory = directory
        self._writer = WalWriter(
            directory, segment_bytes=segment_bytes, sync=sync, io=io
        )
        self._attached = False
        database.add_commit_hook(self._on_commit)
        self._attached = True

    # ------------------------------------------------------------------
    # Commit-side
    # ------------------------------------------------------------------
    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        if not deltas:
            return
        self._writer.append(txn_id, deltas_to_document(dict(deltas)))

    @property
    def position(self) -> int:
        """WAL sequence of the last appended record."""
        return self._writer.last_sequence

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        maintainer: "ViewMaintainer | None" = None,
        refresh_deferred: bool = True,
        prune: bool = True,
    ) -> str:
        """Snapshot the current state; returns the checkpoint's path.

        With a ``maintainer``, every view's stored contents ride along
        so recovery re-adopts them without recomputation; deferred views
        are refreshed first by default, making the checkpoint a
        consistent cut for *all* views (their backlogs re-accumulate
        from the WAL tail on replay).  ``prune`` deletes log segments
        wholly covered by the new checkpoint.
        """
        if maintainer is not None and refresh_deferred:
            from repro.core.maintainer import MaintenancePolicy

            for name in maintainer.view_names():
                if maintainer.policy(name) is MaintenancePolicy.DEFERRED:
                    maintainer.refresh(name)
        # A checkpoint claims "state as of WAL sequence N"; make the log
        # durable through N first so the claim never outlives the
        # records backing it (matters only under sync="close"/"never").
        self._writer.sync_now()
        path = write_checkpoint(
            self.directory,
            self.database,
            self._writer.last_sequence,
            maintainer,
        )
        if prune:
            self._writer.prune_through(self._writer.last_sequence)
        return path

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def sync_now(self) -> None:
        """Force an fsync of the active segment (see WalWriter.sync_now)."""
        self._writer.sync_now()

    def close(self) -> None:
        """Detach from the commit stream and close the log cleanly."""
        if self._attached:
            self.database.remove_commit_hook(self._on_commit)
            self._attached = False
        self._writer.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<DurabilityManager {self.directory!r} "
            f"position={self._writer.last_sequence}>"
        )
