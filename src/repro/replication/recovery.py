"""Crash recovery: newest checkpoint + WAL tail → the pre-crash state.

The protocol has three steps, and their order is what makes recovered
views *differentially* maintained rather than recomputed:

1. **Boot** — load the newest checkpoint; its base relations become a
   fresh :class:`~repro.engine.database.Database` and its transaction
   counter is restored.
2. **Restore views** — the caller re-supplies each view's defining
   expression (definitions are code, not data); contents persisted in
   the checkpoint are re-adopted byte-for-byte via
   :meth:`ViewMaintainer.restore_view`, so no view is evaluated from
   scratch.
3. **Replay** — WAL records after the checkpoint sequence are
   re-committed through the normal commit pipeline under their original
   transaction ids.  Every commit hook fires exactly as it did before
   the crash, so the maintainer's filter + differential machinery
   brings every view (and every index) up to date, and deferred views
   re-accumulate their pending backlogs.

Replay is deterministic: records hold *net effects* (Section 3), whose
application is insensitive to the vagaries of the original operation
order, and the WAL's checksums plus sequence continuity guarantee the
replayed stream is exactly the committed prefix.  A torn tail — the
record being appended when the process died — is truncated, which is
correct because an incomplete append means the commit never finished.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.expressions import Expression
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.database import Database
from repro.engine.log import LogRecord, replay_records
from repro.engine.persistence import PersistenceError, deltas_from_document
from repro.errors import ReplicationError
from repro.replication.checkpoints import Checkpoint, latest_checkpoint_path
from repro.replication.wal import TailDamage, WalReader, WalRecord


def decode_wal_record(database: Database, record: WalRecord) -> LogRecord:
    """Decode one shipped record against a database's schema catalog."""
    try:
        deltas = deltas_from_document(database.schema_catalog(), record.deltas_doc)
    except PersistenceError as exc:
        raise ReplicationError(
            f"cannot decode WAL record {record.sequence}: {exc}"
        ) from exc
    return LogRecord(record.txn_id, record.sequence, deltas)


class Recovery:
    """One recovery session over a durability directory.

    >>> # rec = Recovery("/var/lib/repro")        # boot from checkpoint
    >>> # maintainer = ViewMaintainer(rec.database)
    >>> # rec.restore_view(maintainer, "v", expr) # adopt stored contents
    >>> # rec.replay()                            # differential catch-up
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        path = latest_checkpoint_path(directory)
        if path is None:
            raise ReplicationError(
                f"no checkpoint in {directory!r}: the WAL does not record "
                "schema definitions, so recovery needs the base snapshot "
                "written by DurabilityManager.checkpoint()"
            )
        self._checkpoint = Checkpoint.load(path)
        #: WAL sequence the snapshot is current as of.
        self.checkpoint_sequence = self._checkpoint.wal_sequence
        #: The recovered database (snapshot state until :meth:`replay`).
        self.database = self._checkpoint.build_database()
        # Align the in-memory log with the WAL: replayed commits keep
        # their on-disk sequences, so the recovered history (sequences
        # included) is indistinguishable from the one that wrote the
        # log — and view refresh positions are WAL positions.
        self.database.log.advance_sequence(self.checkpoint_sequence + 1)
        #: Torn-tail report from the last replay (None when clean).
        self.tail_damage: TailDamage | None = None
        #: WAL sequence the database is current as of after replay.
        self.last_sequence = self.checkpoint_sequence

    def checkpointed_views(self) -> tuple[str, ...]:
        """View names whose contents the checkpoint persisted."""
        return self._checkpoint.view_names()

    def restore_view(
        self,
        maintainer: ViewMaintainer,
        name: str,
        expression: Expression,
        policy: MaintenancePolicy | None = None,
    ) -> MaterializedView:
        """Re-register one view, adopting checkpointed contents if present.

        ``maintainer`` must observe :attr:`database`.  ``policy``
        defaults to the policy recorded in the checkpoint (falling back
        to IMMEDIATE for views the checkpoint never saw).  Call before
        :meth:`replay` so the view catches up differentially.
        """
        if maintainer.database is not self.database:
            raise ReplicationError(
                "restore_view needs a maintainer attached to the recovered "
                "database (Recovery.database)"
            )
        if policy is None:
            recorded = self._checkpoint.view_policy(name)
            policy = (
                MaintenancePolicy(recorded)
                if recorded is not None
                else MaintenancePolicy.IMMEDIATE
            )
        contents = self._checkpoint.view_contents(name)
        if contents is None:
            return maintainer.define_view(name, expression, policy=policy)
        return maintainer.restore_view(name, expression, contents, policy=policy)

    def replay(self) -> int:
        """Re-commit the WAL tail; returns the number of transactions.

        Safe to call once, after all views are restored and before any
        new transaction touches :attr:`database`.
        """
        reader = WalReader(self.directory)

        def decoded():
            for record in reader.records(after=self.checkpoint_sequence):
                self.last_sequence = record.sequence
                yield decode_wal_record(self.database, record)

        replayed = replay_records(self.database, decoded(), preserve_txn_ids=True)
        self.tail_damage = reader.tail_damage
        return replayed

    def __repr__(self) -> str:
        return (
            f"<Recovery {self.directory!r} checkpoint_seq="
            f"{self.checkpoint_sequence} last_seq={self.last_sequence}>"
        )


def recover(
    directory: str,
    setup: "Callable[[Recovery, ViewMaintainer], None] | None" = None,
    verify: bool = False,
) -> tuple[Recovery, ViewMaintainer]:
    """One-call recovery: boot, restore views, replay the tail.

    ``setup(recovery, maintainer)`` runs between boot and replay — the
    place to :meth:`Recovery.restore_view` every view definition.
    ``verify`` runs the full-recompute oracle over every restored view
    after replay (:meth:`ViewMaintainer.verify_all`), turning a stale
    checkpoint or a divergent replay into an immediate
    :class:`~repro.errors.MaintenanceError` instead of a silently wrong
    view.  Returns the finished recovery session and its maintainer.
    """
    recovery = Recovery(directory)
    maintainer = ViewMaintainer(recovery.database)
    if setup is not None:
        setup(recovery, maintainer)
    recovery.replay()
    if verify:
        maintainer.quiesce()
        maintainer.verify_all()
    return recovery, maintainer
