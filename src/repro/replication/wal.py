"""The write-ahead delta log.

The paper's central result is that committed net-effect deltas are
sufficient to keep any materialized view current — which makes the
delta stream the natural unit of durability and replication, not just
of maintenance.  This module stores that stream on disk: an append-only
sequence of JSONL records, one per committed transaction, each carrying
``(sequence, txn_id, {relation: delta})`` with the deltas serialized in
the decoded-row form of :mod:`repro.engine.persistence`.

Format
------
Every record is one line of JSON::

    {"body": {"seq": 7, "txn": 12, "deltas": {...}}, "crc": 2833017299}

``crc`` is the CRC-32 of the canonical (sorted-key, no-whitespace) JSON
encoding of ``body``; deltas serialize rows in sorted order, so a given
record always produces identical bytes.  Records live in *segment*
files named ``wal-<first sequence>.jsonl``; a segment is closed and a
new one started once it exceeds the writer's ``segment_bytes``, which
keeps checkpoint-time pruning a matter of deleting whole files.

Failure model
-------------
A crash mid-append leaves a *torn tail*: the final line is incomplete
or fails its checksum.  Both :class:`WalReader` and :class:`WalWriter`
treat a damaged record with nothing valid after it as that torn tail —
the reader stops in front of it, the writer physically truncates it on
open.  A damaged record *followed by* valid data cannot be produced by
an append-only crash and raises :class:`WalCorruptionError` instead of
being silently skipped.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Iterator, Mapping

from repro.errors import ReplicationError
from repro.instrumentation import charge

#: Bumped on any incompatible record-format change.
WAL_FORMAT_VERSION = 1

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
#: Default rotation threshold — small enough that pruning bites in tests.
DEFAULT_SEGMENT_BYTES = 1 << 20


class WalCorruptionError(ReplicationError):
    """The log is damaged somewhere other than its torn tail."""


class TailDamage:
    """Where and why the log's torn tail starts."""

    __slots__ = ("path", "offset", "reason")

    def __init__(self, path: str, offset: int, reason: str) -> None:
        self.path = path
        self.offset = offset
        self.reason = reason

    def __repr__(self) -> str:
        return f"<TailDamage {os.path.basename(self.path)}@{self.offset}: {self.reason}>"


class WalRecord:
    """One committed transaction as shipped through the log."""

    __slots__ = ("sequence", "txn_id", "deltas_doc")

    def __init__(self, sequence: int, txn_id: int, deltas_doc: dict[str, Any]) -> None:
        self.sequence = sequence
        self.txn_id = txn_id
        #: Per-relation delta documents (see persistence.delta_to_document).
        self.deltas_doc = deltas_doc

    def __repr__(self) -> str:
        return (
            f"<WalRecord seq={self.sequence} txn={self.txn_id} "
            f"{sorted(self.deltas_doc)}>"
        )


# ----------------------------------------------------------------------
# Line codec
# ----------------------------------------------------------------------

def _canonical(body: dict[str, Any]) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_record(sequence: int, txn_id: int, deltas_doc: dict[str, Any]) -> bytes:
    """Serialize one record to its checksummed JSONL line (with newline)."""
    body = {"seq": sequence, "txn": txn_id, "deltas": deltas_doc}
    crc = zlib.crc32(_canonical(body))
    line = json.dumps({"body": body, "crc": crc}, sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> WalRecord | None:
    """Decode one line; ``None`` when it is damaged in any way."""
    try:
        doc = json.loads(raw.decode("utf-8"))
        body = doc["body"]
        crc = doc["crc"]
        sequence = body["seq"]
        txn_id = body["txn"]
        deltas_doc = body["deltas"]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None
    if not isinstance(sequence, int) or not isinstance(txn_id, int):
        return None
    if not isinstance(deltas_doc, dict):
        return None
    if zlib.crc32(_canonical(body)) != crc:
        return None
    return WalRecord(sequence, txn_id, deltas_doc)


# ----------------------------------------------------------------------
# Segment bookkeeping
# ----------------------------------------------------------------------

def _segment_path(directory: str, first_sequence: int) -> str:
    return os.path.join(
        directory, f"{_SEGMENT_PREFIX}{first_sequence:016d}{_SEGMENT_SUFFIX}"
    )


def segment_paths(directory: str) -> list[tuple[int, str]]:
    """Sorted ``(first_sequence, path)`` pairs of the directory's segments."""
    segments = []
    for entry in os.listdir(directory):
        if not (entry.startswith(_SEGMENT_PREFIX) and entry.endswith(_SEGMENT_SUFFIX)):
            continue
        stem = entry[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            first_sequence = int(stem)
        except ValueError:
            raise WalCorruptionError(
                f"unrecognized segment name {entry!r}"
            ) from None
        segments.append((first_sequence, os.path.join(directory, entry)))
    segments.sort()
    return segments


def _segment_lines(path: str) -> Iterator[tuple[int, bytes]]:
    """Yield ``(byte_offset, line)`` for every (possibly empty) line."""
    with open(path, "rb") as stream:
        data = stream.read()
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            yield pos, data[pos:]
            return
        yield pos, data[pos:newline]
        pos = newline + 1


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

class WalReader:
    """Sequential, re-scannable access to a WAL directory.

    ``records()`` re-opens the segments on every call, so a long-lived
    reader observes appends made after it was constructed — this is the
    polling loop of :class:`repro.replication.follower.Follower`.  After
    an iteration finishes, :attr:`tail_damage` reports the torn tail it
    stopped in front of, if any.
    """

    def __init__(self, directory: str) -> None:
        if not os.path.isdir(directory):
            raise ReplicationError(f"WAL directory {directory!r} does not exist")
        self.directory = directory
        #: Set by the most recent full ``records()`` iteration.
        self.tail_damage: TailDamage | None = None

    def records(self, after: int = 0) -> Iterator[WalRecord]:
        """Yield records with ``sequence > after``, in sequence order."""
        self.tail_damage = None
        segments = segment_paths(self.directory)
        expected: int | None = None
        for index, (first_sequence, path) in enumerate(segments):
            if expected is None:
                expected = first_sequence
            elif first_sequence != expected:
                raise WalCorruptionError(
                    f"segment {os.path.basename(path)} starts at sequence "
                    f"{first_sequence}, expected {expected}"
                )
            # Whole segments below the cursor can be skipped without
            # parsing: the next segment's name bounds their contents.
            if index + 1 < len(segments) and segments[index + 1][0] <= after + 1:
                expected = segments[index + 1][0]
                continue
            lines = list(_segment_lines(path))
            for line_index, (offset, raw) in enumerate(lines):
                if not raw:
                    continue  # blank line (trailing newline artifact)
                record = decode_line(raw)
                if record is None:
                    tail = index == len(segments) - 1 and not any(
                        later and decode_line(later) is not None
                        for _, later in lines[line_index + 1:]
                    )
                    if tail:
                        self.tail_damage = TailDamage(
                            path, offset, "undecodable or checksum-mismatched record"
                        )
                        return
                    raise WalCorruptionError(
                        f"damaged record at {os.path.basename(path)} offset "
                        f"{offset} with valid records after it"
                    )
                if record.sequence != expected:
                    raise WalCorruptionError(
                        f"record at {os.path.basename(path)} offset {offset} "
                        f"has sequence {record.sequence}, expected {expected}"
                    )
                expected += 1
                if record.sequence > after:
                    charge("wal_records_read")
                    yield record

    def last_sequence(self) -> int:
        """Sequence of the newest intact record (0 when the log is empty)."""
        last = 0
        for record in self.records():
            last = record.sequence
        return last

    def __repr__(self) -> str:
        return f"<WalReader {self.directory!r}>"


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

class WalIO:
    """The writer's narrow OS seam: open, write, fsync, truncate.

    Everything :class:`WalWriter` does to the filesystem goes through
    one of these, so a test harness can substitute a fault-injecting
    subclass (see ``repro.simulation.faults.FaultyWalIO``) that models
    lost fsyncs and torn tail writes without touching the writer's
    logic.  Production code never needs to pass one.
    """

    def open_append(self, path: str):
        """Open ``path`` for appending, positioned at its current end."""
        return open(path, "ab")

    def write(self, stream, data: bytes) -> None:
        """Append ``data`` and push it to the OS (flush, not fsync)."""
        stream.write(data)
        stream.flush()

    def fsync(self, stream) -> None:
        """Ask the OS to make everything written so far durable."""
        os.fsync(stream.fileno())

    def close(self, stream) -> None:
        stream.close()

    def truncate(self, path: str, offset: int) -> None:
        """Cut ``path`` at ``offset`` durably (torn-tail cleanup)."""
        with open(path, "r+b") as stream:
            stream.truncate(offset)
            stream.flush()
            os.fsync(stream.fileno())


class WalWriter:
    """Appends checksummed records, rotating and fsyncing as configured.

    Parameters
    ----------
    directory:
        Created if missing.  Existing segments are scanned on open: the
        writer resumes after the last intact record and *truncates* a
        torn tail left by a crash (damage that is not a torn tail
        raises :class:`WalCorruptionError` — see the module docstring).
    segment_bytes:
        Rotation threshold.  A record always lands wholly in one
        segment; rotation happens when the current segment has reached
        the threshold before the append.
    sync:
        ``"commit"`` (default) fsyncs after every append — the
        durability guarantee; ``"close"`` fsyncs only on rotation and
        close; ``"never"`` leaves flushing to the OS (benchmarking).
    io:
        The :class:`WalIO` implementation carrying all filesystem
        operations (default: the real one).
    """

    _SYNC_MODES = ("commit", "close", "never")

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "commit",
        io: WalIO | None = None,
    ) -> None:
        if sync not in self._SYNC_MODES:
            raise ReplicationError(
                f"unknown sync mode {sync!r}; expected one of {self._SYNC_MODES}"
            )
        if segment_bytes <= 0:
            raise ReplicationError("segment_bytes must be positive")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.sync = sync
        self._io = io if io is not None else WalIO()
        self._stream = None
        self._segment_size = 0
        self._last_sequence = self._recover_tail()

    # ------------------------------------------------------------------
    # Open-time tail recovery
    # ------------------------------------------------------------------
    def _recover_tail(self) -> int:
        """Find the last intact sequence; truncate a torn tail in place."""
        reader = WalReader(self.directory)
        last = 0
        for record in reader.records():
            last = record.sequence
        damage = reader.tail_damage
        if damage is not None:
            self._io.truncate(damage.path, damage.offset)
        return last

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_sequence(self) -> int:
        """Sequence of the last appended (or recovered) record."""
        return self._last_sequence

    def append(self, txn_id: int, deltas_doc: Mapping[str, Any]) -> int:
        """Append one committed transaction; returns its sequence."""
        sequence = self._last_sequence + 1
        line = encode_record(sequence, txn_id, dict(deltas_doc))
        stream = self._stream_for(sequence)
        self._io.write(stream, line)
        if self.sync == "commit":
            self._io.fsync(stream)
            charge("wal_fsyncs")
        self._segment_size += len(line)
        self._last_sequence = sequence
        charge("wal_records_appended")
        charge("wal_bytes_written", len(line))
        return sequence

    def _stream_for(self, sequence: int):
        if self._stream is not None and self._segment_size >= self.segment_bytes:
            self._close_stream()
            charge("wal_segments_rotated")
        if self._stream is None:
            segments = segment_paths(self.directory)
            if segments and os.path.getsize(segments[-1][1]) < self.segment_bytes:
                path = segments[-1][1]
            else:
                path = _segment_path(self.directory, sequence)
            self._stream = self._io.open_append(path)
            self._segment_size = self._stream.tell()
            if self._segment_size and not self._ends_with_newline(path):
                # A crash can shear exactly the terminating newline off
                # the final record while leaving its JSON intact — the
                # reader still decodes it, so tail recovery keeps it.
                # Appending straight after it would weld two records
                # onto one line; restore the terminator first.
                self._io.write(self._stream, b"\n")
                self._segment_size += 1
        return self._stream

    @staticmethod
    def _ends_with_newline(path: str) -> bool:
        with open(path, "rb") as probe:
            probe.seek(-1, os.SEEK_END)
            return probe.read(1) == b"\n"

    def _close_stream(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self.sync != "never":
            self._io.fsync(self._stream)
            charge("wal_fsyncs")
        self._io.close(self._stream)
        self._stream = None
        self._segment_size = 0

    def sync_now(self) -> None:
        """Force an fsync of the open segment regardless of sync mode."""
        if self._stream is not None:
            self._stream.flush()
            self._io.fsync(self._stream)
            charge("wal_fsyncs")

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def prune_through(self, sequence: int) -> int:
        """Delete segments wholly covered by a checkpoint at ``sequence``.

        A segment may go once every record in it has sequence
        ``<= sequence`` *and* it is not the newest segment (the active
        one the writer appends to).  Returns the number of files
        removed.
        """
        segments = segment_paths(self.directory)
        removed = 0
        for index in range(len(segments) - 1):
            next_first = segments[index + 1][0]
            if next_first - 1 <= sequence:
                os.remove(segments[index][1])
                removed += 1
            else:
                break
        return removed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync (unless ``sync="never"``) and release the segment."""
        self._close_stream()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<WalWriter {self.directory!r} last_seq={self._last_sequence} "
            f"sync={self.sync}>"
        )
