"""Integrity-assertion monitoring (Hammer & Sarin [HS78]).

The paper's Section 2 describes [HS78]: every integrity assertion has an
*error predicate* — its logical complement — and efficient enforcement
means analyzing, at compile time, which updates could possibly make the
error predicate true, then testing only those at run time.  The paper's
conclusions observe that its own irrelevance filter "can be used in
those contexts as well": an update that is *irrelevant* to the
error-predicate view provably cannot violate the assertion.

This module builds that bridge:

* An :class:`IntegrityAssertion` is declared by its **error predicate**
  as an SPJ expression over the database — the assertion holds exactly
  when that expression evaluates to the empty relation.
* At declaration ("compile") time the error-predicate view is put in
  normal form and a Section 4 :class:`RelevanceFilter` is prepared per
  relation — [HS78]'s compile-time assertion processor.
* :meth:`AssertionMonitor.validate_transaction` screens a transaction's
  net deltas through the filters; surviving tuples trigger a
  differential evaluation of only the delta rows, against the simulated
  post-state.  Any *insert-tagged* tuple emerging means the transaction
  would make the error predicate non-empty: an
  :class:`IntegrityViolation` is raised **before** commit, so the
  transaction can be aborted.
* Alternatively :meth:`AssertionMonitor.attach` installs a post-commit
  monitor that records violations (useful when enforcement is advisory).
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.expressions import Expression, to_normal_form
from repro.algebra.relation import Delta, Relation
from repro.core.differential import compute_view_delta
from repro.core.irrelevance import filter_delta
from repro.engine.database import Database
from repro.engine.transactions import Transaction
from repro.errors import MaintenanceError
from repro.instrumentation import charge


class IntegrityViolation(MaintenanceError):
    """A transaction would make an assertion's error predicate true."""

    def __init__(self, assertion_name: str, witnesses: list) -> None:
        self.assertion_name = assertion_name
        #: Error-predicate tuples the transaction would create.
        self.witnesses = witnesses
        preview = ", ".join(map(str, witnesses[:3]))
        if len(witnesses) > 3:
            preview += ", …"
        super().__init__(
            f"assertion {assertion_name!r} violated; "
            f"error-predicate witnesses: {preview}"
        )


class IntegrityAssertion:
    """One compiled assertion: name + error-predicate normal form."""

    __slots__ = ("name", "error_predicate", "normal_form")

    def __init__(
        self, name: str, error_predicate: Expression, database: Database
    ) -> None:
        self.name = name
        self.error_predicate = error_predicate
        self.normal_form = to_normal_form(
            error_predicate, database.schema_catalog()
        )

    @property
    def relation_names(self) -> frozenset[str]:
        """Relations whose updates can possibly matter."""
        return frozenset(self.normal_form.relation_names)

    def __repr__(self) -> str:
        return f"<IntegrityAssertion {self.name!r}: NOT EXISTS {self.error_predicate}>"


class AssertionMonitor:
    """Compiles and enforces a set of integrity assertions."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._assertions: dict[str, IntegrityAssertion] = {}
        #: Violations observed in monitor (post-commit) mode:
        #: (txn_id, assertion name, witness tuples).
        self.observed_violations: list[tuple[int, str, list]] = []
        self._attached = False

    # ------------------------------------------------------------------
    # Declaration ("compile time" in [HS78]'s vocabulary)
    # ------------------------------------------------------------------
    def declare(self, name: str, error_predicate: Expression) -> IntegrityAssertion:
        """Compile an assertion from its error predicate.

        The database must currently satisfy the assertion (the error
        predicate must be empty), otherwise declaration fails — the
        monitor maintains an invariant, it cannot create one.
        """
        if name in self._assertions:
            raise MaintenanceError(f"assertion {name!r} is already declared")
        assertion = IntegrityAssertion(name, error_predicate, self.database)
        from repro.core.planner import evaluate_normal_form

        current = evaluate_normal_form(
            assertion.normal_form, self.database.instances()
        )
        if len(current) > 0:
            raise IntegrityViolation(name, sorted(current.value_tuples()))
        self._assertions[name] = assertion
        return assertion

    def drop(self, name: str) -> None:
        """Forget an assertion."""
        if name not in self._assertions:
            raise MaintenanceError(f"no assertion named {name!r}")
        del self._assertions[name]

    def assertion_names(self) -> tuple[str, ...]:
        """All declared assertion names, sorted."""
        return tuple(sorted(self._assertions))

    # ------------------------------------------------------------------
    # Pre-commit enforcement
    # ------------------------------------------------------------------
    def validate_transaction(self, txn: Transaction) -> None:
        """Raise :class:`IntegrityViolation` if committing ``txn`` would
        violate any declared assertion.

        Call immediately before ``txn.commit()``.  The check is
        side-effect free: the post-state is simulated on copies of the
        touched relations only.
        """
        deltas = txn.net_deltas()
        if not deltas:
            return
        post = self._simulated_post_state(deltas)
        for name, assertion in self._assertions.items():
            witnesses = self._violations(assertion, deltas, post)
            if witnesses:
                raise IntegrityViolation(name, witnesses)

    def _simulated_post_state(
        self, deltas: Mapping[str, Delta]
    ) -> dict[str, Relation]:
        post = dict(self.database.instances())
        for name, delta in deltas.items():
            relation = post[name].copy()
            delta.apply_to(relation)
            post[name] = relation
        return post

    def _violations(
        self,
        assertion: IntegrityAssertion,
        deltas: Mapping[str, Delta],
        post: Mapping[str, Relation],
    ) -> list:
        touched = assertion.relation_names & deltas.keys()
        if not touched:
            return []
        charge("assertion_checks")
        relevant: dict[str, Delta] = {}
        for relation_name in touched:
            filtered, _ = filter_delta(
                assertion.normal_form, relation_name, deltas[relation_name]
            )
            if not filtered.is_empty():
                relevant[relation_name] = filtered
        if not relevant:
            # Every update provably cannot satisfy the error predicate:
            # [HS78]'s compile-time screening at its best.
            charge("assertion_checks_screened")
            return []
        error_delta = compute_view_delta(assertion.normal_form, post, relevant)
        return sorted(error_delta.inserted)

    # ------------------------------------------------------------------
    # Post-commit monitoring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Observe commits and record (not prevent) violations."""
        if not self._attached:
            self.database.add_commit_hook(self._on_commit)
            self._attached = True

    def detach(self) -> None:
        """Stop observing commits."""
        if self._attached:
            self.database.remove_commit_hook(self._on_commit)
            self._attached = False

    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        if not deltas:
            return
        post = self.database.instances()  # hooks run post-apply
        for name, assertion in self._assertions.items():
            witnesses = self._violations(assertion, deltas, post)
            if witnesses:
                self.observed_violations.append((txn_id, name, witnesses))

    def __repr__(self) -> str:
        return (
            f"<AssertionMonitor {len(self._assertions)} assertions, "
            f"{len(self.observed_violations)} observed violations>"
        )
