"""Differentially maintained union views.

The paper's entire Section 5 rests on one algebraic fact: select,
project and join distribute over union.  That same fact makes views
defined as a *union of SPJ branches* maintainable with no new
machinery: the delta of ``V = E₁ ∪ E₂ ∪ … ∪ E_b`` is the merged delta
of the branches, because

    (E₁ ∪ … ∪ E_b)(D ⊕ Δ) = E₁(D ⊕ Δ) ∪ … ∪ E_b(D ⊕ Δ)

and each branch delta is exactly what :func:`compute_view_delta`
produces.  Union here is the *counted* (bag) union — counts add — in
keeping with the Section 5.2 multiplicity-counter semantics, so a tuple
produced by two branches carries count 2 and survives the deletion of
either supporting branch's source.

This lifts the maintainable class from SPJ to SPJU, covering the
classic "view as union of cases" idiom (e.g. hot orders = big pending
orders ∪ any order from a priority customer).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.expressions import Expression, to_normal_form
from repro.algebra.relation import Delta, Relation, TaggedRelation
from repro.algebra.tags import Tag
from repro.core.differential import compute_view_delta
from repro.core.irrelevance import filter_delta
from repro.core.planner import evaluate_normal_form
from repro.engine.database import Database
from repro.errors import MaintenanceError, SchemaError
from repro.instrumentation import charge


class UnionView:
    """A materialized union of SPJ branches, maintained differentially.

    All branches must produce the same output schema (attribute names,
    in order).  Maintenance runs inside every commit, via a hook
    registered at construction.
    """

    def __init__(
        self,
        database: Database,
        name: str,
        branches: Sequence[Expression],
        use_relevance_filter: bool = True,
    ) -> None:
        if not branches:
            raise MaintenanceError("a union view needs at least one branch")
        self.database = database
        self.name = name
        self.use_relevance_filter = use_relevance_filter
        catalog = database.schema_catalog()
        self.normal_forms = [to_normal_form(b, catalog) for b in branches]
        schemas = [nf.output_schema() for nf in self.normal_forms]
        first = schemas[0]
        for schema in schemas[1:]:
            if schema.names != first.names:
                raise SchemaError(
                    f"union branches disagree on output schema: "
                    f"{first.names} vs {schema.names}"
                )
        self.contents = self._materialize()
        #: Number of non-empty deltas applied since materialization.
        self.updates_applied = 0
        database.add_commit_hook(self._on_commit)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _materialize(self) -> Relation:
        instances = self.database.instances()
        total: Relation | None = None
        for nf in self.normal_forms:
            branch = evaluate_normal_form(nf, instances)
            total = branch if total is None else total.union(branch)
        assert total is not None
        return total

    @property
    def relation_names(self) -> frozenset[str]:
        """Base relations any branch depends on."""
        names: frozenset[str] = frozenset()
        for nf in self.normal_forms:
            names |= frozenset(nf.relation_names)
        return names

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        touched = self.relation_names & deltas.keys()
        if not touched:
            return
        charge("union_view_maintenances")
        merged = TaggedRelation(self.contents.schema)
        instances = self.database.instances()
        for nf in self.normal_forms:
            branch_deltas: dict[str, Delta] = {}
            for relation_name in frozenset(nf.relation_names) & deltas.keys():
                delta = deltas[relation_name]
                if self.use_relevance_filter:
                    delta, _ = filter_delta(nf, relation_name, delta)
                if not delta.is_empty():
                    branch_deltas[relation_name] = delta
            if not branch_deltas:
                continue
            branch_delta = compute_view_delta(nf, instances, branch_deltas)
            for values, count in branch_delta.inserted.items():
                merged.add(values, Tag.INSERT, count)
            for values, count in branch_delta.deleted.items():
                merged.add(values, Tag.DELETE, count)
        view_delta = merged.to_delta()
        if not view_delta.is_empty():
            view_delta.apply_to(self.contents)
            self.updates_applied += 1

    # ------------------------------------------------------------------
    # Verification / teardown
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Compare against from-scratch evaluation of every branch."""
        truth = self._materialize()
        if truth != self.contents:
            raise MaintenanceError(
                f"union view {self.name!r} diverged from recomputation"
            )

    def detach(self) -> None:
        """Stop maintaining."""
        self.database.remove_commit_hook(self._on_commit)

    def __len__(self) -> int:
        return len(self.contents)

    def __repr__(self) -> str:
        return (
            f"<UnionView {self.name!r} {len(self.normal_forms)} branches, "
            f"{len(self.contents)} tuples, {self.updates_applied} updates>"
        )
