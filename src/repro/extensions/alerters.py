"""Alerters (Buneman & Clemons [BC79]) over maintained views.

An alerter monitors a database and reports when "a state of the
database, described by the view definition, has been reached".  With
the paper's maintenance machinery this reduces to subscribing to a
materialized view's deltas: every insert-tagged view tuple is a *raise*
event, every delete-tagged one a *clear* event — no polling, no
re-evaluation, and the Section 4 filter screens uninteresting updates
before they cost anything (exactly [BC79]'s emphasis on "efficient
detection of base relation updates that are of no interest").

Usage::

    registry = AlerterRegistry(db)
    registry.define(
        "overheat",
        BaseRef("sensor").join(BaseRef("reading"))
                         .select("value > threshold + 10"),
        on_event=print,
    )
    # ... commits fire AlertEvents synchronously ...
    print(registry.log)        # every event ever fired
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta
from repro.core.maintainer import ViewMaintainer
from repro.core.views import MaterializedView
from repro.engine.database import Database
from repro.errors import MaintenanceError


class AlertEvent:
    """One alerter firing: a view tuple appeared or disappeared."""

    __slots__ = ("alerter", "kind", "values", "count")

    RAISED = "raised"
    CLEARED = "cleared"

    def __init__(self, alerter: str, kind: str, values: tuple, count: int) -> None:
        self.alerter = alerter
        self.kind = kind
        self.values = values
        self.count = count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlertEvent):
            return NotImplemented
        return (
            self.alerter == other.alerter
            and self.kind == other.kind
            and self.values == other.values
            and self.count == other.count
        )

    def __repr__(self) -> str:
        return f"<AlertEvent {self.alerter}:{self.kind} {self.values} x{self.count}>"


class Alerter:
    """One named alerter: a target view plus its event callback."""

    __slots__ = ("name", "view", "on_event", "events_fired")

    def __init__(
        self,
        name: str,
        view: MaterializedView,
        on_event: Callable[[AlertEvent], None] | None,
    ) -> None:
        self.name = name
        self.view = view
        self.on_event = on_event
        self.events_fired = 0

    def active_conditions(self) -> list[tuple]:
        """View tuples currently raised (the alerter's live alarms)."""
        return sorted(self.view.contents.value_tuples())

    def __repr__(self) -> str:
        return (
            f"<Alerter {self.name!r}: {len(self.view.contents)} active, "
            f"{self.events_fired} events fired>"
        )


class AlerterRegistry:
    """Manages alerters over one database.

    Owns a private :class:`ViewMaintainer` so the *target relations*
    ([BC79]'s term for the monitored queries) are maintained like any
    other materialized view; alert events are derived from the deltas
    the maintainer applies, count-faithfully (a tuple whose multiplicity
    rises from 0 raises; one whose multiplicity falls to 0 clears;
    intermediate count changes are not events).
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._maintainer = ViewMaintainer(database)
        self._alerters: dict[str, Alerter] = {}
        #: Chronological log of every event fired by any alerter.
        self.log: list[AlertEvent] = []

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------
    def define(
        self,
        name: str,
        target: Expression,
        on_event: Callable[[AlertEvent], None] | None = None,
    ) -> Alerter:
        """Register an alerter on a target-relation expression.

        Conditions already satisfied at definition time count as active
        alarms but do not fire events (the alerter reports *changes*).
        """
        if name in self._alerters:
            raise MaintenanceError(f"alerter {name!r} is already defined")
        view = self._maintainer.define_view(f"__alerter__{name}", target)
        alerter = Alerter(name, view, on_event)
        self._alerters[name] = alerter

        def deliver(view: MaterializedView, delta: Delta) -> None:
            self._deliver(alerter, delta)

        self._maintainer.subscribe(f"__alerter__{name}", deliver)
        return alerter

    def drop(self, name: str) -> None:
        """Remove an alerter and its target view."""
        if name not in self._alerters:
            raise MaintenanceError(f"no alerter named {name!r}")
        del self._alerters[name]
        self._maintainer.drop_view(f"__alerter__{name}")

    def alerter(self, name: str) -> Alerter:
        """The alerter registered under ``name``."""
        try:
            return self._alerters[name]
        except KeyError:
            raise MaintenanceError(f"no alerter named {name!r}") from None

    def alerter_names(self) -> tuple[str, ...]:
        """All alerter names, sorted."""
        return tuple(sorted(self._alerters))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, alerter: Alerter, delta: Delta) -> None:
        contents = alerter.view.contents
        events: list[AlertEvent] = []
        for values, count in delta.inserted.items():
            # The delta is already applied: a raise happened iff the
            # tuple's count equals the inserted count (it was absent).
            if contents.count_of(values) == count:
                events.append(
                    AlertEvent(alerter.name, AlertEvent.RAISED, values, count)
                )
        for values, count in delta.deleted.items():
            if contents.count_of(values) == 0:
                events.append(
                    AlertEvent(alerter.name, AlertEvent.CLEARED, values, count)
                )
        for event in sorted(events, key=lambda e: (e.kind, e.values)):
            alerter.events_fired += 1
            self.log.append(event)
            if alerter.on_event is not None:
                alerter.on_event(event)

    def detach(self) -> None:
        """Stop all monitoring."""
        self._maintainer.detach()

    def __repr__(self) -> str:
        return (
            f"<AlerterRegistry {len(self._alerters)} alerters, "
            f"{len(self.log)} events>"
        )
