"""Extensions beyond the paper's core contribution.

Section 2 (previous work) and Section 6 (conclusions) point at three
neighbouring applications of the same machinery, all implemented here:

* :mod:`assertions` — integrity-assertion monitoring in the style of
  Hammer & Sarin [HS78]; the paper notes "our results can be used in
  those contexts as well".
* :mod:`alerters` — Buneman & Clemons-style alerters [BC79] as
  first-class subscribers to maintained-view deltas.
* :mod:`estimator` — the conclusions' open question ("determine under
  what circumstances differential re-evaluation is more efficient than
  complete re-evaluation") operationalized as a cost-estimating
  maintainer policy.
* :mod:`union_views` — the SPJ class lifted to SPJU: views defined as a
  union of branches, maintained through the very distributivity over
  union that powers Section 5.
"""

from repro.extensions.assertions import AssertionMonitor, IntegrityAssertion
from repro.extensions.alerters import Alerter, AlertEvent, AlerterRegistry
from repro.extensions.estimator import (
    AdaptiveMaintainer,
    MaintenanceCostModel,
    StrategyDecision,
)
from repro.extensions.union_views import UnionView

__all__ = [
    "UnionView",
    "AssertionMonitor",
    "IntegrityAssertion",
    "Alerter",
    "AlertEvent",
    "AlerterRegistry",
    "AdaptiveMaintainer",
    "MaintenanceCostModel",
    "StrategyDecision",
]
