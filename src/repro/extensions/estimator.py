"""Adaptive strategy choice: differential vs complete re-evaluation.

The paper's conclusions: "Our differential view update algorithm does
not automatically provide the most efficient way of updating the view.
Therefore, a next step in this direction is to determine under what
circumstances differential re-evaluation is more efficient than
complete re-evaluation of the expression defining the view."

This module takes that step.  :class:`MaintenanceCostModel` estimates
both strategies' costs in abstract work units:

* differential ≈ ``c_diff · (2^k − 1) · |Δ|  +  prep`` where prep is
  the old-operand construction proportional to the touched relations'
  sizes;
* complete ≈ ``c_full · Σ|r_i|`` plus the expected output size.

The per-unit coefficients ``c_diff`` / ``c_full`` are *learned online*
from the operation counts each executed strategy actually charges
(exponentially weighted), so the model self-calibrates to the workload
instead of hard-coding constants.  :class:`AdaptiveMaintainer` wires
the model into the commit pipeline: early commits explore both
strategies; afterwards each commit runs whichever the model predicts
cheaper, and every observation refines the model.  Decisions are kept
for inspection as :class:`StrategyDecision` records.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta
from repro.core.differential import compute_view_delta
from repro.core.irrelevance import filter_delta
from repro.core.planner import evaluate_normal_form
from repro.core.views import MaterializedView, ViewDefinition
from repro.engine.database import Database
from repro.errors import MaintenanceError
from repro.instrumentation import CostRecorder, recording

#: Operation counters that constitute "work" for the model.
_WORK_COUNTERS = ("tuples_scanned", "join_probes", "tuples_emitted")


def _work(recorder: CostRecorder) -> int:
    return sum(recorder.get(name) for name in _WORK_COUNTERS)


class StrategyDecision:
    """One commit's decision and its outcome."""

    __slots__ = ("chosen", "estimated_differential", "estimated_full",
                 "observed_work")

    def __init__(self, chosen: str, estimated_differential: float,
                 estimated_full: float, observed_work: int) -> None:
        self.chosen = chosen
        self.estimated_differential = estimated_differential
        self.estimated_full = estimated_full
        self.observed_work = observed_work

    def __repr__(self) -> str:
        return (
            f"<StrategyDecision {self.chosen} "
            f"(diff~{self.estimated_differential:.0f}, "
            f"full~{self.estimated_full:.0f}, saw {self.observed_work})>"
        )


class MaintenanceCostModel:
    """Online-calibrated cost estimates for the two strategies."""

    def __init__(self, smoothing: float = 0.3) -> None:
        if not 0 < smoothing <= 1:
            raise MaintenanceError("smoothing must be in (0, 1]")
        self.smoothing = smoothing
        #: Learned work units per (delta tuple × truth-table row).
        self.c_diff = 1.0
        #: Learned work units per base tuple for a full evaluation.
        self.c_full = 1.0

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def size_features(
        self, delta_tuples: int, changed_relations: int,
        touched_base_tuples: int, total_base_tuples: int,
    ) -> tuple[float, float]:
        """Return the raw size terms for both strategies.

        The differential term includes the old-operand preparation cost
        (a scan of each touched relation) — the dominant fixed cost of
        a truth-table evaluation — plus rows × delta work; the complete
        term is a scan of everything.
        """
        rows = (1 << changed_relations) - 1
        differential = touched_base_tuples + rows * max(1, delta_tuples)
        full = total_base_tuples
        return float(differential), float(full)

    def estimate(self, delta_tuples: int, changed_relations: int,
                 touched_base_tuples: int, total_base_tuples: int,
                 ) -> tuple[float, float]:
        """Calibrated cost estimates ``(differential, full)``."""
        diff_term, full_term = self.size_features(
            delta_tuples, changed_relations, touched_base_tuples,
            total_base_tuples,
        )
        return self.c_diff * diff_term, self.c_full * full_term

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def observe(self, strategy: str, size_term: float, observed_work: int) -> None:
        """Fold one observation into the chosen strategy's coefficient."""
        if size_term <= 0:
            return
        sample = observed_work / size_term
        if strategy == "differential":
            self.c_diff += self.smoothing * (sample - self.c_diff)
        elif strategy == "full":
            self.c_full += self.smoothing * (sample - self.c_full)
        else:  # pragma: no cover - defensive
            raise MaintenanceError(f"unknown strategy {strategy!r}")

    def __repr__(self) -> str:
        return f"<MaintenanceCostModel c_diff={self.c_diff:.3f} c_full={self.c_full:.3f}>"


class AdaptiveMaintainer:
    """Maintains one view, choosing the cheaper strategy per commit.

    Parameters
    ----------
    database, name, expression:
        As for :meth:`ViewMaintainer.define_view`.
    exploration:
        Number of initial maintenance rounds that alternate strategies
        regardless of the estimates, so both coefficients get calibrated
        before the model starts deciding.
    use_relevance_filter:
        Screen deltas with the Section 4 filter first (default on).
    """

    def __init__(
        self,
        database: Database,
        name: str,
        expression: Expression,
        exploration: int = 4,
        use_relevance_filter: bool = True,
        model: MaintenanceCostModel | None = None,
    ) -> None:
        self.database = database
        self.use_relevance_filter = use_relevance_filter
        self.exploration = exploration
        self.model = model if model is not None else MaintenanceCostModel()
        definition = ViewDefinition(name, expression, database.schema_catalog())
        self.view = MaterializedView.materialize(definition, database.instances())
        #: Every maintenance round's decision, in commit order.
        self.decisions: list[StrategyDecision] = []
        self._rounds = 0
        database.add_commit_hook(self._on_commit)

    # ------------------------------------------------------------------
    # Commit pipeline
    # ------------------------------------------------------------------
    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        normal_form = self.view.definition.normal_form
        touched = self.view.definition.relation_names & deltas.keys()
        if not touched:
            return

        relevant: dict[str, Delta] = {}
        for relation_name in touched:
            delta = deltas[relation_name]
            if self.use_relevance_filter:
                delta, _ = filter_delta(normal_form, relation_name, delta)
            if not delta.is_empty():
                relevant[relation_name] = delta
        if not relevant:
            return

        delta_tuples = sum(
            len(d.inserted) + len(d.deleted) for d in relevant.values()
        )
        changed = len(
            [o for o in normal_form.occurrences if o.name in relevant]
        )
        touched_base = sum(
            len(self.database.relation(o.name)) for o in normal_form.occurrences
            if o.name in relevant
        )
        total_base = sum(
            len(self.database.relation(o.name)) for o in normal_form.occurrences
        )
        est_diff, est_full = self.model.estimate(
            delta_tuples, changed, touched_base, total_base
        )

        if self._rounds < self.exploration:
            chosen = "differential" if self._rounds % 2 == 0 else "full"
        else:
            chosen = "differential" if est_diff <= est_full else "full"
        self._rounds += 1

        recorder = CostRecorder()
        with recording(recorder):
            if chosen == "differential":
                view_delta = compute_view_delta(
                    normal_form, self.database.instances(), relevant
                )
                self.view.apply_delta(view_delta)
            else:
                self.view.contents = evaluate_normal_form(
                    normal_form, self.database.instances()
                )
                self.view.updates_applied += 1

        observed = _work(recorder)
        diff_term, full_term = self.model.size_features(
            delta_tuples, changed, touched_base, total_base
        )
        self.model.observe(
            chosen, diff_term if chosen == "differential" else full_term, observed
        )
        self.decisions.append(
            StrategyDecision(chosen, est_diff, est_full, observed)
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def strategy_counts(self) -> dict[str, int]:
        """How many rounds each strategy was chosen."""
        counts = {"differential": 0, "full": 0}
        for decision in self.decisions:
            counts[decision.chosen] += 1
        return counts

    def detach(self) -> None:
        """Stop maintaining."""
        self.database.remove_commit_hook(self._on_commit)

    def __repr__(self) -> str:
        counts = self.strategy_counts()
        return (
            f"<AdaptiveMaintainer {self.view.definition.name!r} "
            f"diff={counts['differential']} full={counts['full']} {self.model!r}>"
        )
