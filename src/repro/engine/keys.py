"""Declared keys and foreign keys — the engine's dependency premises.

The paper's machinery reasons over per-relation *range* conditions
(:mod:`repro.engine.constraints`); this catalog adds the second premise
family the self-maintenance literature builds on: **candidate keys**
(no two stored rows agree on the key attributes) and **foreign keys**
(every referencing row's key-valued attributes match the key of some
row in the referenced relation).  Like range constraints, declared
keys serve two masters:

* **Enforcement** — the commit pipeline rejects transactions whose net
  effect would leave two rows agreeing on a declared key
  (:class:`~repro.errors.KeyViolationError`) or a referencing row
  without its referenced partner; declaration itself fails if the
  existing rows already violate the invariant.  Every stored state
  therefore satisfies every declared key and foreign key at all times.
* **Static analysis** — the chase pass
  (:mod:`repro.analysis.dependencies`) seeds functional dependencies
  from declared keys, propagates them through a view condition's
  equality atoms, and derives *view keys*, counter-free proofs, and
  FK-join reductions whose verdicts are load-bearing at runtime
  (base-free hosting, counter-free codegen).

Declaring or dropping fires the database's DDL hook bus (events
``"declare_key"`` / ``"drop_key"`` / ``"declare_foreign_key"`` /
``"drop_foreign_key"``), so cached plans embedding dependency proofs
are invalidated exactly like plans staled by a constraint change.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.algebra.schema import RelationSchema
from repro.errors import ConstraintError

#: Fired as ``notify(event, relation_name)`` — the same shape as the
#: database's other DDL events.
NotifyFn = Callable[[str, str], None]

ValueTuple = tuple[int, ...]


class ForeignKey:
    """One declared foreign key: referencing attrs → referenced key."""

    __slots__ = ("relation", "attributes", "ref_relation", "ref_attributes")

    def __init__(
        self,
        relation: str,
        attributes: tuple[str, ...],
        ref_relation: str,
        ref_attributes: tuple[str, ...],
    ) -> None:
        self.relation = relation
        self.attributes = attributes
        self.ref_relation = ref_relation
        self.ref_attributes = ref_attributes

    def describe(self) -> str:
        """``r (B) references p (K)`` — the CLI/declaration spelling."""
        return (
            f"{self.relation} ({', '.join(self.attributes)}) references "
            f"{self.ref_relation} ({', '.join(self.ref_attributes)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForeignKey):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.attributes == other.attributes
            and self.ref_relation == other.ref_relation
            and self.ref_attributes == other.ref_attributes
        )

    def __hash__(self) -> int:
        return hash(
            (self.relation, self.attributes, self.ref_relation, self.ref_attributes)
        )

    def __repr__(self) -> str:
        return f"<ForeignKey {self.describe()}>"


class KeyCatalog:
    """The declared keys and foreign keys of one database.

    Relations may carry several candidate keys; foreign keys are stored
    under their *referencing* relation and must target a declared key
    of the referenced relation (the owning database validates that, and
    contents, at declaration time — the catalog only keeps the mapping
    and fires change notifications, mirroring
    :class:`~repro.engine.constraints.ConstraintCatalog`).
    """

    __slots__ = ("_keys", "_foreign_keys", "_notify")

    def __init__(self, notify: NotifyFn | None = None) -> None:
        self._keys: dict[str, list[tuple[str, ...]]] = {}
        self._foreign_keys: dict[str, list[ForeignKey]] = {}
        self._notify = notify

    # -- keys -----------------------------------------------------------
    def declare_key(self, relation_name: str, attributes: Sequence[str]) -> None:
        """Record ``attributes`` as a candidate key (idempotent)."""
        key = tuple(attributes)
        keys = self._keys.setdefault(relation_name, [])
        if key not in keys:
            keys.append(key)
            keys.sort()
        if self._notify is not None:
            self._notify("declare_key", relation_name)

    def drop_key(
        self, relation_name: str, attributes: Sequence[str] | None = None
    ) -> bool:
        """Forget one key (or all of a relation's); True when one existed.

        A key a declared foreign key still references cannot be dropped
        (every FK must target a declared key — the uniqueness premise
        the chase and the FK enforcement both rely on); drop the
        foreign key first.
        """
        keys = self._keys.get(relation_name)
        if not keys:
            return False
        dropped = keys if attributes is None else [tuple(attributes)]
        for fk in self.referencing(relation_name):
            if fk.ref_attributes in dropped:
                raise ConstraintError(
                    f"cannot drop key ({', '.join(fk.ref_attributes)}) on "
                    f"'{relation_name}': the foreign key {fk.describe()} "
                    "targets it; drop the foreign key first"
                )
        if attributes is None:
            del self._keys[relation_name]
        else:
            key = tuple(attributes)
            if key not in keys:
                return False
            keys.remove(key)
            if not keys:
                del self._keys[relation_name]
        if self._notify is not None:
            self._notify("drop_key", relation_name)
        return True

    def keys_of(self, relation_name: str) -> tuple[tuple[str, ...], ...]:
        """The declared candidate keys of ``relation_name`` (sorted)."""
        return tuple(self._keys.get(relation_name, ()))

    def has_key(self, relation_name: str) -> bool:
        return bool(self._keys.get(relation_name))

    # -- foreign keys ---------------------------------------------------
    def declare_foreign_key(self, foreign_key: ForeignKey) -> None:
        """Record one foreign key (idempotent)."""
        fks = self._foreign_keys.setdefault(foreign_key.relation, [])
        if foreign_key not in fks:
            fks.append(foreign_key)
            fks.sort(key=lambda fk: (fk.ref_relation, fk.attributes, fk.ref_attributes))
        if self._notify is not None:
            self._notify("declare_foreign_key", foreign_key.relation)

    def drop_foreign_key(self, relation_name: str, ref_relation: str) -> bool:
        """Forget the foreign keys from ``relation_name`` to ``ref_relation``."""
        fks = self._foreign_keys.get(relation_name)
        if not fks:
            return False
        remaining = [fk for fk in fks if fk.ref_relation != ref_relation]
        if len(remaining) == len(fks):
            return False
        if remaining:
            self._foreign_keys[relation_name] = remaining
        else:
            del self._foreign_keys[relation_name]
        if self._notify is not None:
            self._notify("drop_foreign_key", relation_name)
        return True

    def foreign_keys_of(self, relation_name: str) -> tuple[ForeignKey, ...]:
        """Foreign keys declared *on* (referencing from) ``relation_name``."""
        return tuple(self._foreign_keys.get(relation_name, ()))

    def referencing(self, ref_relation: str) -> tuple[ForeignKey, ...]:
        """Every foreign key whose *referenced* relation is ``ref_relation``."""
        found = [
            fk
            for fks in self._foreign_keys.values()
            for fk in fks
            if fk.ref_relation == ref_relation
        ]
        found.sort(key=lambda fk: (fk.relation, fk.attributes, fk.ref_attributes))
        return tuple(found)

    # -- bulk views -----------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Relations carrying a declared key, sorted."""
        return tuple(sorted(self._keys))

    def items(self) -> Iterator[tuple[str, tuple[tuple[str, ...], ...]]]:
        """(relation, keys) in sorted name order."""
        for name in self.names():
            yield name, tuple(self._keys[name])

    def foreign_key_items(self) -> Iterator[ForeignKey]:
        """Every declared foreign key, referencing-relation order."""
        for name in sorted(self._foreign_keys):
            yield from self._foreign_keys[name]

    def discard(self, relation_name: str) -> None:
        """Drop everything involving ``relation_name`` without notifying —
        for relation drops, which already fire their own DDL event."""
        self._keys.pop(relation_name, None)
        self._foreign_keys.pop(relation_name, None)
        for name in list(self._foreign_keys):
            remaining = [
                fk
                for fk in self._foreign_keys[name]
                if fk.ref_relation != relation_name
            ]
            if remaining:
                self._foreign_keys[name] = remaining
            else:
                del self._foreign_keys[name]

    def __len__(self) -> int:
        return sum(len(keys) for keys in self._keys.values())

    def __contains__(self, relation_name: str) -> bool:
        return bool(self._keys.get(relation_name))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}: {[list(key) for key in keys]}" for name, keys in self.items()
        )
        return f"<KeyCatalog {inner or 'empty'}>"


def validate_key_attributes(
    relation_name: str, attributes: Sequence[str], schema: RelationSchema
) -> tuple[str, ...]:
    """Reject empty, duplicated, or out-of-schema key attribute lists."""
    key = tuple(attributes)
    if not key:
        raise ConstraintError(
            f"key on {relation_name!r} must name at least one attribute"
        )
    if len(set(key)) != len(key):
        raise ConstraintError(
            f"key on {relation_name!r} repeats attributes: {list(key)}"
        )
    stray = [name for name in key if name not in schema.nameset]
    if stray:
        raise ConstraintError(
            f"key on {relation_name!r} references attributes {stray} "
            f"outside its schema {list(schema.names)}"
        )
    return key


def find_key_collisions(
    schema: RelationSchema,
    key: tuple[str, ...],
    rows: Iterable[ValueTuple],
) -> list[tuple[ValueTuple, ValueTuple]]:
    """Pairs of distinct rows agreeing on ``key``, sorted (first few)."""
    positions = [schema.index(name) for name in key]
    seen: dict[ValueTuple, ValueTuple] = {}
    collisions: list[tuple[ValueTuple, ValueTuple]] = []
    for values in sorted(rows):
        key_values = tuple(values[p] for p in positions)
        other = seen.get(key_values)
        if other is not None and other != values:
            collisions.append((other, values))
        else:
            seen[key_values] = values
    return collisions


def find_dangling_references(
    foreign_key: ForeignKey,
    referencing_schema: RelationSchema,
    referencing_rows: Iterable[ValueTuple],
    referenced_schema: RelationSchema,
    referenced_rows: Iterable[ValueTuple],
) -> list[ValueTuple]:
    """Referencing rows with no referenced-key partner, sorted."""
    src_positions = [
        referencing_schema.index(name) for name in foreign_key.attributes
    ]
    dst_positions = [
        referenced_schema.index(name) for name in foreign_key.ref_attributes
    ]
    present = {
        tuple(values[p] for p in dst_positions) for values in referenced_rows
    }
    dangling = [
        values
        for values in referencing_rows
        if tuple(values[p] for p in src_positions) not in present
    ]
    return sorted(dangling)


def post_state_rows(
    relation_rows: Iterable[ValueTuple],
    delta: "object | None",
) -> Iterator[ValueTuple]:
    """Stored rows − deleted + inserted, for net-effect commit checks.

    ``delta`` is a :class:`~repro.algebra.relation.Delta` (or None when
    the transaction leaves the relation untouched).
    """
    if delta is None:
        yield from relation_rows
        return
    deleted: Mapping[ValueTuple, int] = delta.deleted  # type: ignore[attr-defined]
    inserted: Mapping[ValueTuple, int] = delta.inserted  # type: ignore[attr-defined]
    for values in relation_rows:
        if values not in deleted:
            yield values
    yield from inserted
