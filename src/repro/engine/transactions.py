"""Transactions with the paper's net-effect semantics (Section 3).

A transaction is an *indivisible* sequence of insert and delete
operations against base relations.  The paper represents its effect on
each relation ``r`` by two sets — inserted tuples ``i_r`` and deleted
tuples ``d_r`` — such that ``r``, ``i_r`` and ``d_r`` are mutually
disjoint and the new state is ``r ∪ i_r − d_r``.  Crucially, only the
*net* changes count: "if a tuple not in the relation is inserted and
then deleted within a transaction, it is not represented at all in this
set of changes".

:class:`Transaction` implements exactly that bookkeeping.  Operations
are validated and folded into net-effect sets relative to the
relation's pre-transaction state:

* ``insert(t)`` with ``t`` pending deletion cancels the deletion;
  with ``t`` already present (or already pending insertion) it is a
  no-op (base relations are sets — count 1 per tuple, per §5.2);
  otherwise ``t`` joins the pending-insert set.
* ``delete(t)`` with ``t`` pending insertion cancels the insertion;
  with ``t`` present and not yet deleted it joins the pending-delete
  set; otherwise it is a no-op.

The resulting sets provably satisfy the Section 3 disjointness
invariant, which the property tests verify against a replay oracle.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable

from repro.algebra.relation import Delta
from repro.algebra.tuples import coerce_row
from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database

ValueTuple = tuple[int, ...]


class TransactionState(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """An atomic batch of base-relation updates.

    Obtain instances through :meth:`repro.engine.database.Database.begin`
    or the :meth:`~repro.engine.database.Database.transact` context
    manager rather than constructing them directly.
    """

    def __init__(self, database: "Database", txn_id: int) -> None:
        self._database = database
        self.txn_id = txn_id
        self.state = TransactionState.ACTIVE
        # Per relation: net pending inserts / deletes (encoded tuples).
        self._pending_inserts: dict[str, set[ValueTuple]] = {}
        self._pending_deletes: dict[str, set[ValueTuple]] = {}

    # ------------------------------------------------------------------
    # Update operations
    # ------------------------------------------------------------------
    def insert(self, relation_name: str, row: object) -> None:
        """``insert(R, t)``: make ``t`` present in ``R`` after commit."""
        self._require_active()
        relation = self._database.relation(relation_name)
        values = coerce_row(relation.schema, row)
        inserts = self._pending_inserts.setdefault(relation_name, set())
        deletes = self._pending_deletes.setdefault(relation_name, set())
        if values in deletes:
            # Was present, deleted earlier in this transaction; reinsert
            # cancels to a net no-op.
            deletes.discard(values)
            return
        if values in inserts or values in relation:
            return
        inserts.add(values)

    def insert_many(self, relation_name: str, rows: Iterable[object]) -> None:
        """Insert every row of ``rows`` into ``relation_name``."""
        for row in rows:
            self.insert(relation_name, row)

    def delete(self, relation_name: str, row: object) -> None:
        """``delete(R, t)``: make ``t`` absent from ``R`` after commit."""
        self._require_active()
        relation = self._database.relation(relation_name)
        values = coerce_row(relation.schema, row)
        inserts = self._pending_inserts.setdefault(relation_name, set())
        deletes = self._pending_deletes.setdefault(relation_name, set())
        if values in inserts:
            # Inserted earlier in this transaction: net no-op.
            inserts.discard(values)
            return
        if values in relation and values not in deletes:
            deletes.add(values)

    def delete_many(self, relation_name: str, rows: Iterable[object]) -> None:
        """Delete every row of ``rows`` from ``relation_name``."""
        for row in rows:
            self.delete(relation_name, row)

    def update(self, relation_name: str, old_row: object, new_row: object) -> None:
        """Modify a tuple in place, expressed as delete + insert.

        The paper's model has no primitive update operation; replacing a
        tuple is a deletion of the old value and an insertion of the
        new one, and the net-effect machinery handles the rest.
        """
        self.delete(relation_name, old_row)
        self.insert(relation_name, new_row)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def touched_relations(self) -> tuple[str, ...]:
        """Names of relations with a non-empty net effect so far."""
        names = set()
        for name, pending in self._pending_inserts.items():
            if pending:
                names.add(name)
        for name, pending in self._pending_deletes.items():
            if pending:
                names.add(name)
        return tuple(sorted(names))

    def net_deltas(self) -> dict[str, Delta]:
        """The current net effect per relation, as :class:`Delta` objects.

        Only relations with a non-empty net effect appear in the result.
        """
        deltas: dict[str, Delta] = {}
        for name in self.touched_relations():
            schema = self._database.relation(name).schema
            deltas[name] = Delta.from_counts(
                schema,
                {v: 1 for v in self._pending_inserts.get(name, ())},
                {v: 1 for v in self._pending_deletes.get(name, ())},
            )
        return deltas

    def is_read_only(self) -> bool:
        """True when the transaction has no net effect at all."""
        return not self.touched_relations()

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def commit(self) -> dict[str, Delta]:
        """Atomically apply the net effect and run maintenance hooks.

        Returns the per-relation deltas that were applied.  Hooks (view
        maintainers, index managers, the update log) run *inside* the
        commit, matching the paper's assumption that "the differential
        update mechanism is invoked as the last operation within the
        transaction".
        """
        self._require_active()
        deltas = self.net_deltas()
        # Declared-constraint enforcement runs while the transaction is
        # still active: a violation propagates with nothing applied and
        # the transaction abortable as usual.
        self._database._check_constraints(self, deltas)
        self.state = TransactionState.COMMITTED
        self._database._apply_commit(self, deltas)
        return deltas

    def abort(self) -> None:
        """Discard all pending operations."""
        self._require_active()
        self.state = TransactionState.ABORTED
        self._pending_inserts.clear()
        self._pending_deletes.clear()

    def _require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    def __repr__(self) -> str:
        return (
            f"<Transaction {self.txn_id} {self.state.value} "
            f"touching {list(self.touched_relations())}>"
        )
