"""Hash indexes over base relations.

The paper's differential algorithm repeatedly joins small delta
relations against large, mostly-static base relations ("old" operands).
That access pattern — probe a base relation by the values of a few join
attributes — is precisely what a hash index serves.  The
:class:`IndexManager` keeps declared indexes synchronized with base
relations across commits by consuming the same net-effect deltas the
view maintainer does, and the differential planner uses an index when
one covers the join attributes of an "old" base operand.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.algebra.relation import Delta, Relation
from repro.errors import SchemaError
from repro.instrumentation import charge

ValueTuple = tuple[int, ...]


class HashIndex:
    """A hash index mapping key values to the rows that carry them.

    ``attributes`` names the indexed attributes, in key order.  Rows are
    stored as full encoded value tuples; a key maps to the set of rows
    sharing it.
    """

    __slots__ = ("relation_name", "attributes", "_positions", "_buckets")

    def __init__(self, relation: Relation, relation_name: str,
                 attributes: Sequence[str]) -> None:
        if not attributes:
            raise SchemaError("an index needs at least one attribute")
        self.relation_name = relation_name
        self.attributes = tuple(attributes)
        self._positions = relation.schema.positions(self.attributes)
        self._buckets: dict[ValueTuple, set[ValueTuple]] = {}
        for values in relation.value_tuples():
            self._insert(values)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _key_of(self, values: ValueTuple) -> ValueTuple:
        return tuple(values[i] for i in self._positions)

    def _insert(self, values: ValueTuple) -> None:
        self._buckets.setdefault(self._key_of(values), set()).add(values)

    def _remove(self, values: ValueTuple) -> None:
        key = self._key_of(values)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(values)
        if not bucket:
            del self._buckets[key]

    def apply_delta(self, delta: Delta) -> None:
        """Keep the index in step with a committed net-effect delta."""
        for values in delta.deleted:
            self._remove(values)
        for values in delta.inserted:
            self._insert(values)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe(self, key: ValueTuple) -> frozenset[ValueTuple]:
        """All rows whose indexed attributes equal ``key``."""
        charge("index_probes")
        return frozenset(self._buckets.get(tuple(key), ()))

    def probe_many(self, keys: Iterable[ValueTuple]) -> Iterator[ValueTuple]:
        """Rows matching any of ``keys`` (deduplicated per key)."""
        for key in keys:
            yield from self.probe(key)

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"<HashIndex {self.relation_name}({', '.join(self.attributes)}) "
            f"{len(self._buckets)} keys>"
        )


class IndexManager:
    """All indexes of one database, kept consistent across commits.

    ``on_change`` is an optional observer called as
    ``on_change(event, relation_name)`` whenever the *set* of indexes
    actually changes (``event`` is ``"create_index"`` or
    ``"drop_index"``).  The owning :class:`~repro.engine.database.Database`
    points it at its DDL-hook broadcast so compiled maintenance plans
    holding index bindings are invalidated even when callers mutate the
    manager directly rather than through the database facade.
    """

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, tuple[str, ...]], HashIndex] = {}
        self.on_change: "Callable[[str, str], None] | None" = None

    def create_index(self, relation: Relation, relation_name: str,
                     attributes: Sequence[str]) -> HashIndex:
        """Create (or return the existing) index on the given attributes."""
        key = (relation_name, tuple(attributes))
        existing = self._indexes.get(key)
        if existing is not None:
            return existing
        index = HashIndex(relation, relation_name, attributes)
        self._indexes[key] = index
        if self.on_change is not None:
            self.on_change("create_index", relation_name)
        return index

    def drop_index(self, relation_name: str, attributes: Sequence[str]) -> bool:
        """Remove an index; returns True when one existed."""
        existed = self._indexes.pop((relation_name, tuple(attributes)), None) is not None
        if existed and self.on_change is not None:
            self.on_change("drop_index", relation_name)
        return existed

    def lookup(self, relation_name: str,
               attributes: Sequence[str]) -> HashIndex | None:
        """The index on exactly these attributes, if declared."""
        return self._indexes.get((relation_name, tuple(attributes)))

    def indexes_on(self, relation_name: str) -> tuple[HashIndex, ...]:
        """Every index declared over ``relation_name``."""
        return tuple(
            idx for (name, _), idx in self._indexes.items() if name == relation_name
        )

    def apply_deltas(self, deltas: Mapping[str, Delta]) -> None:
        """Propagate a commit's net deltas into all affected indexes."""
        for (name, _), index in self._indexes.items():
            delta = deltas.get(name)
            if delta is not None:
                index.apply_delta(delta)

    def __len__(self) -> int:
        return len(self._indexes)

    def __repr__(self) -> str:
        return f"<IndexManager {len(self._indexes)} indexes>"
