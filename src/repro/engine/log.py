"""The update log.

Section 5 assumes that when the view-update mechanism runs, "the set of
tuples actually inserted into or deleted from each base relation" is
available.  :class:`UpdateLog` is the component that makes this true
beyond the immediate commit: it records the net-effect deltas of every
committed transaction, in commit order, so that

* deferred (snapshot) maintenance can compose the deltas accumulated
  since a view's last refresh (see :mod:`repro.engine.snapshots`),
* tests can replay history against a fresh database and verify that the
  net-effect representation is faithful, and
* tooling can inspect what happened.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.algebra.relation import Delta
from repro.algebra.tuples import Row
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class LogRecord:
    """One committed transaction: its id and per-relation net deltas."""

    __slots__ = ("txn_id", "deltas", "sequence")

    def __init__(self, txn_id: int, sequence: int, deltas: Mapping[str, Delta]) -> None:
        self.txn_id = txn_id
        self.sequence = sequence
        self.deltas = dict(deltas)

    def touched_relations(self) -> tuple[str, ...]:
        """Relations this transaction had a net effect on."""
        return tuple(sorted(self.deltas))

    def __repr__(self) -> str:
        return f"<LogRecord seq={self.sequence} txn={self.txn_id} {self.touched_relations()}>"


class UpdateLog:
    """An append-only, in-memory log of committed transactions."""

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._next_sequence = 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, txn_id: int, deltas: Mapping[str, Delta]) -> LogRecord:
        """Record a committed transaction; returns the new record."""
        record = LogRecord(txn_id, self._next_sequence, deltas)
        self._next_sequence += 1
        self._records.append(record)
        return record

    def advance_sequence(self, next_sequence: int) -> None:
        """Ensure future records get sequences ``>= next_sequence``.

        Recovery and followers call this before replaying a WAL tail so
        the in-memory log assigns each replayed commit *the same
        sequence the WAL gave it* — afterwards ``last_sequence()`` (and
        every view's ``last_refresh_sequence``) is a WAL position,
        which is what changefeed subscribers resume from.
        """
        self._next_sequence = max(self._next_sequence, next_sequence)

    def truncate_before(self, sequence: int) -> int:
        """Drop records with ``sequence <`` the given value.

        Returns the number of records dropped.  Called after all
        deferred consumers have caught up past ``sequence``.
        """
        kept = [r for r in self._records if r.sequence >= sequence]
        dropped = len(self._records) - len(kept)
        self._records = kept
        return dropped

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records_since(self, sequence: int) -> Iterator[LogRecord]:
        """Records with ``sequence >`` the given value, in order."""
        for record in self._records:
            if record.sequence > sequence:
                yield record

    def last_sequence(self) -> int:
        """Sequence number of the newest record (0 when empty)."""
        return self._records[-1].sequence if self._records else 0

    def composed_delta(self, relation_name: str, since_sequence: int = 0) -> Delta | None:
        """Net delta for one relation across all records after a point.

        Composition cancels insert/delete pairs across transactions,
        mirroring within-transaction net-effect cancellation.  Returns
        ``None`` when no record touched the relation.
        """
        combined: Delta | None = None
        for record in self.records_since(since_sequence):
            delta = record.deltas.get(relation_name)
            if delta is None:
                continue
            combined = delta if combined is None else combined.compose(delta)
        return combined

    def replay(self, database: "Database") -> None:
        """Re-apply every logged delta against ``database`` in order.

        Used by tests to check that the log is a faithful record: a
        fresh copy of the initial state replayed through the log must
        equal the live database.
        """
        replay_records(database, self._records)

    def __repr__(self) -> str:
        return f"<UpdateLog {len(self._records)} records>"


def replay_records(
    database: "Database",
    records: Iterable[LogRecord],
    preserve_txn_ids: bool = False,
) -> int:
    """Re-commit a sequence of log records against ``database``.

    Each record becomes one transaction through the normal commit
    pipeline, so every commit hook — view maintainers above all — sees
    the replayed deltas exactly as it saw the originals; views are
    re-derived differentially, never recomputed.  Replay is
    deterministic because each record holds a *net effect*: deletions
    are applied before insertions per relation, and net-effect
    cancellation cannot re-trigger (inserts are absent from, deletes
    present in, the pre-state by the Section 3 invariant).

    ``preserve_txn_ids`` re-commits each record under its original
    transaction id (crash recovery); the default assigns fresh ids
    (replay-as-oracle in tests).  Returns the number of transactions
    committed.
    """
    replayed = 0
    for record in records:
        txn_id = record.txn_id if preserve_txn_ids else None
        with database.transact(txn_id) as txn:
            for name, delta in record.deltas.items():
                # Deltas hold encoded tuples; wrap them in Rows so the
                # transaction does not re-encode already-encoded values.
                schema = database.relation(name).schema
                for values in delta.deleted:
                    txn.delete(name, Row(schema, values))
                for values in delta.inserted:
                    txn.insert(name, Row(schema, values))
        replayed += 1
        charge("log_replay_transactions")
    return replayed
