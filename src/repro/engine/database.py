"""The database: named base relations plus the commit pipeline.

A :class:`Database` owns:

* the base relations (plain set-semantics relations — every tuple has
  multiplicity one, as the paper notes for base relations in §5.2);
* the transaction factory (:meth:`begin` / :meth:`transact`);
* the :class:`~repro.engine.log.UpdateLog`;
* the :class:`~repro.engine.indexes.IndexManager`;
* an ordered list of *commit hooks* — callables receiving
  ``(txn_id, {relation: Delta})`` — through which view maintainers and
  snapshot queues observe committed net effects.  Hooks run inside the
  commit, after base relations and indexes have been updated, matching
  the paper's assumption that base relations are updated before views
  and that complete affected tuples are available at view-update time.
"""

from __future__ import annotations

from contextlib import contextmanager, suppress
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.algebra.tuples import Row
from repro.engine.constraints import (
    ConstraintCatalog,
    find_violations,
    validate_constraint_condition,
)
from repro.engine.indexes import IndexManager
from repro.engine.keys import (
    ForeignKey,
    KeyCatalog,
    find_dangling_references,
    find_key_collisions,
    post_state_rows,
    validate_key_attributes,
)
from repro.engine.log import UpdateLog
from repro.engine.transactions import Transaction
from repro.errors import (
    ConstraintError,
    ConstraintViolationError,
    KeyViolationError,
    SchemaError,
    UnknownRelationError,
)

CommitHook = Callable[[int, Mapping[str, Delta]], None]

#: A schema/DDL observer: ``hook(event, relation_name)`` where event is
#: one of ``"create_relation"``, ``"drop_relation"``, ``"create_index"``,
#: ``"drop_index"``, ``"declare_constraint"``, ``"drop_constraint"``,
#: ``"declare_key"``, ``"drop_key"``, ``"declare_foreign_key"``,
#: ``"drop_foreign_key"``.
DdlHook = Callable[[str, str], None]


class Database:
    """An in-memory relational database with commit-time maintenance."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._next_txn_id = 1
        self.log = UpdateLog()
        self.indexes = IndexManager()
        self.indexes.on_change = self._notify_ddl
        self.constraints = ConstraintCatalog(notify=self._notify_ddl)
        self.keys = KeyCatalog(notify=self._notify_ddl)
        self._commit_hooks: list[CommitHook] = []
        self._ddl_hooks: list[DdlHook] = []

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------
    def create_relation(
        self,
        name: str,
        schema: RelationSchema | Sequence[str],
        rows: Iterable[object] = (),
    ) -> Relation:
        """Create a base relation, optionally loading initial rows.

        Initial rows bypass the transaction machinery: they define the
        starting state, not an update to be maintained against.
        """
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        relation = Relation(schema)
        for row in rows:
            if row in relation:
                raise SchemaError(f"duplicate initial row {row!r} in {name!r}")
            relation.add(row)
        self._relations[name] = relation
        self._notify_ddl("create_relation", name)
        return relation

    def drop_relation(self, name: str) -> None:
        """Remove a base relation and its indexes."""
        if name not in self._relations:
            raise UnknownRelationError(f"unknown relation {name!r}")
        del self._relations[name]
        # Snapshot into a list before dropping: drop_index mutates the
        # manager's mapping backing indexes_on, so iteration must never
        # run over a live view of it.
        for index in list(self.indexes.indexes_on(name)):
            self.indexes.drop_index(name, index.attributes)
        # The constraint dies with its relation; drop_relation's own DDL
        # event already reaches every dependent, so no second event.
        self.constraints.discard(name)
        self.keys.discard(name)
        self._notify_ddl("drop_relation", name)

    def relation(self, name: str) -> Relation:
        """The live base relation named ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(f"unknown relation {name!r}") from None

    def relation_names(self) -> tuple[str, ...]:
        """All base-relation names, sorted."""
        return tuple(sorted(self._relations))

    def schema_catalog(self) -> dict[str, RelationSchema]:
        """Mapping of relation name to schema (for expression analysis)."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def instances(self) -> dict[str, Relation]:
        """Mapping of relation name to live contents (for evaluation)."""
        return dict(self._relations)

    def create_index(self, relation_name: str, attributes: Sequence[str]):
        """Declare a hash index over a base relation."""
        return self.indexes.create_index(
            self.relation(relation_name), relation_name, attributes
        )

    def drop_index(self, relation_name: str, attributes: Sequence[str]) -> bool:
        """Drop a hash index; returns True when one existed."""
        return self.indexes.drop_index(relation_name, attributes)

    def declare_constraint(
        self, relation_name: str, condition: object
    ) -> Condition:
        """Declare that every tuple of ``relation_name`` satisfies
        ``condition`` (a Condition or a parseable string over the
        relation's attribute names).

        Existing rows are validated immediately — a constraint records
        an invariant, it cannot create one — and from here on the
        commit pipeline rejects transactions inserting violating tuples
        (:class:`~repro.errors.ConstraintViolationError`).  Declaring
        fires a ``declare_constraint`` DDL event, invalidating any
        compiled maintenance plan whose static-irrelevance proofs the
        new premise could change; re-declaring replaces the previous
        condition.
        """
        relation = self.relation(relation_name)
        coerced = Condition.coerce(condition)
        validate_constraint_condition(relation_name, coerced, relation.schema)
        violations = find_violations(
            relation_name, coerced, relation.schema, relation
        )
        if violations:
            preview = ", ".join(map(str, violations[:3]))
            if len(violations) > 3:
                preview += ", …"
            raise ConstraintError(
                f"cannot declare constraint {coerced} on {relation_name!r}: "
                f"existing rows violate it: {preview}"
            )
        self.constraints.declare(relation_name, coerced)
        return coerced

    def drop_constraint(self, relation_name: str) -> bool:
        """Drop a declared constraint; returns True when one existed.

        Fires a ``drop_constraint`` DDL event: plans that statically
        dropped the relation's screening on the constraint's strength
        must recompile without it.
        """
        self.relation(relation_name)  # unknown names fail loudly
        return self.constraints.drop(relation_name)

    def declare_key(
        self, relation_name: str, attributes: Sequence[str]
    ) -> tuple[str, ...]:
        """Declare ``attributes`` as a candidate key of ``relation_name``.

        Existing rows are validated immediately — no two stored rows may
        agree on the key — and from here on the commit pipeline rejects
        transactions whose net effect would create such a pair
        (:class:`~repro.errors.KeyViolationError`).  Declaring fires a
        ``declare_key`` DDL event, invalidating cached plans whose
        dependency proofs the new premise could strengthen.
        """
        relation = self.relation(relation_name)
        key = validate_key_attributes(relation_name, attributes, relation.schema)
        collisions = find_key_collisions(
            relation.schema, key, relation.value_tuples()
        )
        if collisions:
            preview = ", ".join(f"{a!r}/{b!r}" for a, b in collisions[:3])
            if len(collisions) > 3:
                preview += ", …"
            raise ConstraintError(
                f"cannot declare key ({', '.join(key)}) on {relation_name!r}: "
                f"existing rows collide on it: {preview}"
            )
        self.keys.declare_key(relation_name, key)
        return key

    def drop_key(
        self, relation_name: str, attributes: Sequence[str] | None = None
    ) -> bool:
        """Drop a declared key (or all of a relation's); True when one
        existed.  Fires a ``drop_key`` DDL event: plans embedding the
        key's dependency proofs must recompile without them.
        """
        self.relation(relation_name)  # unknown names fail loudly
        return self.keys.drop_key(relation_name, attributes)

    def declare_foreign_key(
        self,
        relation_name: str,
        attributes: Sequence[str],
        ref_relation: str,
        ref_attributes: Sequence[str],
    ) -> ForeignKey:
        """Declare that ``relation_name``'s ``attributes`` reference the
        declared key ``ref_attributes`` of ``ref_relation``.

        The referenced attribute list must already be a declared key of
        the referenced relation (referential integrity to a non-key is
        not a functional dependency, so the chase could not use it).
        Existing rows are validated immediately; from here on the commit
        pipeline rejects transactions whose net effect leaves a
        referencing row without its referenced partner.
        """
        relation = self.relation(relation_name)
        ref = self.relation(ref_relation)
        key = validate_key_attributes(relation_name, attributes, relation.schema)
        ref_key = validate_key_attributes(ref_relation, ref_attributes, ref.schema)
        if len(key) != len(ref_key):
            raise ConstraintError(
                f"foreign key on {relation_name!r} lists {len(key)} "
                f"attributes but references {len(ref_key)}"
            )
        if ref_key not in self.keys.keys_of(ref_relation):
            raise ConstraintError(
                f"foreign key on {relation_name!r} references "
                f"({', '.join(ref_key)}) which is not a declared key of "
                f"{ref_relation!r} — declare the key first"
            )
        foreign_key = ForeignKey(relation_name, key, ref_relation, ref_key)
        dangling = find_dangling_references(
            foreign_key,
            relation.schema,
            relation.value_tuples(),
            ref.schema,
            ref.value_tuples(),
        )
        if dangling:
            preview = ", ".join(map(str, dangling[:3]))
            if len(dangling) > 3:
                preview += ", …"
            raise ConstraintError(
                f"cannot declare foreign key {foreign_key.describe()}: "
                f"existing rows dangle: {preview}"
            )
        self.keys.declare_foreign_key(foreign_key)
        return foreign_key

    def drop_foreign_key(self, relation_name: str, ref_relation: str) -> bool:
        """Drop the foreign keys from ``relation_name`` to
        ``ref_relation``; True when one existed."""
        self.relation(relation_name)  # unknown names fail loudly
        return self.keys.drop_foreign_key(relation_name, ref_relation)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self, txn_id: int | None = None) -> Transaction:
        """Start a new transaction.

        ``txn_id`` pins an explicit identifier — the recovery path uses
        this to replay write-ahead-log records under their original ids,
        so a recovered database's history is indistinguishable from the
        one that produced the log.  Uniqueness of pinned ids is the
        replayer's contract (a log never holds duplicates); the counter
        only ever advances, so fresh transactions cannot collide with
        replayed ones.
        """
        if txn_id is None:
            txn_id = self._next_txn_id
        txn = Transaction(self, txn_id)
        self._next_txn_id = max(self._next_txn_id, txn_id + 1)
        return txn

    @contextmanager
    def transact(self, txn_id: int | None = None) -> Iterator[Transaction]:
        """Context manager: commit on success, abort on exception.

        >>> db = Database()
        >>> _ = db.create_relation("r", ["A", "B"])
        >>> with db.transact() as txn:
        ...     txn.insert("r", (1, 2))
        >>> (1, 2) in db.relation("r")
        True
        """
        txn = self.begin(txn_id)
        try:
            yield txn
        except BaseException:
            if txn.state.value == "active":
                txn.abort()
            raise
        if txn.state.value == "active":
            txn.commit()

    @property
    def next_txn_id(self) -> int:
        """The id the next transaction will receive (checkpoint state)."""
        return self._next_txn_id

    def advance_txn_counter(self, next_txn_id: int) -> None:
        """Ensure future transactions get ids ``>= next_txn_id``.

        Called by recovery after replaying a checkpoint whose log tail
        is empty, so fresh transactions never reuse a pre-crash id.
        """
        self._next_txn_id = max(self._next_txn_id, next_txn_id)

    def apply(self, inserts: Mapping[str, Iterable[object]] | None = None,
              deletes: Mapping[str, Iterable[object]] | None = None) -> dict[str, Delta]:
        """One-shot transaction helper: insert/delete batches and commit."""
        with self.transact() as txn:
            for name, rows in (deletes or {}).items():
                txn.delete_many(name, rows)
            for name, rows in (inserts or {}).items():
                txn.insert_many(name, rows)
            deltas = txn.commit()
        return deltas

    # ------------------------------------------------------------------
    # Commit pipeline
    # ------------------------------------------------------------------
    def add_commit_hook(self, hook: CommitHook) -> None:
        """Register a commit observer (view maintainer, snapshot queue…).

        Hooks run in registration order, inside the commit, after base
        relations, indexes and the log have been updated.
        """
        self._commit_hooks.append(hook)

    def remove_commit_hook(self, hook: CommitHook) -> None:
        """Unregister a previously added hook (no-op when absent)."""
        with suppress(ValueError):
            self._commit_hooks.remove(hook)

    def add_ddl_hook(self, hook: DdlHook) -> None:
        """Register a schema-change observer.

        Hooks fire on ``create_relation``/``drop_relation`` and on real
        index-set changes (``create_index``/``drop_index``), including
        ones made directly through :attr:`indexes`.  View maintainers
        use this to invalidate compiled maintenance plans whose join
        order or index bindings the change could stale.
        """
        self._ddl_hooks.append(hook)

    def remove_ddl_hook(self, hook: DdlHook) -> None:
        """Unregister a previously added DDL hook (no-op when absent)."""
        with suppress(ValueError):
            self._ddl_hooks.remove(hook)

    def _notify_ddl(self, event: str, relation_name: str) -> None:
        # Unlike commit hooks (observers of an already-durable fact,
        # where stop-at-first-failure is the pinned policy), DDL hooks
        # are correctness-critical: the maintainer's plan invalidation
        # rides this bus, and a user hook registered earlier must not be
        # able to stop it — that would leave a cached plan bound to an
        # index or relation that no longer exists.  Every hook sees
        # every event; the first failure propagates afterwards.
        failure: BaseException | None = None
        for hook in self._ddl_hooks:
            try:
                hook(event, relation_name)
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def _check_constraints(
        self, txn: Transaction, deltas: Mapping[str, Delta]
    ) -> None:
        """Reject a commit whose inserts violate a declared constraint.

        Called by :meth:`Transaction.commit` before the transaction
        leaves the active state, so a violation aborts cleanly with no
        state changed.  Deletions cannot violate a tuple-wise
        invariant, so only the inserted side is checked.  Declared keys
        and foreign keys are checked here too — on the transaction's
        *net effect* against the post-state — so a violation of any
        declared invariant aborts before the commit mutates anything.
        """
        if len(self.constraints):
            for name, delta in deltas.items():
                condition = self.constraints.get(name)
                if condition is None or not delta.inserted:
                    continue
                schema = self._relations[name].schema
                violations = find_violations(
                    name, condition, schema, delta.inserted
                )
                if violations:
                    preview = ", ".join(map(str, violations[:3]))
                    if len(violations) > 3:
                        preview += ", …"
                    raise ConstraintViolationError(
                        f"transaction {txn.txn_id} violates the constraint "
                        f"{condition} on {name!r}: {preview}"
                    )
        violation = self.net_effect_violation(deltas)
        if violation is not None:
            raise KeyViolationError(
                f"transaction {txn.txn_id} violates {violation}"
            )

    def _post_state(self, name: str, deltas: Mapping[str, Delta]):
        relation = self._relations[name]
        return post_state_rows(
            relation.value_tuples(), deltas.get(name)
        )

    def net_effect_violation(
        self, deltas: Mapping[str, Delta]
    ) -> str | None:
        """Describe the first declared key / foreign key a net effect breaks.

        Returns ``None`` when the post-state satisfies every declared
        key and foreign key.  This is the commit pipeline's enforcement
        check exposed without a transaction: 2PC prepare runs it over a
        staged sub-transaction's netted deltas so that a unanimously
        prepared commit can never fail its key checks afterwards.

        Key collisions: deletes cannot create one, so only relations
        receiving inserts are checked — but against their full
        *post-state*, since a new row may collide with a surviving
        stored row.  Foreign keys ``r → p`` can break through inserts
        into ``r`` or deletes from ``p``; both sides are evaluated
        against their post-states, so a transaction may move a
        referenced row and its referencing rows together.
        """
        if not len(self.keys):
            return None
        for name in sorted(deltas):
            delta = deltas[name]
            if not delta.inserted:
                continue
            for key in self.keys.keys_of(name):
                schema = self._relations[name].schema
                collisions = find_key_collisions(
                    schema, key, self._post_state(name, deltas)
                )
                if collisions:
                    preview = ", ".join(
                        f"{a!r}/{b!r}" for a, b in collisions[:3]
                    )
                    if len(collisions) > 3:
                        preview += ", …"
                    return (
                        f"the key ({', '.join(key)}) on {name!r}: {preview}"
                    )
        touched = set(deltas)
        checked: set[ForeignKey] = set()
        for name in sorted(touched):
            candidates = self.keys.foreign_keys_of(name) + self.keys.referencing(
                name
            )
            for fk in candidates:
                if fk in checked:
                    continue
                checked.add(fk)
                src_delta = deltas.get(fk.relation)
                dst_delta = deltas.get(fk.ref_relation)
                src_grew = src_delta is not None and bool(src_delta.inserted)
                dst_shrank = dst_delta is not None and bool(dst_delta.deleted)
                if not (src_grew or dst_shrank):
                    continue
                dangling = find_dangling_references(
                    fk,
                    self._relations[fk.relation].schema,
                    self._post_state(fk.relation, deltas),
                    self._relations[fk.ref_relation].schema,
                    self._post_state(fk.ref_relation, deltas),
                )
                if dangling:
                    preview = ", ".join(map(str, dangling[:3]))
                    if len(dangling) > 3:
                        preview += ", …"
                    return f"the foreign key {fk.describe()}: {preview}"
        return None

    def _apply_commit(self, txn: Transaction, deltas: Mapping[str, Delta]) -> None:
        """Apply a transaction's net effect (called by Transaction.commit)."""
        for name, delta in deltas.items():
            relation = self._relations[name]
            for values in delta.deleted:
                relation.discard(Row(relation.schema, values))
            for values in delta.inserted:
                relation.add(Row(relation.schema, values))
        self.indexes.apply_deltas(deltas)
        if deltas:
            self.log.append(txn.txn_id, deltas)
        for hook in self._commit_hooks:
            hook(txn.txn_id, deltas)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def clone_data(self) -> "Database":
        """A structural copy of schemas and contents (no hooks, no log).

        Used by consistency checks and tests that need an isolated
        replica to replay or recompute against.
        """
        other = Database()
        for name, relation in self._relations.items():
            other._relations[name] = relation.copy()
        return other

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({len(rel)})" for name, rel in sorted(self._relations.items())
        )
        return f"<Database {parts or 'empty'}>"
