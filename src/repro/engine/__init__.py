"""Storage and transaction engine.

Everything the paper assumes of its host database system, built from
scratch: named base relations, transactions with the net-effect
semantics of Section 3 (``τ(r) = r ∪ i_r − d_r`` with ``r``, ``i_r``
and ``d_r`` mutually disjoint), an update log, hash indexes maintained
across commits, and the deferred-refresh (snapshot) machinery that the
paper's conclusions point to via [AL80].
"""

from repro.engine.database import Database
from repro.engine.transactions import Transaction
from repro.engine.log import UpdateLog, LogRecord
from repro.engine.indexes import HashIndex, IndexManager
from repro.engine.snapshots import SnapshotQueue

__all__ = [
    "Database",
    "Transaction",
    "UpdateLog",
    "LogRecord",
    "HashIndex",
    "IndexManager",
    "SnapshotQueue",
]
