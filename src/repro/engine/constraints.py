"""Declared per-relation constraints.

A *relation constraint* asserts that every tuple of one base relation
satisfies a paper-class condition over that relation's own attributes —
the single-relation special case of the integrity assertions of
Hammer & Sarin [HS78] (see :mod:`repro.extensions.assertions` for the
general, view-shaped form).  Constraints serve two masters:

* **Enforcement** — the commit pipeline rejects transactions whose
  inserted tuples violate a declared constraint, before any state
  changes (:class:`~repro.errors.ConstraintViolationError`), and
  declaration itself fails if existing rows already violate it.  Every
  stored row therefore satisfies every declared constraint at all
  times.
* **Static analysis** — the analyzer (:mod:`repro.analysis`) and the
  compiled maintenance plans (:mod:`repro.core.compiled`) use the
  declared condition ``K_R`` as a premise in Theorem 4.1 proofs: when
  ``C ∧ K_R`` is unsatisfiable for every occurrence of ``R`` in a view,
  *no legal update to R can ever be relevant*, and the plan drops R's
  per-tuple screening entirely.

Declaring or dropping a constraint fires the database's DDL hook bus
(events ``"declare_constraint"`` / ``"drop_constraint"``), so cached
plans whose static-irrelevance proofs depended on the constraint are
invalidated exactly like plans staled by an index drop.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.algebra.conditions import Condition
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema
from repro.errors import ConstraintError

#: Fired as ``notify(event, relation_name)`` with event one of
#: ``"declare_constraint"`` / ``"drop_constraint"`` — the same shape as
#: the database's other DDL events.
NotifyFn = Callable[[str, str], None]


class ConstraintCatalog:
    """The declared per-relation constraints of one database.

    The catalog stores one :class:`~repro.algebra.conditions.Condition`
    per relation name; conjoin conditions before declaring to express
    several invariants on one relation.  Validation against schemas and
    contents is the owning database's job (it knows both); the catalog
    only keeps the mapping and fires change notifications.
    """

    __slots__ = ("_conditions", "_notify")

    def __init__(self, notify: NotifyFn | None = None) -> None:
        self._conditions: dict[str, Condition] = {}
        self._notify = notify

    def declare(self, relation_name: str, condition: Condition) -> None:
        """Record ``condition`` as the constraint on ``relation_name``.

        Re-declaring replaces the previous condition (a change
        notification fires either way).
        """
        self._conditions[relation_name] = condition
        if self._notify is not None:
            self._notify("declare_constraint", relation_name)

    def drop(self, relation_name: str) -> bool:
        """Forget a constraint; returns True when one existed."""
        if relation_name not in self._conditions:
            return False
        del self._conditions[relation_name]
        if self._notify is not None:
            self._notify("drop_constraint", relation_name)
        return True

    def discard(self, relation_name: str) -> None:
        """Drop without notifying — for relation drops, which already
        fire their own DDL event covering the same dependents."""
        self._conditions.pop(relation_name, None)

    def get(self, relation_name: str) -> Condition | None:
        """The declared condition for ``relation_name``, or ``None``."""
        return self._conditions.get(relation_name)

    def names(self) -> tuple[str, ...]:
        """All constrained relation names, sorted."""
        return tuple(sorted(self._conditions))

    def items(self) -> Iterator[tuple[str, Condition]]:
        """(name, condition) pairs in sorted name order."""
        for name in self.names():
            yield name, self._conditions[name]

    def __len__(self) -> int:
        return len(self._conditions)

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._conditions

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}: {cond}" for name, cond in self.items()
        )
        return f"<ConstraintCatalog {inner or 'empty'}>"


def validate_constraint_condition(
    relation_name: str, condition: Condition, schema: RelationSchema
) -> None:
    """Reject conditions mentioning attributes outside the relation."""
    stray = condition.variables() - schema.nameset
    if stray:
        raise ConstraintError(
            f"constraint on {relation_name!r} references attributes "
            f"{sorted(stray)} outside its schema {list(schema.names)}"
        )


def find_violations(
    relation_name: str,
    condition: Condition,
    schema: RelationSchema,
    rows: Relation | Mapping[tuple[int, ...], int],
) -> list[tuple[int, ...]]:
    """Rows of ``rows`` that do not satisfy ``condition`` (sorted).

    ``rows`` is a relation (declaration-time check over existing
    contents) or a delta's inserted-counts mapping (commit-time check).
    """
    names = schema.names
    violations = []
    values_iter = (
        rows.value_tuples() if isinstance(rows, Relation) else rows
    )
    for values in values_iter:
        assignment = dict(zip(names, values))
        if not condition.evaluate(assignment):
            violations.append(values)
    return sorted(violations)
