"""Saving and loading databases as JSON documents.

The paper's system is in-memory by assumption, but a reproduction a
downstream user can adopt needs its states to be portable: benchmark
inputs, failing cases from property tests and example databases all
want to round-trip through files.  The format is a single JSON document
holding every relation's schema (attribute names and domains) and its
tuple counts; views are not persisted — they are derived state and are
re-materialized from their definitions after a load.

Domains serialize by kind: the unbounded integer domain, finite integer
intervals, and enumerated string domains (labels stored verbatim).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.algebra.domains import (
    Domain,
    FiniteDomain,
    IntegerDomain,
    StringDomain,
)
from repro.algebra.schema import Attribute, RelationSchema
from repro.engine.database import Database
from repro.errors import ReproError

#: Bumped on any incompatible format change.
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A document could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Domain codecs
# ----------------------------------------------------------------------

def _encode_domain(domain: Domain) -> dict[str, Any]:
    if isinstance(domain, IntegerDomain):
        return {"kind": "integer"}
    if isinstance(domain, FiniteDomain):
        return {"kind": "finite", "lo": domain.lo, "hi": domain.hi}
    if isinstance(domain, StringDomain):
        return {"kind": "string", "labels": list(domain.labels)}
    raise PersistenceError(f"cannot serialize domain {domain!r}")


def _decode_domain(doc: dict[str, Any]) -> Domain:
    kind = doc.get("kind")
    if kind == "integer":
        return IntegerDomain()
    if kind == "finite":
        return FiniteDomain(doc["lo"], doc["hi"])
    if kind == "string":
        return StringDomain(doc["labels"])
    raise PersistenceError(f"unknown domain kind {kind!r}")


# ----------------------------------------------------------------------
# Database codecs
# ----------------------------------------------------------------------

def database_to_document(database: Database) -> dict[str, Any]:
    """Encode a database's schemas and contents as a JSON-able dict."""
    relations = {}
    for name in database.relation_names():
        relation = database.relation(name)
        # JSON has no tuple keys: store rows and counts as two aligned
        # lists, sorted for deterministic output.  Rows are stored in
        # *decoded* form (labels, not codes) so documents stay readable
        # and survive domain re-encoding on load.
        items = sorted(relation.items())
        relations[name] = {
            "attributes": [
                {"name": attr.name, "domain": _encode_domain(attr.domain)}
                for attr in relation.schema.attributes
            ],
            "rows": [
                list(relation.schema.decode_values(values))
                for values, _ in items
            ],
            "counts": [count for _, count in items],
        }
    return {"format": FORMAT_VERSION, "relations": relations}


def database_from_document(doc: dict[str, Any]) -> Database:
    """Decode a document produced by :func:`database_to_document`."""
    if doc.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {doc.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    database = Database()
    relations = doc.get("relations")
    if not isinstance(relations, dict):
        raise PersistenceError("document has no 'relations' mapping")
    for name, rel_doc in relations.items():
        try:
            attributes = [
                Attribute(a["name"], _decode_domain(a["domain"]))
                for a in rel_doc["attributes"]
            ]
            rows = rel_doc["rows"]
            counts = rel_doc["counts"]
        except (KeyError, TypeError) as exc:
            raise PersistenceError(
                f"relation {name!r} is malformed: {exc}"
            ) from exc
        if len(rows) != len(counts):
            raise PersistenceError(
                f"relation {name!r}: {len(rows)} rows but {len(counts)} counts"
            )
        schema = RelationSchema(attributes)
        relation = database.create_relation(name, schema)
        for values, count in zip(rows, counts):
            if count != 1:
                raise PersistenceError(
                    f"relation {name!r}: base relations are sets; "
                    f"count {count} for {values}"
                )
            relation.add(tuple(values))
    return database


def save_database(database: Database, stream: IO[str]) -> None:
    """Write a database to an open text stream as JSON."""
    json.dump(database_to_document(database), stream, indent=1, sort_keys=True)


def load_database(stream: IO[str]) -> Database:
    """Read a database from an open text stream."""
    try:
        doc = json.load(stream)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from exc
    return database_from_document(doc)


def save_database_file(database: Database, path: str) -> None:
    """Write a database to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        save_database(database, stream)


def load_database_file(path: str) -> Database:
    """Read a database from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_database(stream)
