"""Saving and loading databases as JSON documents.

The paper's system is in-memory by assumption, but a reproduction a
downstream user can adopt needs its states to be portable: benchmark
inputs, failing cases from property tests and example databases all
want to round-trip through files.  The format is a single JSON document
holding every relation's schema (attribute names and domains) and its
tuple counts; views are not persisted — they are derived state and are
re-materialized from their definitions after a load.

Domains serialize by kind: the unbounded integer domain, finite integer
intervals, and enumerated string domains (labels stored verbatim).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.algebra.domains import (
    Domain,
    FiniteDomain,
    IntegerDomain,
    StringDomain,
)
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import Attribute, RelationSchema
from repro.engine.database import Database
from repro.errors import ReproError

#: Bumped on any incompatible format change.
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A document could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Domain codecs
# ----------------------------------------------------------------------

def _encode_domain(domain: Domain) -> dict[str, Any]:
    if isinstance(domain, IntegerDomain):
        return {"kind": "integer"}
    if isinstance(domain, FiniteDomain):
        return {"kind": "finite", "lo": domain.lo, "hi": domain.hi}
    if isinstance(domain, StringDomain):
        return {"kind": "string", "labels": list(domain.labels)}
    raise PersistenceError(f"cannot serialize domain {domain!r}")


def _decode_domain(doc: dict[str, Any]) -> Domain:
    kind = doc.get("kind")
    if kind == "integer":
        return IntegerDomain()
    if kind == "finite":
        return FiniteDomain(doc["lo"], doc["hi"])
    if kind == "string":
        return StringDomain(doc["labels"])
    raise PersistenceError(f"unknown domain kind {kind!r}")


# ----------------------------------------------------------------------
# Relation codecs (shared by database documents and WAL checkpoints)
# ----------------------------------------------------------------------

def relation_to_document(relation: Relation) -> dict[str, Any]:
    """Encode one counted relation (schema, rows, multiplicities).

    JSON has no tuple keys: rows and counts are stored as two aligned
    lists, sorted for deterministic output.  Rows are stored in
    *decoded* form (labels, not codes) so documents stay readable and
    survive domain re-encoding on load.
    """
    items = sorted(relation.items())
    return {
        "attributes": [
            {"name": attr.name, "domain": _encode_domain(attr.domain)}
            for attr in relation.schema.attributes
        ],
        "rows": [
            list(relation.schema.decode_values(values)) for values, _ in items
        ],
        "counts": [count for _, count in items],
    }


def relation_from_document(
    doc: dict[str, Any], name: str = "?", allow_counts: bool = False
) -> Relation:
    """Decode a document produced by :func:`relation_to_document`.

    ``allow_counts`` permits multiplicities greater than one — required
    for materialized-view contents (checkpoints persist their §5.2
    counters), forbidden for base relations (which are sets).
    """
    try:
        attributes = [
            Attribute(a["name"], _decode_domain(a["domain"]))
            for a in doc["attributes"]
        ]
        rows = doc["rows"]
        counts = doc["counts"]
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"relation {name!r} is malformed: {exc}") from exc
    if len(rows) != len(counts):
        raise PersistenceError(
            f"relation {name!r}: {len(rows)} rows but {len(counts)} counts"
        )
    schema = RelationSchema(attributes)
    relation = Relation(schema)
    for values, count in zip(rows, counts):
        if count != 1 and not allow_counts:
            raise PersistenceError(
                f"relation {name!r}: base relations are sets; "
                f"count {count} for {values}"
            )
        if count < 1:
            raise PersistenceError(
                f"relation {name!r}: count {count} for {values} "
                "must be positive"
            )
        if tuple(values) in relation:
            raise PersistenceError(
                f"relation {name!r}: duplicate row {values}"
            )
        relation.add(tuple(values), count)
    return relation


# ----------------------------------------------------------------------
# Database codecs
# ----------------------------------------------------------------------

def database_to_document(database: Database) -> dict[str, Any]:
    """Encode a database's schemas and contents as a JSON-able dict."""
    relations = {
        name: relation_to_document(database.relation(name))
        for name in database.relation_names()
    }
    return {"format": FORMAT_VERSION, "relations": relations}


def database_from_document(doc: dict[str, Any]) -> Database:
    """Decode a document produced by :func:`database_to_document`."""
    if doc.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {doc.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    database = Database()
    relations = doc.get("relations")
    if not isinstance(relations, dict):
        raise PersistenceError("document has no 'relations' mapping")
    for name, rel_doc in relations.items():
        decoded = relation_from_document(rel_doc, name)
        relation = database.create_relation(name, decoded.schema)
        for row in decoded.rows():
            relation.add(row)
    return database


# ----------------------------------------------------------------------
# Delta codecs (the unit the write-ahead log ships)
# ----------------------------------------------------------------------

def delta_to_document(delta: Delta) -> dict[str, Any]:
    """Encode one net-effect delta as decoded insert/delete row lists.

    Rows appear once per multiplicity (base-relation deltas always carry
    count 1) and are sorted for deterministic output, so identical
    deltas always serialize to identical bytes — the property WAL
    checksums and replay determinism rest on.
    """
    def expand(counts: dict) -> list[list[Any]]:
        rows = []
        for values, count in sorted(counts.items()):
            decoded = list(delta.schema.decode_values(values))
            rows.extend([decoded] * count)
        return rows

    return {"inserted": expand(delta.inserted), "deleted": expand(delta.deleted)}


def delta_from_document(schema: RelationSchema, doc: dict[str, Any]) -> Delta:
    """Decode a document produced by :func:`delta_to_document`."""
    try:
        inserted = [tuple(row) for row in doc["inserted"]]
        deleted = [tuple(row) for row in doc["deleted"]]
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"delta document is malformed: {exc}") from exc
    return Delta(schema, inserted, deleted)


def deltas_to_document(deltas: "dict[str, Delta]") -> dict[str, Any]:
    """Encode a commit's per-relation deltas (empty ones are dropped)."""
    return {
        name: delta_to_document(delta)
        for name, delta in sorted(deltas.items())
        if not delta.is_empty()
    }


def deltas_from_document(
    schemas: "dict[str, RelationSchema]", doc: dict[str, Any]
) -> dict[str, Delta]:
    """Decode per-relation deltas against a schema catalog."""
    deltas = {}
    for name, delta_doc in doc.items():
        schema = schemas.get(name)
        if schema is None:
            raise PersistenceError(
                f"delta references unknown relation {name!r}"
            )
        deltas[name] = delta_from_document(schema, delta_doc)
    return deltas


def save_database(database: Database, stream: IO[str]) -> None:
    """Write a database to an open text stream as JSON."""
    json.dump(database_to_document(database), stream, indent=1, sort_keys=True)


def load_database(stream: IO[str]) -> Database:
    """Read a database from an open text stream."""
    try:
        doc = json.load(stream)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON: {exc}") from exc
    return database_from_document(doc)


def save_database_file(database: Database, path: str) -> None:
    """Write a database to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        save_database(database, stream)


def load_database_file(path: str) -> Database:
    """Read a database from ``path``."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_database(stream)
