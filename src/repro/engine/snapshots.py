"""Deferred maintenance: snapshots.

The paper's conclusions observe that views need not be refreshed on
every transaction: "it is also possible to envision a mechanism in
which materialized views are updated periodically or only on demand.
Such materialized views are known as *snapshots* [AL80] and their
maintenance mechanism as *snapshot refresh*.  The approach proposed in
this paper also applies to this environment."

:class:`SnapshotQueue` implements that environment.  It subscribes to a
database's commit stream and, per relation, *composes* the net-effect
deltas of successive transactions (cancelling insert/delete pairs
across transactions, the natural lifting of the paper's
within-transaction net-effect rule).  When :meth:`drain` is called —
periodically or on demand — the composed deltas are handed to the
caller (typically a deferred view maintainer) exactly as if one big
transaction had produced them, so the same differential algorithm
applies unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.algebra.relation import Delta

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


class SnapshotQueue:
    """Accumulates composed per-relation deltas between refreshes."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._pending: dict[str, Delta] = {}
        self._transactions_seen = 0
        database.add_commit_hook(self._on_commit)

    # ------------------------------------------------------------------
    # Commit-side
    # ------------------------------------------------------------------
    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        if deltas:
            self._transactions_seen += 1
        for name, delta in deltas.items():
            pending = self._pending.get(name)
            composed = delta if pending is None else pending.compose(delta)
            if composed.is_empty():
                self._pending.pop(name, None)
            else:
                self._pending[name] = composed

    # ------------------------------------------------------------------
    # Refresh-side
    # ------------------------------------------------------------------
    def pending_deltas(self) -> dict[str, Delta]:
        """The composed deltas accumulated so far (read-only view)."""
        return dict(self._pending)

    def pending_transaction_count(self) -> int:
        """How many effective transactions are awaiting a refresh."""
        return self._transactions_seen

    def has_pending(self) -> bool:
        """True when at least one relation has a non-empty pending delta."""
        return bool(self._pending)

    def drain(self) -> dict[str, Delta]:
        """Hand over and clear the composed deltas (one refresh unit).

        The returned mapping behaves like the net effect of a single
        large transaction covering everything since the last drain.
        """
        deltas = self._pending
        self._pending = {}
        self._transactions_seen = 0
        return deltas

    def detach(self) -> None:
        """Stop observing commits (for teardown in tests)."""
        self._database.remove_commit_hook(self._on_commit)

    def __repr__(self) -> str:
        return (
            f"<SnapshotQueue {len(self._pending)} relations pending, "
            f"{self._transactions_seen} txns>"
        )
