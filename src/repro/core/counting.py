"""Multiplicity counters for project views (Section 5.2).

Projection introduces the first difficulty for differential updating:
it does not distribute over difference
(``π_X(r₁ − r₂) ≠ π_X(r₁) − π_X(r₂)`` in set semantics), so deleting a
base tuple does not say whether its projection should leave the view —
another base tuple may still support it (the paper's Example 5.1).

The paper's chosen fix (alternative 1) attaches a multiplicity counter
to every view tuple: insertions increment, deletions decrement, and a
tuple leaves the view when its counter reaches zero.  With the project
and join operators redefined to sum and multiply counters
(:mod:`repro.algebra.evaluate`), distributivity over difference is
restored and differential maintenance is exact.

:class:`~repro.algebra.relation.Relation` already carries the counter;
this module supplies the §5.2-specific operations: the direct
maintenance rule for a pure project view, and the distributivity check
the paper's argument rests on (used by the property tests).
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.relation import Delta, Relation
from repro.algebra.tuples import Row
from repro.errors import MaintenanceError
from repro.instrumentation import charge


def project_delta(delta: Delta, attributes: Sequence[str]) -> tuple[
    dict[tuple[int, ...], int], dict[tuple[int, ...], int]
]:
    """Project a base delta onto view attributes, with counts.

    Returns ``(insert_counts, delete_counts)`` keyed by projected
    tuples.  Several base inserts (or deletes) may land on the same
    projected tuple — exactly the situation the counter exists for.
    """
    positions = delta.schema.positions(attributes)
    insert_counts: dict[tuple[int, ...], int] = {}
    delete_counts: dict[tuple[int, ...], int] = {}
    for values, count in delta.inserted.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in positions)
        insert_counts[key] = insert_counts.get(key, 0) + count
    for values, count in delta.deleted.items():
        charge("tuples_scanned")
        key = tuple(values[i] for i in positions)
        delete_counts[key] = delete_counts.get(key, 0) + count
    return insert_counts, delete_counts


def net_counts(
    insert_counts: dict[tuple[int, ...], int],
    delete_counts: dict[tuple[int, ...], int],
) -> tuple[dict[tuple[int, ...], int], dict[tuple[int, ...], int]]:
    """Cancel opposing counts on the same tuple, in place.

    The §5.2 counter arithmetic shared by every maintenance backend:
    insert and delete counts landing on the same view tuple net out
    (``+2/−1`` becomes ``+1``), leaving the disjoint sides a
    :class:`~repro.algebra.relation.Delta` requires.  Both dicts are
    mutated and returned for convenience.
    """
    for key in list(insert_counts.keys() & delete_counts.keys()):
        cancel = min(insert_counts[key], delete_counts[key])
        insert_counts[key] -= cancel
        delete_counts[key] -= cancel
        if not insert_counts[key]:
            del insert_counts[key]
        if not delete_counts[key]:
            del delete_counts[key]
    return insert_counts, delete_counts


def maintain_project_view(
    view: Relation, delta: Delta, attributes: Sequence[str]
) -> None:
    """Differentially update a pure project view ``V = π_X(R)`` in place.

    Increments counters for projected inserts, decrements for projected
    deletes, and removes tuples whose counter reaches zero — the §5.2
    algorithm verbatim.  The view relation's schema must match the
    projected attributes.
    """
    if view.schema.names != tuple(attributes):
        raise MaintenanceError(
            f"view schema {view.schema.names} does not match projection "
            f"{tuple(attributes)}"
        )
    insert_counts, delete_counts = project_delta(delta, attributes)
    for values, count in delete_counts.items():
        view.discard(Row(view.schema, values), count)
    for values, count in insert_counts.items():
        view.add(Row(view.schema, values), count)


def counted_projection_distributes(
    r1: Relation, r2: Relation, attributes: Sequence[str]
) -> bool:
    """Check ``π_X(r₁ − r₂) = π_X(r₁) − π_X(r₂)`` under counted semantics.

    ``r₂`` must be a counted sub-multiset of ``r₁`` for the left side to
    be defined.  The paper claims the redefined projection makes the
    identity hold; the property tests drive this over random relations.
    """
    from repro.algebra.evaluate import project_relation

    left = project_relation(r1.difference(r2), attributes)
    right = project_relation(r1, attributes).difference(
        project_relation(r2, attributes)
    )
    return left == right
