"""Differential re-evaluation of SPJ views (Section 5, Algorithm 5.1).

Given a view in the paper's normal form and the (filtered) net deltas a
transaction produced, :func:`compute_view_delta` returns the net change
to apply to the materialized view:

1. Build the truth-table rows for the changed operands
   (:mod:`repro.core.truthtable`) — 2^k − 1 rows, all-old excluded.
2. Evaluate each row's SPJ expression over tagged operands
   (:mod:`repro.core.planner`), where a DELTA operand carries the
   transaction's inserts/deletes tagged ``insert``/``delete`` and an
   OLD operand carries the tuples present **both before and after**
   the transaction tagged ``old`` (``r − d_r``, equivalently the
   post-state minus the inserts — see :mod:`repro.algebra.tags` for why
   this reading makes the paper's tag table exact).
3. Merge the projected, tagged results of all rows and collapse them to
   a net :class:`~repro.algebra.relation.Delta` on the view
   (Algorithm 5.1 step 3: "the transaction consists of inserting all
   tuples tagged as insert, and deleting all tuples tagged as delete").

The special cases of Sections 5.1 (select views), 5.2 (project views)
and 5.3 (join views) all fall out of the same code path with p = 1 or
an empty projection/condition; dedicated convenience wrappers are
provided for readers following the paper section by section.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.expressions import NormalForm
from repro.algebra.relation import Delta, Relation, TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.core.planner import IndexProbe, RowPlanner
from repro.core.truthtable import DeltaRowChoice, enumerate_delta_rows
from repro.errors import MaintenanceError
from repro.instrumentation import charge

ValueTuple = tuple[int, ...]


def _old_operand(
    post_state: Relation,
    delta: Delta | None,
    qualified_schema: RelationSchema,
) -> TaggedRelation:
    """The OLD operand: tuples present both before and after the commit.

    ``post_state`` is the relation *after* the transaction applied;
    subtracting the inserted counts recovers ``r − d_r``.  The count
    arithmetic matters for *counted* operands (a view used as the base
    of another view): an insertion may merely raise an existing tuple's
    counter, in which case the pre-existing copies are still OLD.
    """
    out = TaggedRelation(qualified_schema)
    inserted = delta.inserted if delta is not None else {}
    for values, count in post_state.items():
        remaining = count - inserted.get(values, 0)
        if remaining > 0:
            out.add(values, Tag.OLD, remaining)
    return out


class LazyOperandEntry:
    """Per-occurrence operand mapping, built on first access.

    Materializing an OLD operand scans the whole base relation; when
    the planner answers its probes from a persistent index — or when a
    truth-table row never consults the operand at all (the OLD choice
    of a changed relation with k = 1, say) — that scan is pure waste.
    Construction is therefore deferred until the planner actually asks.
    """

    __slots__ = ("_post", "_delta", "_schema", "_changed", "_cache")

    def __init__(
        self,
        post_state: Relation,
        delta: Delta | None,
        qualified_schema: RelationSchema,
        changed: bool,
    ) -> None:
        self._post = post_state
        self._delta = delta
        self._schema = qualified_schema
        self._changed = changed
        self._cache: dict[DeltaRowChoice, TaggedRelation] = {}

    def __getitem__(self, choice: DeltaRowChoice) -> TaggedRelation:
        cached = self._cache.get(choice)
        if cached is not None:
            return cached
        if choice is DeltaRowChoice.OLD:
            built = _old_operand(self._post, self._delta, self._schema)
        elif self._changed and self._delta is not None:
            built = _delta_operand(self._delta, self._schema)
        else:
            raise MaintenanceError(
                "DELTA operand requested for an unchanged relation"
            )
        self._cache[choice] = built
        return built


def _delta_operand(
    delta: Delta, qualified_schema: RelationSchema
) -> TaggedRelation:
    """The DELTA operand: net inserts and deletes, tagged."""
    out = TaggedRelation(qualified_schema)
    for values, tag, count in delta.tagged_items():
        out.add(values, tag, count)
    return out


def changed_positions_for(
    normal_form: NormalForm, deltas: Mapping[str, Delta]
) -> tuple[int, ...]:
    """Occurrence positions carrying a non-empty delta, in order.

    The truth-table shape (and therefore which cached
    :class:`~repro.core.planner.RowPlanner` applies) is a function of
    exactly this tuple — it is the key the compiled-plan cache uses to
    reuse planners across transactions touching the same relations.
    """
    return tuple(
        i
        for i, occ in enumerate(normal_form.occurrences)
        if occ.name in deltas and not deltas[occ.name].is_empty()
    )


def build_operands(
    normal_form: NormalForm,
    post_instances: Mapping[str, Relation],
    deltas: Mapping[str, Delta],
    changed_positions: Sequence[int],
) -> list[LazyOperandEntry]:
    """Per-occurrence lazy operand mappings for one plan execution.

    The per-transaction half of differential evaluation: operands wrap
    *this* transaction's post-state and deltas, while the planner that
    will consume them is a per-view artifact reusable across
    transactions.
    """
    changed = set(changed_positions)
    qualified = normal_form.qualified_schema
    operands: list[LazyOperandEntry] = []
    for i, occ in enumerate(normal_form.occurrences):
        try:
            post = post_instances[occ.name]
        except KeyError:
            raise MaintenanceError(
                f"post-state for relation {occ.name!r} was not supplied"
            ) from None
        occ_schema = qualified.project_schema(occ.qualified_names())
        delta = deltas.get(occ.name)
        operands.append(LazyOperandEntry(post, delta, occ_schema, i in changed))
    return operands


def execute_planner(
    planner: RowPlanner,
    post_instances: Mapping[str, Relation],
    deltas: Mapping[str, Delta],
    changed_positions: Sequence[int],
    index_probe: IndexProbe | None = None,
) -> Delta:
    """Run one (possibly cached) planner over one transaction's deltas.

    The plan-execution half of :func:`compute_view_delta`:
    ``planner`` supplies the join order, step plans and filters (plan
    construction), while the operands, truth-table rows and index-probe
    closure are built fresh from this transaction's state.
    """
    normal_form = planner.normal_form
    charge("differential_updates")
    operands = build_operands(
        normal_form, post_instances, deltas, changed_positions
    )
    rows = enumerate_delta_rows(len(normal_form.occurrences), changed_positions)
    merged = planner.evaluate_rows(rows, operands, index_probe=index_probe)
    return merged.to_delta()


def compute_view_delta(
    normal_form: NormalForm,
    post_instances: Mapping[str, Relation],
    deltas: Mapping[str, Delta],
    share_subexpressions: bool = True,
    index_probe: IndexProbe | None = None,
) -> Delta:
    """The net change to a materialized view caused by one transaction.

    Parameters
    ----------
    normal_form:
        The view definition in paper normal form.
    post_instances:
        Base-relation contents *after* the transaction committed
        (keyed by relation name) — what the maintainer sees when it is
        invoked as the last operation within the transaction.
    deltas:
        The transaction's net effect per relation (possibly already
        screened by the Section 4 relevance filter).  Relations absent
        from the mapping — or mapped to empty deltas — are unchanged.
    share_subexpressions:
        Passed through to the planner (E13 ablation switch).
    index_probe:
        Optional hook answering OLD-operand probes from an index.

    Returns
    -------
    Delta
        Over the view's output schema; apply with ``delta.apply_to(view)``.
    """
    changed_positions = changed_positions_for(normal_form, deltas)
    if not changed_positions:
        return Delta(normal_form.output_schema())

    planner = RowPlanner(
        normal_form,
        changed_positions,
        share_subexpressions=share_subexpressions,
    )
    return execute_planner(
        planner, post_instances, deltas, changed_positions, index_probe=index_probe
    )


# ----------------------------------------------------------------------
# Section-by-section convenience wrappers
# ----------------------------------------------------------------------

def select_view_delta(condition: Condition, delta: Delta) -> Delta:
    """Section 5.1: ``v' = v ∪ σ_C(i_r) − σ_C(d_r)`` for ``V = σ_C(R)``.

    Needs no base-relation state at all — the hallmark of select views.
    """
    from repro.algebra.evaluate import compile_condition

    predicate = compile_condition(condition, delta.schema)
    inserted = {
        values: count
        for values, count in delta.inserted.items()
        if predicate(values)
    }
    deleted = {
        values: count
        for values, count in delta.deleted.items()
        if predicate(values)
    }
    return Delta.from_counts(delta.schema, inserted, deleted)


def project_view_delta(attributes: Sequence[str], delta: Delta) -> Delta:
    """Section 5.2: the counted delta of ``V = π_X(R)``.

    Insert and delete counts landing on the same projected tuple are
    *not* cancelled here: both sides must reach the view's counters
    (e.g. +2/−1 on the same tuple nets to +1 on its counter).  The
    Delta type requires disjoint sides, so cancellation to the net
    effect happens before returning — the caller applies count
    arithmetic, matching Algorithm 5.1's final step.
    """
    from repro.core.counting import net_counts

    insert_counts: dict[ValueTuple, int] = {}
    delete_counts: dict[ValueTuple, int] = {}
    positions = delta.schema.positions(attributes)
    for values, count in delta.inserted.items():
        key = tuple(values[i] for i in positions)
        insert_counts[key] = insert_counts.get(key, 0) + count
    for values, count in delta.deleted.items():
        key = tuple(values[i] for i in positions)
        delete_counts[key] = delete_counts.get(key, 0) + count
    net_counts(insert_counts, delete_counts)
    return Delta.from_counts(
        delta.schema.project_schema(attributes), insert_counts, delete_counts
    )
