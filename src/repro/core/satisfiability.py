"""Satisfiability of selection conditions (Section 4).

Deciding satisfiability of arbitrary Boolean expressions is
NP-complete, but the paper's condition class — conjunctions of atoms
``x op y``, ``x op c``, ``x op y + c`` over discrete domains with
``op ∈ {=, <, >, ≤, ≥}`` — is decidable in O(n³) per conjunction by
Rosenkrantz and Hunt's reduction [RH80]:

1. normalize every atom to ``≤``/``≥`` form (:mod:`repro.core.normalize`);
2. build a directed weighted constraint graph (:mod:`repro.core.graph`);
3. the conjunction is unsatisfiable iff the graph has a negative cycle.

Disjunctions ``C = C₁ ∨ … ∨ C_m`` are satisfiable iff some ``C_i`` is,
giving O(m·n³) total — exactly the paper's bound.

Besides the decision procedure this module exposes *solvers*
(:func:`solve_conjunction`, :func:`solve_condition`) that return a
witness assignment when one exists; the witness machinery is what the
Theorem 4.1 completeness construction and the property-based tests are
built on.
"""

from __future__ import annotations

from repro.algebra.conditions import Condition, Conjunction
from repro.core.graph import ConstraintGraph
from repro.core.normalize import normalize_conjunction
from repro.instrumentation import charge


def is_satisfiable_conjunction(
    conjunction: Conjunction, method: str = "bellman"
) -> bool:
    """Decide satisfiability of one conjunction over the integers.

    ``method`` selects the negative-cycle algorithm: ``"floyd"`` (the
    paper's prescription) or ``"bellman"`` (default).

    >>> from repro.algebra.conditions import parse_condition
    >>> c = parse_condition("9 < 10 and C > 5 and 10 = C")
    >>> is_satisfiable_conjunction(c.disjuncts[0])
    True
    >>> c = parse_condition("11 < 10 and C > 5 and 10 = C")
    >>> is_satisfiable_conjunction(c.disjuncts[0])
    False
    """
    charge("sat_checks")
    normalized = normalize_conjunction(conjunction)
    if normalized.trivially_false:
        return False
    if not normalized.atoms:
        return True
    graph = ConstraintGraph.from_atoms(normalized.atoms)
    return not graph.has_negative_cycle(method=method)


def is_satisfiable(condition: Condition, method: str = "bellman") -> bool:
    """Decide satisfiability of a DNF condition (O(m·n³)).

    A disjunction is satisfiable iff at least one disjunct is; it is
    unsatisfiable iff every disjunct is — the paper's Section 4 rule.
    """
    return any(
        is_satisfiable_conjunction(d, method=method) for d in condition.disjuncts
    )


def solve_conjunction(conjunction: Conjunction) -> dict[str, int] | None:
    """A satisfying integer assignment for a conjunction, or ``None``.

    The assignment covers every variable the conjunction mentions.
    Used by the witness construction of Theorem 4.1's "only if"
    direction and as the test suite's constructive oracle.

    >>> from repro.algebra.conditions import parse_condition
    >>> sol = solve_conjunction(parse_condition("x <= y - 1 and y <= 4").disjuncts[0])
    >>> sol is not None and sol["x"] < sol["y"] <= 4
    True
    """
    normalized = normalize_conjunction(conjunction)
    if normalized.trivially_false:
        return None
    graph = ConstraintGraph.from_atoms(
        normalized.atoms, nodes=conjunction.variables()
    )
    solution = graph.solve()
    if solution is None:
        return None
    # Isolated variables (mentioned only in ground atoms that evaluated
    # true, or not constrained at all) default to 0 via graph nodes.
    for name in conjunction.variables():
        solution.setdefault(name, 0)
    assert conjunction.evaluate(solution), (
        f"internal error: solver produced non-solution {solution} "
        f"for {conjunction}"
    )
    return solution


def solve_condition(condition: Condition) -> dict[str, int] | None:
    """A satisfying assignment for a DNF condition, or ``None``.

    The assignment is taken from the first satisfiable disjunct and is
    extended with zeros for variables that disjunct does not mention,
    so it always covers ``condition.variables()``.
    """
    for disjunct in condition.disjuncts:
        solution = solve_conjunction(disjunct)
        if solution is not None:
            for name in condition.variables():
                solution.setdefault(name, 0)
            return solution
    return None


def brute_force_satisfiable(
    conjunction: Conjunction, lo: int, hi: int
) -> bool:
    """Exhaustive satisfiability over the finite box ``[lo, hi]^n``.

    A deliberately slow oracle used by the test suite to validate the
    graph-based decision procedure on small instances.  Note the subtle
    difference in scope: the graph test answers satisfiability over the
    *unbounded* integers, so the oracle comparison must pick ``lo``/
    ``hi`` wide enough to contain some solution when one exists (the
    tests derive safe bounds from the atom constants).
    """
    from itertools import product

    variables = sorted(conjunction.variables())
    if not variables:
        normalized = normalize_conjunction(conjunction)
        return not normalized.trivially_false
    for values in product(range(lo, hi + 1), repeat=len(variables)):
        if conjunction.evaluate(dict(zip(variables, values))):
            return True
    return False
