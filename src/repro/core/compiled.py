"""Compiled maintenance plans: one per view, built once, executed often.

Algorithm 4.1 is explicitly *amortized*: the invariant portion of the
screening condition is split out (Definition 4.2) so that its
constraint graph and all-pairs shortest paths are built once and reused
for every tuple in a batch.  This module extends the same amortization
from "once per batch" to "once per view registration":

* the Section 4 relevance screens (normalization, invariant/variant
  split, Floyd–Warshall APSP) are built per participating relation at
  compile time and reused by every subsequent transaction;
* the Section 5 row planners (delta-first join order, hash-join links,
  selection pushdown, projection positions) are built per truth-table
  shape — the tuple of changed occurrence positions — and cached;
* OLD-operand probes bind to persistent hash indexes once, and the
  bindings are kept until an index create/drop, relation drop or view
  re-registration invalidates the whole plan.

A :class:`CompiledViewPlan` is the unit the
:class:`~repro.core.plancache.PlanCache` stores and every maintenance
entry point — immediate commits, deferred ``refresh``, WAL-replay
recovery, changefeed followers, and the network view-server above them
— executes.  The plan is deliberately *stateless with respect to data*:
it holds no tuples, only derived control structure, so executing the
same plan against a replica produces byte-for-byte the leader's result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Optional

from repro.algebra.expressions import NormalForm
from repro.algebra.relation import Delta, Relation
from repro.algebra.tags import Tag
from repro.algebra.schema import RelationSchema
from repro.analysis.dependencies import (
    FkReduction,
    ViewKey,
    derive_view_key,
    fk_reduction,
)
from repro.core.codegen import (
    AggregateKernel,
    CODEGEN_VERSION,
    CodegenStats,
    DeltaBatch,
    MAX_CODEGEN_OPERANDS,
    MAX_CODEGEN_ROWS,
    ScreenKernel,
    ShapeKernels,
    codegen_rows,
    compile_kernel,
    compile_shape_kernels,
    generate_aggregate_source,
    generate_screen_source,
    generate_shape_source,
    plan_fingerprint,
)
from repro.core.counting import net_counts
from repro.core.differential import (
    build_operands,
    changed_positions_for,
    execute_planner,
)
from repro.core.irrelevance import (
    FilterStats,
    RelevanceFilter,
    is_statically_irrelevant,
)
from repro.core.planner import IndexProbe, ProbeFn, RowPlanner
from repro.core.truthtable import count_delta_rows
from repro.core.views import ViewDefinition
from repro.errors import MaintenanceError
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.aggregates import AggregateState
    from repro.engine.database import Database
    from repro.engine.indexes import HashIndex

ValueTuple = tuple[int, ...]


class CompiledViewPlan:
    """Everything derivable from a view definition ahead of any delta.

    Parameters
    ----------
    definition:
        The view's validated definition (carries the normal form).
    database:
        The database whose base relations and indexes the plan binds.
    catalog:
        Schema catalog at compile time (base relations *and* upstream
        views), used to build relevance screens per operand relation.
    view_operands:
        Names among the view's operands that are themselves registered
        views — they carry no persistent index, and their screens bind
        against view output schemas.
    share_subexpressions, use_indexes, use_codegen:
        The owning maintainer's evaluation switches, frozen into the
        plan.  With ``use_codegen`` the plan emits batch kernels from
        generated source (:mod:`repro.core.codegen`) at registration
        time and executes those; without it, the per-tuple interpreter
        runs — the ablation oracle the kernels are verified against.
    use_counter_free:
        Allow the generated apply kernels to pin the Section 5.2
        multiplicity counters to one when the chase over declared keys
        proves every view row has multiplicity ≤ 1 (E26's ablation
        switch; the fact itself is re-proved at compile time from the
        database's key catalog, and key DDL invalidates the plan).
    codegen_stats:
        Optional maintainer-owned :class:`~repro.core.codegen.CodegenStats`
        sink; cumulative codegen counters survive plan eviction there.
    """

    __slots__ = (
        "definition",
        "normal_form",
        "fingerprint",
        "share_subexpressions",
        "use_indexes",
        "use_codegen",
        "use_counter_free",
        "_database",
        "_view_operands",
        "_schemas",
        "_screens",
        "_static_irrelevant",
        "_planners",
        "_index_bindings",
        "_codegen_stats",
        "_screen_kernels",
        "_shape_kernels",
        "_aggregate_source",
        "_aggregate_kernel",
        "_reduction",
        "_view_key",
        "_exec_normal_form",
    )

    def __init__(
        self,
        definition: ViewDefinition,
        database: "Database",
        catalog: Mapping[str, RelationSchema],
        view_operands: Iterable[str] = (),
        share_subexpressions: bool = True,
        use_indexes: bool = True,
        use_codegen: bool = True,
        use_counter_free: bool = True,
        codegen_stats: CodegenStats | None = None,
    ) -> None:
        self.definition = definition
        self.normal_form: NormalForm = definition.normal_form
        #: Identity of the executable this plan is: the definition's
        #: structural fingerprint extended with the generated-source
        #: version (or an interpreter marker).  The cache refuses to
        #: serve a plan whose fingerprint no longer matches the
        #: registered view *and current execution mode*.
        self.fingerprint: tuple = plan_fingerprint(
            self.normal_form, use_codegen, definition.aggregate
        )
        self.share_subexpressions = share_subexpressions
        self.use_indexes = use_indexes
        self.use_codegen = use_codegen
        self.use_counter_free = use_counter_free
        self._codegen_stats = codegen_stats
        self._database = database
        self._view_operands = frozenset(view_operands)
        # Chase-derived facts (keys DDL invalidates the plan, so they
        # are re-proved on every compile, like static irrelevance).
        # Both are gated on set-semantics operands: view operands are
        # bags, for which the multiplicity-≤-1 argument fails.
        self._reduction: FkReduction | None = None
        self._view_key: ViewKey | None = None
        if definition.aggregate is None and not self._view_operands:
            self._reduction = fk_reduction(self.normal_form, database.keys)
            self._view_key = derive_view_key(self.normal_form, database.keys)
        #: The normal form execution actually runs: the FK-reduced
        #: single-occurrence form when the chase proved one, the
        #: definition's own otherwise.  Planners, kernels, operand
        #: construction and index bindings all speak this form.
        self._exec_normal_form: NormalForm = (
            self._reduction.normal_form
            if self._reduction is not None
            else self.normal_form
        )
        self._schemas: dict[str, RelationSchema] = {}
        # Compile the Section 4 screens eagerly — one per participating
        # relation; this is the Definition 4.2 invariant split plus its
        # APSP, the paper's built-once structure.
        self._screens: dict[str, RelevanceFilter] = {}
        for name in set(self.normal_form.relation_names):
            try:
                schema = catalog[name]
            except KeyError:
                raise MaintenanceError(
                    f"cannot compile plan for view {definition.name!r}: "
                    f"operand {name!r} is not in the catalog"
                ) from None
            self._schemas[name] = schema
            self._screens[name] = RelevanceFilter(self.normal_form, name, schema)
        # Static irrelevance (the analyzer's check (d), proved here so
        # the *plan itself* carries the optimization): a relation whose
        # declared constraint makes C ∧ K_R unsatisfiable for every
        # occurrence can never contribute a relevant legal update, so
        # its deltas are dropped with zero per-tuple screening.  The
        # proof is part of the compiled plan; declare/drop-constraint
        # DDL events invalidate the plan, re-running it on recompile.
        constraints = database.constraints
        self._static_irrelevant: frozenset[str] = frozenset(
            name
            for name in self._screens
            if name not in self._view_operands
            and (constraint := constraints.get(name)) is not None
            and is_statically_irrelevant(self.normal_form, name, constraint)
        )
        # Row planners are keyed by the changed-position tuple (the
        # truth-table shape) and built on first use: a view over p
        # relations has 2^p − 1 possible shapes but a workload usually
        # exercises a handful.
        self._planners: dict[tuple[int, ...], RowPlanner] = {}
        #: (position, link_attrs) → bound HashIndex, or None for
        #: view-typed operands (no persistent index exists).
        self._index_bindings: dict[
            tuple[int, tuple[str, ...]], "HashIndex | None"
        ] = {}
        # Generated batch kernels.  Screen kernels are compiled eagerly
        # — they bake the APSP distances and any static-irrelevance
        # proof into source, so they must be rebuilt whenever the plan
        # is (constraint DDL invalidates the plan, not just a flag).
        # Shape kernels compile on first use of each truth-table shape,
        # like the planners they mirror.
        self._screen_kernels: dict[str, tuple[str, ScreenKernel]] = {}
        self._shape_kernels: dict[tuple[int, ...], ShapeKernels | None] = {}
        # The aggregate fold kernel (when the view aggregates) compiles
        # eagerly with the screens: its shape depends only on the spec
        # and core schema, never on the incoming delta.
        self._aggregate_source: str | None = None
        self._aggregate_kernel: AggregateKernel | None = None
        if use_codegen:
            for name in sorted(self._screens):
                source = generate_screen_source(
                    name,
                    self._screens[name],
                    self._schemas[name],
                    statically_irrelevant=name in self._static_irrelevant,
                )
                kernel = compile_kernel(
                    source,
                    "screen_kernel",
                    f"<codegen:{definition.name}:screen:{name}>",
                )
                self._screen_kernels[name] = (source, kernel)
            if definition.aggregate is not None:
                source = generate_aggregate_source(
                    definition.aggregate, self.normal_form.output_schema()
                )
                self._aggregate_source = source
                self._aggregate_kernel = compile_kernel(
                    source,
                    "fold_kernel",
                    f"<codegen:{definition.name}:aggregate>",
                )
            charge("codegen_plans_compiled")
            if codegen_stats is not None:
                codegen_stats.plans_compiled += 1

    # ------------------------------------------------------------------
    # Section 4: screening
    # ------------------------------------------------------------------
    def screen(self, relation_name: str, delta: Delta) -> tuple[Delta, FilterStats]:
        """Screen one relation's delta through the compiled filter."""
        screen = self._screens.get(relation_name)
        if screen is None:
            # The relation does not participate in the view: everything
            # is irrelevant (Theorem 4.1's trivial case).
            stats = FilterStats()
            stats.checked = len(delta.inserted) + len(delta.deleted)
            stats.irrelevant = stats.checked
            return Delta(delta.schema), stats
        if relation_name in self._static_irrelevant:
            # Proven at compile time: no legal update to this relation
            # can affect the view, so the whole delta is discarded with
            # zero per-tuple screening work.
            stats = FilterStats()
            stats.checked = len(delta.inserted) + len(delta.deleted)
            stats.irrelevant = stats.checked
            stats.static_dropped = stats.checked
            charge("static_tuples_dropped", stats.checked)
            return Delta(delta.schema), stats
        if (
            self._reduction is not None
            and relation_name in self._reduction.probe_relations
        ):
            # The FK reduction proved probe-side updates can never
            # change the view (legal states keep the foreign key
            # satisfied, and the probe contributes only its referenced
            # key attributes, which the referencing side already
            # carries).  Dropped wholesale, like static irrelevance.
            stats = FilterStats()
            stats.checked = len(delta.inserted) + len(delta.deleted)
            stats.irrelevant = stats.checked
            stats.static_dropped = stats.checked
            charge("fk_probe_tuples_dropped", stats.checked)
            return Delta(delta.schema), stats
        if self.use_codegen:
            return self._screen_batch(relation_name, screen, delta)
        return screen.screen_delta(delta)

    def _screen_batch(
        self, relation_name: str, screen: RelevanceFilter, delta: Delta
    ) -> tuple[Delta, FilterStats]:
        """Run the generated screen kernel over one columnar batch.

        Functionally identical to
        :meth:`~repro.core.irrelevance.RelevanceFilter.screen_delta`,
        including every instrumentation counter — the kernel returns
        its per-tuple ground-eval and bound-probe tallies so they can
        be charged in bulk here.
        """
        kernel = self._screen_kernels[relation_name][1]
        batch = DeltaBatch.from_delta(delta)
        n = len(batch)
        mask = bytearray(n)
        ground_evals, bound_probes = kernel(batch.columns, n, mask)
        stats = FilterStats()
        stats.checked = n
        stats.relevant = sum(mask)
        stats.irrelevant = n - stats.relevant
        if n:
            charge("filter_tuples_checked", n)
            charge("codegen_batch_rows", n)
            if self._codegen_stats is not None:
                self._codegen_stats.batch_rows += n
        if ground_evals:
            charge("filter_ground_evals", ground_evals)
        if bound_probes:
            charge("filter_bound_probes", bound_probes)
        cumulative = screen.stats
        cumulative.checked += stats.checked
        cumulative.relevant += stats.relevant
        cumulative.irrelevant += stats.irrelevant
        return batch.to_delta(mask), stats

    @property
    def static_irrelevant(self) -> frozenset[str]:
        """Relations proven statically irrelevant under their constraints."""
        return self._static_irrelevant

    @property
    def view_operands(self) -> frozenset[str]:
        """Operand names that are themselves registered views (bags)."""
        return self._view_operands

    @property
    def execution_normal_form(self) -> NormalForm:
        """The normal form maintenance actually executes.

        The FK-reduced single-occurrence form when the chase over
        declared keys proved the probe lookups away; otherwise the
        definition's own normal form.
        """
        return self._exec_normal_form

    @property
    def reduction(self) -> FkReduction | None:
        """The chase's FK-join reduction, when one was proved."""
        return self._reduction

    @property
    def view_key(self) -> ViewKey | None:
        """The chase's derived view key, when one was proved."""
        return self._view_key

    @property
    def counter_free(self) -> bool:
        """Whether apply kernels pin the Section 5.2 counters to one.

        True only when the switch is on *and* the chase proved a view
        key (so every view row has multiplicity ≤ 1).  The interpreter
        path always keeps full counters — it is the parity oracle.
        """
        return self.use_counter_free and self._view_key is not None

    def screens(self) -> Mapping[str, RelevanceFilter]:
        """The compiled per-relation relevance filters (read-only)."""
        return dict(self._screens)

    # ------------------------------------------------------------------
    # Section 5: planners and execution
    # ------------------------------------------------------------------
    def planner_for(self, changed_positions: Iterable[int]) -> RowPlanner:
        """The cached row planner for one truth-table shape."""
        key = tuple(sorted(set(changed_positions)))
        planner = self._planners.get(key)
        if planner is None:
            planner = RowPlanner(
                self._exec_normal_form,
                key,
                share_subexpressions=self.share_subexpressions,
            )
            self._planners[key] = planner
        return planner

    def compute_delta(
        self,
        post_instances: Mapping[str, Relation],
        deltas: Mapping[str, Delta],
    ) -> Delta:
        """The net view change for one transaction, via cached planners."""
        changed = changed_positions_for(self._exec_normal_form, deltas)
        if not changed:
            return Delta(self._exec_normal_form.output_schema())
        planner = self.planner_for(changed)
        if self.use_codegen:
            kernels = self._shape_kernels_for(changed, planner)
            if kernels is not None:
                return self._execute_kernels(
                    planner, kernels, post_instances, deltas, changed
                )
            # The shape exceeds the codegen limits: the interpreter
            # executes it instead, tuple by tuple.
            fallback = sum(
                len(d.inserted) + len(d.deleted) for d in deltas.values()
            )
            if fallback:
                charge("codegen_fallback_tuples", fallback)
                if self._codegen_stats is not None:
                    self._codegen_stats.fallback_tuples += fallback
        return execute_planner(
            planner,
            post_instances,
            deltas,
            changed,
            index_probe=self.index_probe_for(deltas),
        )

    def fold_aggregate(
        self, state: "AggregateState", core_delta: Delta
    ) -> Delta:
        """Fold one core delta into the support state; visible delta out.

        The final stage of aggregate maintenance: the Section 5 pipeline
        produced ``core_delta`` over the view's SPJ core, and this fold
        applies it to the per-group support bags, re-rendering every
        touched group.  A group whose visible row changes contributes a
        delete of the old row and an insert of the new one (a keyed
        upsert, from the changefeed's point of view); a group that
        appears or disappears contributes just the insert or delete.

        Runs the generated fold kernel under ``use_codegen`` and the
        interpreter fold otherwise; the two mirror each other exactly,
        and both counters — ``aggregate_rows_folded`` and
        ``aggregate_groups_touched`` — are charged here in the shared
        driver, so the ablation stays counter-for-counter comparable.
        """
        ins = core_delta.inserted
        dele = core_delta.deleted
        rows = len(ins) + len(dele)
        if rows:
            charge("aggregate_rows_folded", rows)
        if self.use_codegen and self._aggregate_kernel is not None:
            touched, before, after, bad = self._aggregate_kernel(
                state.groups, ins, dele
            )
            if rows:
                charge("codegen_batch_rows", rows)
                if self._codegen_stats is not None:
                    self._codegen_stats.batch_rows += rows
        else:
            touched, before, after, bad = state.fold(ins, dele)
        if bad is not None:
            raise MaintenanceError(
                f"aggregate maintenance for view {self.definition.name!r} "
                f"would delete more copies of core row {bad} than the "
                "group support holds"
            )
        if touched:
            charge("aggregate_groups_touched", len(touched))
        inserted: dict[ValueTuple, int] = {}
        deleted: dict[ValueTuple, int] = {}
        for key in touched:
            b = before.get(key)
            a = after.get(key)
            if b == a:
                continue
            if b is not None:
                deleted[b] = 1
            if a is not None:
                inserted[a] = 1
        return Delta.from_counts(state.visible_schema, inserted, deleted)

    def _shape_kernels_for(
        self, changed: tuple[int, ...], planner: RowPlanner
    ) -> ShapeKernels | None:
        """The cached (or newly compiled) kernels for one shape."""
        key = tuple(sorted(set(changed)))
        if key in self._shape_kernels:
            return self._shape_kernels[key]
        kernels = compile_shape_kernels(
            planner, self.definition.name, counter_free=self.counter_free
        )
        if kernels is not None:
            charge("codegen_plans_compiled")
            if self._codegen_stats is not None:
                self._codegen_stats.plans_compiled += 1
        self._shape_kernels[key] = kernels
        return kernels

    def _execute_kernels(
        self,
        planner: RowPlanner,
        kernels: ShapeKernels,
        post_instances: Mapping[str, Relation],
        deltas: Mapping[str, Delta],
        changed: tuple[int, ...],
    ) -> Delta:
        """Run one shape's generated row kernel over one transaction.

        The columnar/batch counterpart of
        :func:`repro.core.differential.execute_planner`, charging the
        same counters in bulk from the kernel's tallies.
        """
        charge("differential_updates")
        operands = build_operands(
            self._exec_normal_form, post_instances, deltas, changed
        )
        hook = self.index_probe_for(deltas)
        steps = planner.steps
        resolved: dict[int, ProbeFn | None] = {}

        def probe_for(step_index: int) -> ProbeFn | None:
            probe = resolved.get(step_index)
            if step_index in resolved:
                return probe
            if hook is not None:
                step = steps[step_index]
                probe = hook(step.position, step.link_attr_names)
            resolved[step_index] = probe
            return probe

        ins, dele, scanned, probes, emitted, ignored = kernels.row_kernel(
            operands, probe_for
        )
        rows = kernels.rows_evaluated
        if rows:
            charge("truth_table_rows", rows)
            charge("delta_rows_evaluated", rows)
            charge("codegen_batch_rows", rows)
            if self._codegen_stats is not None:
                self._codegen_stats.batch_rows += rows
        if kernels.memo_hits:
            charge("subexpression_memo_hits", kernels.memo_hits)
        if scanned:
            charge("tuples_scanned", scanned)
        if probes:
            charge("join_probes", probes)
        if emitted:
            charge("tuples_emitted", emitted)
        if ignored:
            charge("tuples_ignored", ignored)
        net_counts(ins, dele)
        return Delta.from_counts(planner.output_schema, ins, dele)

    # ------------------------------------------------------------------
    # Index bindings
    # ------------------------------------------------------------------
    def _bind_index(
        self, position: int, link_attrs: tuple[str, ...]
    ) -> "HashIndex | None":
        """Resolve (and cache) the hash index one OLD probe uses.

        Base-relation operands lazily create their covering index on
        first use — the same behavior the maintainer had per
        transaction, now amortized into the plan.  View-typed operands
        bind ``None``: the planner falls back to hashing their
        contents.
        """
        key = (position, link_attrs)
        if key in self._index_bindings:
            return self._index_bindings[key]
        occurrence = self._exec_normal_form.occurrences[position]
        if occurrence.name in self._view_operands:
            binding: "HashIndex | None" = None
        else:
            base_attrs = tuple(occurrence.inverse[q] for q in link_attrs)
            binding = self._database.indexes.lookup(occurrence.name, base_attrs)
            if binding is None:
                binding = self._database.create_index(occurrence.name, base_attrs)
        self._index_bindings[key] = binding
        return binding

    def index_probe_for(self, deltas: Mapping[str, Delta]) -> IndexProbe | None:
        """The per-execution OLD-operand probe hook.

        Bindings are plan-level (resolved once, invalidated with the
        plan); the screening of probe results against the transaction's
        inserted tuples is per-execution — indexes store the
        *post-commit* relation while OLD semantics wants ``r − d_r``.
        Inserts the relevance filter dropped survive in probe results
        harmlessly: an irrelevant tuple fails the view condition in
        every combination.
        """
        if not self.use_indexes:
            return None

        def probe_hook(
            position: int, link_attrs: tuple[str, ...]
        ) -> Optional[ProbeFn]:
            index = self._bind_index(position, link_attrs)
            if index is None:
                return None
            occurrence = self._exec_normal_form.occurrences[position]
            delta = deltas.get(occurrence.name)
            inserted = delta.inserted if delta is not None else {}

            def probe(key: ValueTuple):
                for values in index.probe(key):
                    if values in inserted:
                        continue
                    yield values, Tag.OLD, 1

            return probe

        return probe_hook

    def rebind_indexes(self) -> None:
        """Drop cached index bindings (next execution re-resolves)."""
        self._index_bindings.clear()

    def index_bindings(self) -> dict[tuple[int, tuple[str, ...]], "HashIndex | None"]:
        """A snapshot of the currently resolved probe bindings."""
        return dict(self._index_bindings)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def kernel_source(self) -> str:
        """The complete generated source for this plan, deterministic.

        One listing: a version header, the screen kernel per
        participating relation (sorted by name), then the row/apply
        kernels for every single-relation truth-table shape plus the
        all-relations shape.  Generation is a pure function of the plan
        structure, so two compiles of the same definition against the
        same catalog and constraints emit byte-identical text — the
        property the CLI's ``--source`` determinism check asserts.
        Shapes beyond the codegen limits are listed as interpreter
        fallbacks.
        """
        name = self.definition.name
        parts = [
            f"# generated kernels for view {name!r} "
            f"(codegen v{CODEGEN_VERSION})\n"
        ]
        if self._reduction is not None:
            parts.append(
                f"# fk reduction: shapes cover the reduced normal form "
                f"over {self._reduction.delta_relation!r} alone; deltas on "
                f"{', '.join(self._reduction.probe_relations)} are screened "
                "out wholesale\n"
            )
        for relation_name in sorted(self._screens):
            cached = self._screen_kernels.get(relation_name)
            if cached is not None:
                parts.append(cached[0])
                continue
            parts.append(
                generate_screen_source(
                    relation_name,
                    self._screens[relation_name],
                    self._schemas[relation_name],
                    statically_irrelevant=(
                        relation_name in self._static_irrelevant
                    ),
                )
            )
        width = len(self._exec_normal_form.occurrences)
        if width > MAX_CODEGEN_OPERANDS:
            parts.append(
                f"# {width} operands exceed the codegen limit "
                f"({MAX_CODEGEN_OPERANDS}); every shape runs on the "
                "interpreter\n"
            )
            parts.extend(self._aggregate_source_parts())
            return "\n".join(parts)
        shapes = [(i,) for i in range(width)]
        if width > 1:
            shapes.append(tuple(range(width)))
        for shape in shapes:
            rows = codegen_rows(width, shape)
            if len(rows) > MAX_CODEGEN_ROWS:
                parts.append(
                    f"# shape {shape!r}: {len(rows)} truth-table rows "
                    "exceed the codegen limit; interpreter fallback\n"
                )
                continue
            parts.append(
                generate_shape_source(
                    self.planner_for(shape),
                    rows,
                    counter_free=self.counter_free,
                )
            )
        parts.extend(self._aggregate_source_parts())
        return "\n".join(parts)

    def _aggregate_source_parts(self) -> list[str]:
        """The aggregate fold kernel listing (empty for plain views)."""
        if self.definition.aggregate is None:
            return []
        if self._aggregate_source is not None:
            return [self._aggregate_source]
        return [
            generate_aggregate_source(
                self.definition.aggregate, self.normal_form.output_schema()
            )
        ]

    def describe(self, changed_relations: Iterable[str]) -> str:
        """The compiled plan, as text, for a hypothetical update.

        Sections: the Definition 4.2 invariant/variant split per changed
        relation (the screening plan), the cached row plan for the
        resulting truth-table shape (join order, hash links, pushdown),
        and the hash index each OLD probe binds.  This is what the CLI's
        ``explain`` verb prints.
        """
        nf = self._exec_normal_form
        changed_set = set(changed_relations)
        probe_relations: frozenset[str] = (
            frozenset(self._reduction.probe_relations)
            if self._reduction is not None
            else frozenset()
        )
        positions = [
            i for i, occ in enumerate(nf.occurrences) if occ.name in changed_set
        ]
        name = self.definition.name
        if not positions:
            if changed_set & probe_relations:
                assert self._reduction is not None
                return (
                    f"view {name!r}: {sorted(changed_set & probe_relations)} "
                    "are FK-reduction probe operands; their deltas are "
                    "proven irrelevant and dropped wholesale "
                    f"({self._reduction.describe()})"
                )
            return (
                f"view {name!r}: none of {sorted(changed_set)} participate; "
                "no maintenance needed"
            )
        lines = [f"compiled plan for view {name!r}"]
        if self._reduction is not None:
            lines.append(
                "fk reduction (chase over declared keys): "
                + self._reduction.describe()
            )
            for step in self._reduction.proof:
                lines.append(f"  {step}")
        if self._view_key is not None:
            lines.append(
                "derived view key (chase over declared keys): "
                + self._view_key.describe()
            )
            for step in self._view_key.proof:
                lines.append(f"  {step}")
            mode = (
                "counter-free apply kernels"
                if self.counter_free
                else "full Section 5.2 counters (counter-free disabled)"
            )
            lines.append(f"  multiplicity ≤ 1 proven; {mode}")
        lines.append("relevance screens (Definition 4.2 split, compiled once):")
        for relation_name in sorted(changed_set & self._screens.keys()):
            if relation_name in self._static_irrelevant:
                lines.append(
                    f"  {relation_name}: statically irrelevant under its "
                    "declared constraint; deltas dropped without per-tuple "
                    "screening"
                )
                continue
            if relation_name in probe_relations:
                lines.append(
                    f"  {relation_name}: FK-reduction probe operand; deltas "
                    "proven irrelevant and dropped without per-tuple "
                    "screening"
                )
                continue
            lines.append(self._screens[relation_name].describe())
        planner = self.planner_for(positions)
        lines.append(planner.describe())
        lines.append("index bindings (OLD-operand probes):")
        bound_any = False
        for index_pos, step in enumerate(planner.steps):
            if step.position in positions or not step.link_attr_names:
                continue
            occurrence = nf.occurrences[step.position]
            bound_any = True
            if occurrence.name in self._view_operands:
                lines.append(
                    f"  step {index_pos}: {occurrence.name} is a view operand; "
                    "no persistent index (contents hashed per execution)"
                )
                continue
            base_attrs = tuple(
                occurrence.inverse[q] for q in step.link_attr_names
            )
            existing = self._database.indexes.lookup(occurrence.name, base_attrs)
            state = (
                "bound" if existing is not None else "will be created on first use"
            )
            lines.append(
                f"  step {index_pos}: probes hash index "
                f"{occurrence.name}({', '.join(base_attrs)}) [{state}]"
            )
        if not bound_any:
            lines.append("  (none: no OLD operand is joined by equality links)")
        if self.definition.aggregate is not None:
            mode = (
                "generated fold kernel" if self.use_codegen else "interpreter fold"
            )
            lines.append(
                f"aggregate stage ({mode}): {self.definition.aggregate}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        shapes = len(self._planners)
        possible = count_delta_rows(len(self._exec_normal_form.occurrences)) + 1
        return (
            f"<CompiledViewPlan {self.definition.name!r} "
            f"{len(self._screens)} screens, {shapes}/{possible} planner shapes, "
            f"{len(self._index_bindings)} index bindings>"
        )
