"""Detection of relevant and irrelevant updates (Section 4).

A set of updates to a base relation is *irrelevant* to a view when it
cannot affect the view's state in **any** database instance.  Theorem
4.1 characterizes irrelevance exactly: inserting or deleting tuple
``t`` in ``r_i`` is irrelevant to ``v = π_X(σ_C(r₁ × … × r_p))`` iff
the substituted condition ``C(t, Y₂)`` is unsatisfiable.  This module
provides:

* :func:`is_irrelevant_update` — the direct Theorem 4.1 test (one
  satisfiability check per substituted condition);
* :class:`RelevanceFilter` — Algorithm 4.1: the batched filter that
  normalizes and classifies the condition **once**, precomputes
  all-pairs shortest paths over the *invariant* portion of the
  constraint graph with Floyd's algorithm, and then screens each tuple
  with only (a) ground evaluations of the variant evaluable formulae
  and (b) an O(B²) negative-cycle probe over the variant bounds —
  instead of a full O(n³) satisfiability run per tuple;
* :func:`is_irrelevant_combination` — the Theorem 4.2 multi-relation
  generalization;
* :func:`construct_witness_database` — the constructive "only if"
  direction of Theorem 4.1's proof: for any relevant tuple, a database
  instance in which the update visibly changes the view;
* :func:`filter_delta` — the convenience entry point the view
  maintainer uses: screen a whole :class:`~repro.algebra.relation.Delta`.

Self-joins (a relation appearing in several occurrences of the view)
generalize the paper's single-occurrence setting: a tuple is irrelevant
iff its substitution into **every** occurrence is unsatisfiable, since
it could enter the view through any of them.

Domain caveat: satisfiability is decided over the unbounded discrete
integers (the Rosenkrantz–Hunt class assumes "discrete and infinite
domains").  Over *finite* domains the test stays sound — an update
reported irrelevant truly is — but may conservatively report relevance
for a tuple whose only satisfying assignments fall outside the domain
bounds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.algebra.conditions import Condition
from repro.algebra.expressions import NormalForm, Occurrence
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.core.graph import ZERO, INF, ConstraintGraph
from repro.core.normalize import normalize_atom, normalize_conjunction
from repro.core.satisfiability import is_satisfiable, solve_conjunction
from repro.core.substitution import (
    binding_for,
    combined_binding,
    split_conjunction,
)
from repro.errors import MaintenanceError
from repro.instrumentation import charge

ValueTuple = tuple[int, ...]


# ----------------------------------------------------------------------
# Theorem 4.1 — direct test
# ----------------------------------------------------------------------

def is_irrelevant_update(
    normal_form: NormalForm,
    relation_name: str,
    values: ValueTuple,
    schema: RelationSchema,
) -> bool:
    """Theorem 4.1: is inserting/deleting ``values`` in ``relation_name``
    irrelevant to the view, for every database instance?

    The test is symmetric in insert vs delete — the paper proves the
    same condition covers both — so no operation kind is passed.
    """
    occurrences = normal_form.occurrences_of(relation_name)
    if not occurrences:
        # The relation does not participate in the view at all; no
        # update to it can possibly matter.
        return True
    for occurrence in occurrences:
        binding = binding_for(occurrence, schema, values)
        substituted = normal_form.condition.substitute(binding)
        if is_satisfiable(substituted):
            return False
    return True


# ----------------------------------------------------------------------
# Theorem 4.1 — static (per-relation) irrelevance under constraints
# ----------------------------------------------------------------------

def is_statically_irrelevant(
    normal_form: NormalForm,
    relation_name: str,
    constraint: Condition,
) -> bool:
    """Is *every* legal update to ``relation_name`` irrelevant to the view?

    ``constraint`` is the declared per-relation invariant ``K_R`` over
    R's own attribute names (see
    :class:`repro.engine.constraints.ConstraintCatalog`).  Theorem 4.1
    says a tuple ``t`` is irrelevant iff ``C(t, Y₂)`` is unsatisfiable;
    quantifying over all legal ``t`` turns the per-tuple substitution
    into a simultaneous satisfiability question with ``t``'s attributes
    left free:

        R is statically irrelevant  iff  ``C ∧ K_R`` is unsatisfiable
        for every occurrence of R (with ``K_R`` requalified through the
        occurrence's rename).

    Soundness and completeness both follow from Theorem 4.1: a
    satisfying assignment of ``C ∧ K_occ`` restricts to a legal tuple
    whose substituted condition is satisfiable (some legal update is
    relevant), and conversely a relevant legal tuple extends to a
    satisfying assignment.  As everywhere in Section 4, the test is
    decided over unbounded discrete domains, so over finite domains it
    may conservatively answer ``False`` but never wrongly ``True``.
    """
    occurrences = normal_form.occurrences_of(relation_name)
    if not occurrences:
        return True
    from repro.algebra.expressions import requalify_condition

    charge("static_irrelevance_proofs")
    for occurrence in occurrences:
        requalified = requalify_condition(constraint, occurrence.rename)
        if is_satisfiable(normal_form.condition.conjoin(requalified)):
            return False
    return True


# ----------------------------------------------------------------------
# Theorem 4.2 — simultaneous multi-relation test
# ----------------------------------------------------------------------

def is_irrelevant_combination(
    normal_form: NormalForm,
    tuples: Mapping[str, ValueTuple],
    schemas: Mapping[str, RelationSchema],
) -> bool:
    """Theorem 4.2: is the *combination* of tuples irrelevant?

    ``tuples`` maps relation names to one tuple each, all inserted (or
    all deleted) together.  The combination is irrelevant iff the
    simultaneous substitution ``C(t₁, …, t_k, Y₂)`` is unsatisfiable.
    Definition 4.3 assumes disjoint relation schemes — i.e. each named
    relation occurs exactly once in the view — and this function
    enforces that restriction.
    """
    bindings = []
    for name, values in tuples.items():
        occurrences = normal_form.occurrences_of(name)
        if not occurrences:
            raise MaintenanceError(f"relation {name!r} does not occur in the view")
        if len(occurrences) > 1:
            raise MaintenanceError(
                "Theorem 4.2 (Definition 4.3) requires disjoint relation "
                f"schemes; {name!r} occurs {len(occurrences)} times"
            )
        bindings.append(binding_for(occurrences[0], schemas[name], values))
    substituted = normal_form.condition.substitute(combined_binding(bindings))
    return not is_satisfiable(substituted)


# ----------------------------------------------------------------------
# Theorem 4.1 — constructive completeness (witness databases)
# ----------------------------------------------------------------------

def construct_witness_database(
    normal_form: NormalForm,
    relation_name: str,
    values: ValueTuple,
    schemas: Mapping[str, RelationSchema],
) -> dict[str, Relation] | None:
    """A database in which updating ``values`` visibly changes the view.

    Implements the proof of Theorem 4.1's "only if" direction: when the
    substituted condition is satisfiable, pick a satisfying assignment
    for the remaining variables and build one tuple per other
    occurrence from it (unconstrained attributes take the value 1, the
    proof's "any value, say one").  Inserting ``values`` into the
    returned instance adds a tuple to (or raises a count in) the view;
    deleting it from the post-insert instance removes one.

    Returns ``None`` when the update is irrelevant (no witness exists —
    that is exactly Theorem 4.1's "if" direction).
    """
    target_schema = schemas[relation_name]
    for occurrence in normal_form.occurrences_of(relation_name):
        binding = binding_for(occurrence, target_schema, values)
        substituted = normal_form.condition.substitute(binding)
        for disjunct in substituted.disjuncts:
            solution = solve_conjunction(disjunct)
            if solution is None:
                continue
            instances: dict[str, Relation] = {
                name: Relation(schema) for name, schema in schemas.items()
            }
            for other in normal_form.occurrences:
                if other is occurrence:
                    continue
                other_schema = schemas[other.name]
                row = tuple(
                    solution.get(other.rename[attr], 1)
                    for attr in other_schema.names
                )
                relation = instances[other.name]
                if row not in relation:
                    relation.add(row)
            return instances
    return None


# ----------------------------------------------------------------------
# Algorithm 4.1 — the batched relevance filter
# ----------------------------------------------------------------------

class _DisjunctScreen:
    """Per-(occurrence, disjunct) precomputation for the batch filter.

    Holds the Definition 4.2 split, the normalized invariant constraint
    graph's all-pairs shortest paths (Floyd), and the symbolic variant
    formulae to be substituted per tuple.
    """

    __slots__ = (
        "occurrence",
        "invariant",
        "variant_evaluable",
        "variant_non_evaluable",
        "dist",
        "dead",
    )

    def __init__(self, occurrence: Occurrence, disjunct, substituted_vars) -> None:
        self.occurrence = occurrence
        split = split_conjunction(disjunct, substituted_vars)
        self.invariant = split.invariant
        self.variant_evaluable = split.variant_evaluable
        self.variant_non_evaluable = split.variant_non_evaluable
        self.dead = False
        self.dist: dict[str, dict[str, float]] = {}

        invariant = normalize_conjunction(type(disjunct)(split.invariant))
        if invariant.trivially_false:
            self.dead = True
            return
        # The graph needs nodes for every variable a variant bound can
        # mention, so APSP entries exist even for otherwise-unconstrained
        # variables.
        remaining_vars = disjunct.variables() - set(substituted_vars)
        graph = ConstraintGraph.from_atoms(invariant.atoms, nodes=remaining_vars)
        dist, negative = graph.floyd_warshall()
        if negative:
            # The invariant portion alone is unsatisfiable: this
            # disjunct can never be satisfied, for any tuple.
            self.dead = True
            return
        self.dist = dist

    def admits(self, binding: Mapping[str, int]) -> bool:
        """Is the disjunct satisfiable once ``binding`` is substituted?

        Ground (variant evaluable) atoms are evaluated directly.  The
        variant non-evaluable atoms become single-variable bounds; a
        negative cycle in (invariant graph + bounds) exists iff some
        simple loop through the zero node is negative, and every such
        loop is "bound-edge out, invariant shortest path, bound-edge
        in", so an O(B²) probe over the precomputed APSP suffices.
        """
        if self.dead:
            return False
        for atom in self.variant_evaluable:
            ground = atom.substitute(binding)
            charge("filter_ground_evals")
            if not ground.truth_value():
                return False

        # Tightest upper (x <= c) and lower (x >= c) bounds per variable.
        uppers: dict[str, int] = {}
        lowers: dict[str, int] = {}
        for atom in self.variant_non_evaluable:
            bound = atom.substitute(binding)
            if bound.is_ground():  # defensive; cannot happen for VNE atoms
                if not bound.truth_value():
                    return False
                continue
            for normalized in normalize_atom(bound):
                var = normalized.left.name  # type: ignore[union-attr]
                c = normalized.right.value  # type: ignore[union-attr]
                if normalized.op == "<=":
                    if var not in uppers or c < uppers[var]:
                        uppers[var] = c
                else:
                    if var not in lowers or c > lowers[var]:
                        lowers[var] = c

        charge("filter_bound_probes")
        dist = self.dist
        # Augment with the zero node itself (weight 0) so loops that use
        # only one bound edge are covered; skip the trivial (0, 0) pair.
        lower_items = list(lowers.items()) + [(ZERO, 0)]
        upper_items = list(uppers.items()) + [(ZERO, 0)]
        for y, cl in lower_items:
            dist_y = dist[y]
            for x, cu in upper_items:
                if y == ZERO and x == ZERO:
                    continue
                path = dist_y[x]
                if path == INF:
                    continue
                # Cycle: ZERO -> y (weight -cl), y ~> x (path), x -> ZERO
                # (weight cu).  For the ZERO entries the bound edge
                # degenerates to staying put at weight 0.
                if -cl + path + cu < 0:
                    return False
        return True


class FilterStats:
    """Counters describing one batch-filtering run.

    ``static_dropped`` counts tuples discarded without *any* per-tuple
    work because the whole relation was proven statically irrelevant at
    plan-compile time (:func:`is_statically_irrelevant`); such tuples
    are included in ``checked`` and ``irrelevant`` so aggregate
    accounting stays comparable across plans.
    """

    __slots__ = ("checked", "relevant", "irrelevant", "static_dropped")

    def __init__(self) -> None:
        self.checked = 0
        self.relevant = 0
        self.irrelevant = 0
        self.static_dropped = 0

    def __repr__(self) -> str:
        return (
            f"<FilterStats checked={self.checked} relevant={self.relevant} "
            f"irrelevant={self.irrelevant} static_dropped={self.static_dropped}>"
        )


class RelevanceFilter:
    """Algorithm 4.1: screen batches of tuples against one view.

    Construction performs the once-per-batch work — normalization,
    Definition 4.2 classification, invariant-graph APSP via Floyd's
    algorithm — for every (occurrence, disjunct) pair.  Each
    :meth:`is_relevant` call then costs only the variant part.

    Parameters
    ----------
    normal_form:
        The view in paper normal form.
    relation_name:
        The updated relation (Algorithm 4.1's input scheme R).
    schema:
        Schema of the updated relation.
    """

    def __init__(
        self,
        normal_form: NormalForm,
        relation_name: str,
        schema: RelationSchema,
    ) -> None:
        self.normal_form = normal_form
        self.relation_name = relation_name
        self.schema = schema
        self.stats = FilterStats()
        self._always_relevant = False
        self._screens: list[_DisjunctScreen] = []

        occurrences = normal_form.occurrences_of(relation_name)
        self._participates = bool(occurrences)
        for occurrence in occurrences:
            substituted_vars = frozenset(occurrence.qualified_names())
            for disjunct in normal_form.condition.disjuncts:
                if not disjunct.atoms:
                    # An empty disjunct is the constant TRUE: every
                    # update is relevant, no screening possible.
                    self._always_relevant = True
                screen = _DisjunctScreen(occurrence, disjunct, substituted_vars)
                if not screen.dead:
                    self._screens.append(screen)

    def is_relevant(self, values: ValueTuple) -> bool:
        """Does inserting/deleting ``values`` possibly affect the view?"""
        charge("filter_tuples_checked")
        self.stats.checked += 1
        relevant = self._decide(values)
        if relevant:
            self.stats.relevant += 1
        else:
            self.stats.irrelevant += 1
        return relevant

    def _decide(self, values: ValueTuple) -> bool:
        if not self._participates:
            return False
        if self._always_relevant:
            return True
        binding_cache: dict[int, dict[str, int]] = {}
        for screen in self._screens:
            occ_id = id(screen.occurrence)
            binding = binding_cache.get(occ_id)
            if binding is None:
                binding = binding_for(screen.occurrence, self.schema, values)
                binding_cache[occ_id] = binding
            if screen.admits(binding):
                return True
        return False

    def filter_tuples(
        self, tuples: Sequence[ValueTuple]
    ) -> list[ValueTuple]:
        """Algorithm 4.1's T_out: the relevant subset of ``tuples``."""
        return [values for values in tuples if self.is_relevant(values)]

    def screen_delta(self, delta: Delta) -> tuple[Delta, FilterStats]:
        """Screen one net-effect delta; returns (filtered delta, call stats).

        The execution half of Algorithm 4.1: the filter's once-per-view
        precomputation (normalization, invariant split, APSP) is reused
        across calls — this is what the compiled-plan cache banks on —
        while the returned :class:`FilterStats` describe *this* call
        only.  Cumulative counts keep accruing on :attr:`stats`.
        """
        call_stats = FilterStats()

        def keep(values: ValueTuple) -> bool:
            charge("filter_tuples_checked")
            call_stats.checked += 1
            self.stats.checked += 1
            relevant = self._decide(values)
            if relevant:
                call_stats.relevant += 1
                self.stats.relevant += 1
            else:
                call_stats.irrelevant += 1
                self.stats.irrelevant += 1
            return relevant

        inserted = {
            values: count for values, count in delta.inserted.items() if keep(values)
        }
        deleted = {
            values: count for values, count in delta.deleted.items() if keep(values)
        }
        return Delta.from_counts(delta.schema, inserted, deleted), call_stats

    def describe(self) -> str:
        """The Definition 4.2 split, one line per (occurrence, disjunct).

        Shows which atoms of each disjunct are *invariant* (their
        constraint graph and APSP are built once, at compile time) and
        which are *variant* (re-evaluated per screened tuple) — the
        textual form of what :meth:`is_relevant` executes.
        """
        if not self._participates:
            return (
                f"  {self.relation_name}: does not participate; "
                "every update is irrelevant"
            )
        if self._always_relevant:
            return (
                f"  {self.relation_name}: condition has an empty disjunct "
                "(constant TRUE); every update is relevant, no screening"
            )
        lines = []
        for screen in self._screens:
            occ = screen.occurrence
            inv = " and ".join(str(a) for a in screen.invariant) or "(none)"
            ve = " and ".join(str(a) for a in screen.variant_evaluable) or "(none)"
            vne = (
                " and ".join(str(a) for a in screen.variant_non_evaluable)
                or "(none)"
            )
            lines.append(
                f"  {self.relation_name}#{occ.position}: "
                f"invariant [{inv}]; variant evaluable [{ve}]; "
                f"variant non-evaluable [{vne}]"
            )
        if not lines:
            lines.append(
                f"  {self.relation_name}: every disjunct's invariant part is "
                "unsatisfiable; all updates screened out"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<RelevanceFilter view over {self.relation_name!r}, "
            f"{len(self._screens)} screens, {self.stats!r}>"
        )


def filter_delta(
    normal_form: NormalForm,
    relation_name: str,
    delta: Delta,
    schema: RelationSchema | None = None,
) -> tuple[Delta, FilterStats]:
    """Screen a whole net-effect delta; keep only relevant tuples.

    Returns the filtered delta and the filter statistics.  Insertions
    and deletions are screened by the same test (Theorem 4.1 covers
    both directions).
    """
    schema = schema if schema is not None else delta.schema
    relevance = RelevanceFilter(normal_form, relation_name, schema)
    return relevance.screen_delta(delta)
