"""View definitions and materializations (Section 3 vocabulary).

A *view definition* V is a relational-algebra expression over the
database scheme; a *view materialization* v is a stored relation
resulting from evaluating that expression against a database instance.
:class:`ViewDefinition` carries the expression plus its paper normal
form; :class:`MaterializedView` pairs a definition with the stored
counted relation and the bookkeeping the maintainer needs.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.expressions import Expression, NormalForm, to_normal_form
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.errors import ViewDefinitionError

class ViewDefinition:
    """A named SPJ view definition, validated against a schema catalog."""

    __slots__ = ("name", "expression", "normal_form")

    def __init__(
        self,
        name: str,
        expression: Expression,
        catalog: Mapping[str, RelationSchema],
    ) -> None:
        if not name or not isinstance(name, str):
            raise ViewDefinitionError(f"view name must be a non-empty string: {name!r}")
        self.name = name
        self.expression = expression
        # to_normal_form validates SPJ membership and well-formedness.
        self.normal_form: NormalForm = to_normal_form(expression, catalog)

    @property
    def relation_names(self) -> frozenset[str]:
        """Base relations the view depends on."""
        return frozenset(self.normal_form.relation_names)

    def output_schema(self) -> RelationSchema:
        """Schema of the view's tuples."""
        return self.normal_form.output_schema()

    def __repr__(self) -> str:
        return f"<ViewDefinition {self.name!r}: {self.expression}>"


class MaterializedView:
    """A stored view materialization plus maintenance statistics.

    The stored relation carries the Section 5.2 multiplicity counter on
    every tuple.  ``contents`` exposes it read-only by convention —
    mutate only through the maintainer.
    """

    __slots__ = ("definition", "contents", "updates_applied", "last_refresh_sequence")

    def __init__(self, definition: ViewDefinition, contents: Relation) -> None:
        self.definition = definition
        self.contents = contents
        #: Number of non-empty deltas applied since materialization.
        self.updates_applied = 0
        #: Log sequence the view is current as of (deferred maintenance).
        self.last_refresh_sequence = 0

    @classmethod
    def materialize(
        cls, definition: ViewDefinition, instances: Mapping[str, Relation]
    ) -> "MaterializedView":
        """Evaluate the definition from scratch and store the result.

        Uses the pipelined normal-form evaluator (hash joins, selection
        pushdown); the naive tree evaluator stays available as an
        independent oracle via :func:`repro.algebra.evaluate.evaluate`.
        """
        from repro.core.planner import evaluate_normal_form

        contents = evaluate_normal_form(definition.normal_form, instances)
        return cls(definition, contents)

    def apply_delta(self, delta: Delta) -> None:
        """Apply a computed view delta to the stored contents."""
        if not delta.is_empty():
            delta.apply_to(self.contents)
            self.updates_applied += 1

    def __len__(self) -> int:
        return len(self.contents)

    def __repr__(self) -> str:
        return (
            f"<MaterializedView {self.definition.name!r} "
            f"{len(self.contents)} tuples, {self.updates_applied} updates>"
        )
