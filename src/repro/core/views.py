"""View definitions and materializations (Section 3 vocabulary).

A *view definition* V is a relational-algebra expression over the
database scheme; a *view materialization* v is a stored relation
resulting from evaluating that expression against a database instance.
:class:`ViewDefinition` carries the expression plus its paper normal
form; :class:`MaterializedView` pairs a definition with the stored
counted relation and the bookkeeping the maintainer needs.

Aggregate views ride on the same structure: the definition peels a
top-level :class:`~repro.algebra.aggregates.Aggregate` node off, keeps
its :class:`~repro.algebra.aggregates.AggregateSpec`, and normalizes
only the SPJ *core* — the Section 5 delta pipeline maintains the core,
and a final fold stage (:mod:`repro.core.aggregates`) turns core deltas
into visible group-row deltas.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.algebra.aggregates import Aggregate, AggregateSpec
from repro.algebra.expressions import (
    Expression,
    NormalForm,
    Project,
    to_normal_form,
)
from repro.algebra.relation import Delta, Relation
from repro.algebra.schema import RelationSchema
from repro.errors import ViewDefinitionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.aggregates import AggregateState

class ViewDefinition:
    """A named SPJ (optionally aggregated) view definition.

    For plain views ``normal_form`` is the normalized expression.  For
    aggregate views ``expression`` keeps the full ``Aggregate`` node
    (full recompute and consistency checks evaluate it), ``aggregate``
    holds the spec, and ``normal_form`` is the normalized *core* —
    projected down to exactly the attributes the aggregation reads, so
    the maintained support state is as narrow as possible.
    """

    __slots__ = ("name", "expression", "normal_form", "aggregate")

    def __init__(
        self,
        name: str,
        expression: Expression,
        catalog: Mapping[str, RelationSchema],
    ) -> None:
        if not name or not isinstance(name, str):
            raise ViewDefinitionError(f"view name must be a non-empty string: {name!r}")
        self.name = name
        self.expression = expression
        self.aggregate: Optional[AggregateSpec] = None
        core = expression
        if isinstance(expression, Aggregate):
            # Validates the whole tree, including that the core really
            # produces every key and aggregate input attribute.
            expression.schema(catalog)
            self.aggregate = expression.spec
            core_attrs = expression.spec.core_attributes()
            core = expression.child
            if core_attrs and tuple(core.schema(catalog).names) != core_attrs:
                core = Project(core, core_attrs)
        # to_normal_form validates SPJ membership and well-formedness
        # (and rejects any non-outermost Aggregate left in the tree).
        self.normal_form: NormalForm = to_normal_form(core, catalog)

    @property
    def relation_names(self) -> frozenset[str]:
        """Base relations the view depends on."""
        return frozenset(self.normal_form.relation_names)

    def output_schema(self) -> RelationSchema:
        """Schema of the view's *visible* tuples."""
        if self.aggregate is not None:
            return self.aggregate.output_schema(self.normal_form.output_schema())
        return self.normal_form.output_schema()

    def __repr__(self) -> str:
        return f"<ViewDefinition {self.name!r}: {self.expression}>"


class MaterializedView:
    """A stored view materialization plus maintenance statistics.

    The stored relation carries the Section 5.2 multiplicity counter on
    every tuple.  ``contents`` exposes it read-only by convention —
    mutate only through the maintainer.
    """

    __slots__ = (
        "definition",
        "contents",
        "aggregate_state",
        "updates_applied",
        "last_refresh_sequence",
    )

    def __init__(
        self,
        definition: ViewDefinition,
        contents: Relation,
        aggregate_state: "AggregateState | None" = None,
    ) -> None:
        self.definition = definition
        self.contents = contents
        #: Per-group core support bags for aggregate views (None for
        #: plain SPJ views); ``contents`` holds the derived visible rows.
        self.aggregate_state = aggregate_state
        #: Number of non-empty deltas applied since materialization.
        self.updates_applied = 0
        #: Log sequence the view is current as of (deferred maintenance).
        self.last_refresh_sequence = 0

    @classmethod
    def materialize(
        cls, definition: ViewDefinition, instances: Mapping[str, Relation]
    ) -> "MaterializedView":
        """Evaluate the definition from scratch and store the result.

        Uses the pipelined normal-form evaluator (hash joins, selection
        pushdown); the naive tree evaluator stays available as an
        independent oracle via :func:`repro.algebra.evaluate.evaluate`.
        For aggregate views the core is evaluated, grouped into the
        support state, and the visible rows rendered from it.
        """
        from repro.core.planner import evaluate_normal_form

        contents = evaluate_normal_form(definition.normal_form, instances)
        if definition.aggregate is not None:
            from repro.core.aggregates import AggregateState

            state = AggregateState.from_core(definition.aggregate, contents)
            return cls(definition, state.visible_relation(), state)
        return cls(definition, contents)

    def stored_contents(self) -> Relation:
        """The relation checkpoints persist.

        Plain views store their contents directly.  Aggregate views
        store the *core support* relation — the visible rows are derived
        state, and restoring MIN/MAX soundly needs the per-value support
        back (see :meth:`repro.core.aggregates.AggregateState.stored_contents`).
        """
        if self.aggregate_state is not None:
            return self.aggregate_state.stored_contents()
        return self.contents

    def apply_delta(self, delta: Delta) -> None:
        """Apply a computed view delta to the stored contents."""
        if not delta.is_empty():
            delta.apply_to(self.contents)
            self.updates_applied += 1

    def __len__(self) -> int:
        return len(self.contents)

    def __repr__(self) -> str:
        return (
            f"<MaterializedView {self.definition.name!r} "
            f"{len(self.contents)} tuples, {self.updates_applied} updates>"
        )
