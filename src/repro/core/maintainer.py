"""The view maintainer: filter, then differentially re-evaluate.

This is the top of the paper's architecture.  All database updates are
"first filtered to remove from consideration those that cannot possibly
affect the view" (Section 4); for the remaining updates "a differential
algorithm can be applied to re-evaluate the view expression"
(Section 5).  :class:`ViewMaintainer` wires both stages into a
database's commit pipeline:

* **Immediate** views are brought up to date inside every commit — the
  paper's default assumption ("views are materialized every time a
  transaction updates the database").
* **Deferred** views are *snapshots* [AL80]: commits only compose the
  net deltas per view, and :meth:`refresh` applies the accumulated
  change on demand, through exactly the same differential machinery.

Both paths execute **compiled maintenance plans**
(:class:`~repro.core.compiled.CompiledViewPlan`): the relevance
screens, join orders, pushdown decisions and index bindings are built
once per view — eagerly at registration — cached in a
:class:`~repro.core.plancache.PlanCache`, and invalidated when a DDL
event (index create/drop, relation drop, view re-registration) could
stale them.  Every consumer of the maintainer — immediate commits,
deferred ``refresh``, WAL-replay recovery, changefeed followers, the
network view-server — therefore runs the same cached plan; the
``use_plan_cache`` switch disables reuse for ablation measurements.
"""

from __future__ import annotations

import contextlib
import enum
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.algebra.expressions import Expression
from repro.algebra.relation import Delta, Relation
from repro.core.codegen import CodegenStats, plan_fingerprint
from repro.core.compiled import CompiledViewPlan
from repro.core.plancache import PlanCache
from repro.core.views import MaterializedView, ViewDefinition
from repro.engine.database import Database
from repro.errors import MaintenanceError, UnknownViewError
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis import AnalysisReport
    from repro.core.consistency import ConsistencyReport
    from repro.scheduler.selfmaint import SelfMaintainability


class MaintenancePolicy(enum.Enum):
    """When a view is brought up to date."""

    #: Inside every committing transaction (the paper's main setting).
    IMMEDIATE = "immediate"
    #: On demand / periodically — snapshot refresh (Section 6, [AL80]).
    DEFERRED = "deferred"


class MaintenanceStats:
    """Per-view maintenance counters."""

    __slots__ = (
        "transactions_seen",
        "transactions_skipped",
        "deltas_applied",
        "tuples_screened",
        "tuples_irrelevant",
        "tuples_static_dropped",
        "view_tuples_inserted",
        "view_tuples_deleted",
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_invalidations",
    )

    def __init__(self) -> None:
        self.transactions_seen = 0
        self.transactions_skipped = 0
        self.deltas_applied = 0
        self.tuples_screened = 0
        self.tuples_irrelevant = 0
        self.tuples_static_dropped = 0
        self.view_tuples_inserted = 0
        self.view_tuples_deleted = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_invalidations = 0

    def as_dict(self) -> dict[str, int]:
        """Counter values as a plain dict (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<MaintenanceStats {inner}>"


class ViewMaintainer:
    """Maintains a set of materialized views over one database.

    Parameters
    ----------
    database:
        The database whose commits to observe.
    use_relevance_filter:
        Screen deltas with the Section 4 filter before differential
        evaluation (default on; E10's ablation switch).
    share_subexpressions:
        Memoize partial joins across truth-table rows (default on;
        E13's ablation switch).
    use_indexes:
        Lazily create hash indexes on base relations so OLD operands
        are probed rather than re-hashed per transaction (default on).
    use_plan_cache:
        Reuse compiled maintenance plans across transactions (default
        on; E21's ablation switch — off compiles a fresh plan per
        maintenance call, restoring the pre-cache behavior).
    use_codegen:
        Execute generated batch kernels (:mod:`repro.core.codegen`)
        instead of the per-tuple interpreter (default on; E24's
        ablation switch — off keeps the interpreter as the oracle the
        kernels are verified against).  Flipping the switch changes the
        expected plan fingerprint, so cached plans compiled under the
        other mode are evicted, never executed.
    use_counter_free:
        Let compiled plans pin the Section 5.2 multiplicity counters to
        one when the chase over declared keys proves every view row has
        multiplicity ≤ 1 (default on; E26's ablation switch — off keeps
        full counter arithmetic even when the proof succeeds).  The
        fact is re-proved per plan compile and key DDL invalidates
        plans, so the switch never changes results, only the kernels'
        arithmetic.
    strict:
        Default for :meth:`define_view`'s ``strict`` parameter: run the
        static analyzer (:mod:`repro.analysis`) on every new definition
        and reject registrations with ERROR-level findings
        (:class:`~repro.errors.StrictAnalysisError`).
    auto_verify:
        After every maintenance step, recompute the view from scratch
        and compare — a self-checking mode for tests and debugging.
    """

    def __init__(
        self,
        database: Database,
        use_relevance_filter: bool = True,
        share_subexpressions: bool = True,
        use_indexes: bool = True,
        use_plan_cache: bool = True,
        use_codegen: bool = True,
        use_counter_free: bool = True,
        strict: bool = False,
        auto_verify: bool = False,
    ) -> None:
        self.database = database
        self.use_relevance_filter = use_relevance_filter
        self.share_subexpressions = share_subexpressions
        self.use_indexes = use_indexes
        self.use_plan_cache = use_plan_cache
        self.use_codegen = use_codegen
        self.use_counter_free = use_counter_free
        self.strict = strict
        self.auto_verify = auto_verify
        #: Cumulative codegen counters; owned here (not by plans) so
        #: they survive plan-cache evictions and recompiles.
        self._codegen_stats = CodegenStats()
        self._views: dict[str, MaterializedView] = {}
        self._policies: dict[str, MaintenancePolicy] = {}
        self._pending: dict[str, dict[str, Delta]] = {}
        #: Commits that touched a deferred view's operands since its
        #: last refresh — the backlog measure staleness SLAs bound.
        #: (Distinct from len(_pending): composition nets per relation.)
        self._commits_since_refresh: dict[str, int] = {}
        self._stats: dict[str, MaintenanceStats] = {}
        #: Per view: names it reads (base relations and upstream views).
        self._dependencies: dict[str, frozenset[str]] = {}
        self._subscribers: dict[str, list[Callable[[MaterializedView, Delta], None]]] = {}
        self._plan_cache = PlanCache()
        #: True while _maintain runs: a plan's own lazy index creation
        #: must not invalidate the plan executing it.
        self._in_maintenance = False
        database.add_commit_hook(self._on_commit)
        database.add_ddl_hook(self._on_ddl)

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    def define_view(
        self,
        name: str,
        expression: Expression,
        policy: MaintenancePolicy = MaintenancePolicy.IMMEDIATE,
        strict: bool | None = None,
    ) -> MaterializedView:
        """Register and materialize a view.

        The initial materialization is a complete evaluation of the
        defining expression — differential maintenance takes over from
        the next commit.

        The expression may reference *other registered views* by name
        (views over views): the upstream view then acts as a base
        relation whose per-commit delta is the one this maintainer just
        applied to it.  Upstream views must be IMMEDIATE — a deferred
        upstream has no per-commit delta to propagate.

        With ``strict`` (default: the maintainer's ``strict`` setting)
        the definition first runs through the static analyzer; any
        ERROR-level finding — today, a provably unsatisfiable condition
        (the view would be empty in every database state) — rejects the
        registration with :class:`~repro.errors.StrictAnalysisError`
        before anything is materialized.  WARN/INFO findings never
        block; read them via :meth:`analyze`.
        """
        definition, referenced = self._validated_definition(name, expression)
        effective_strict = self.strict if strict is None else strict
        if effective_strict:
            from repro.analysis import Severity, analyze_definition
            from repro.errors import StrictAnalysisError

            findings = analyze_definition(
                definition,
                constraints=self.database.constraints,
                keys=self.database.keys,
                view_operands=referenced & self._views.keys(),
            )
            errors = tuple(
                f for f in findings if f.severity is Severity.ERROR
            )
            if errors:
                raise StrictAnalysisError(name, errors)
        view = MaterializedView.materialize(definition, self._combined_instances())
        return self._install_view(view, referenced, policy)

    def restore_view(
        self,
        name: str,
        expression: Expression,
        contents: Relation,
        policy: MaintenancePolicy = MaintenancePolicy.IMMEDIATE,
        verify: bool = False,
    ) -> MaterializedView:
        """Register a view with pre-computed contents — no evaluation.

        This is the rebuild-from-snapshot path used by crash recovery
        (:class:`repro.replication.recovery.Recovery`): a checkpoint
        carries each view's stored relation (multiplicity counters
        included), so after a restart the view is re-adopted
        byte-for-byte and the replayed write-ahead-log tail flows
        through the normal differential pipeline — the view is never
        recomputed from scratch.

        ``contents`` must match the definition's *stored* schema by
        attribute names — the visible schema for plain views, the SPJ
        core's schema for aggregate views (checkpoints persist the core
        support relation; visible group rows are derived and re-rendered
        here).  Rows are re-encoded against the catalog's domains.
        ``verify`` recomputes the view and compares, turning a stale or
        tampered snapshot into an immediate error instead of a silently
        diverging view.
        """
        definition, referenced = self._validated_definition(name, expression)
        if definition.aggregate is not None:
            expected = definition.normal_form.output_schema()
            if tuple(contents.schema.names) != tuple(expected.names):
                raise MaintenanceError(
                    f"restored contents for aggregate view {name!r} have "
                    f"schema {list(contents.schema.names)}, expected the "
                    f"core support schema {list(expected.names)} (aggregate "
                    "checkpoints store the core rows, not the rendered "
                    "group rows)"
                )
            adopted = Relation(expected)
            for values, count in contents.items():
                adopted.add(tuple(contents.schema.decode_values(values)), count)
            from repro.core.aggregates import AggregateState

            state = AggregateState.from_core(definition.aggregate, adopted)
            view = MaterializedView(definition, state.visible_relation(), state)
            if verify:
                from repro.core.consistency import check_view_consistency

                check_view_consistency(view, self._combined_instances())
            return self._install_view(view, referenced, policy)
        expected = definition.output_schema()
        if tuple(contents.schema.names) != tuple(expected.names):
            raise MaintenanceError(
                f"restored contents for view {name!r} have schema "
                f"{list(contents.schema.names)}, expected {list(expected.names)}"
            )
        adopted = Relation(expected)
        for values, count in contents.items():
            adopted.add(tuple(contents.schema.decode_values(values)), count)
        view = MaterializedView(definition, adopted)
        if verify:
            from repro.core.consistency import check_view_consistency

            check_view_consistency(view, self._combined_instances())
        return self._install_view(view, referenced, policy)

    def _validated_definition(
        self, name: str, expression: Expression
    ) -> tuple[ViewDefinition, frozenset[str]]:
        """Shared registration checks for new and restored views."""
        if name in self._views:
            raise MaintenanceError(f"view {name!r} is already defined")
        if name in self.database.relation_names():
            raise MaintenanceError(
                f"view name {name!r} collides with a base relation; views "
                "and relations share one namespace (stacked views resolve "
                "references through it)"
            )
        definition = ViewDefinition(name, expression, self._combined_catalog())
        referenced = frozenset(definition.normal_form.relation_names)
        view_deps = referenced & self._views.keys()
        for dep in sorted(view_deps):
            if self._policies[dep] is not MaintenancePolicy.IMMEDIATE:
                raise MaintenanceError(
                    f"view {name!r} references deferred view {dep!r}; "
                    "stacked views require IMMEDIATE upstream maintenance"
                )
        return definition, referenced

    def _install_view(
        self,
        view: MaterializedView,
        referenced: frozenset[str],
        policy: MaintenancePolicy,
    ) -> MaterializedView:
        name = view.definition.name
        view.last_refresh_sequence = self.database.log.last_sequence()
        # Re-registration under a previously used name must never serve
        # the old definition's plan (drop_view already invalidates; this
        # also covers plans that survived an earlier detach()).
        self._plan_cache.invalidate(name)
        self._views[name] = view
        self._policies[name] = policy
        self._pending[name] = {}
        self._commits_since_refresh[name] = 0
        self._stats[name] = MaintenanceStats()
        self._dependencies[name] = referenced
        if self.use_plan_cache:
            # Compile eagerly: registration is the natural compile
            # point, and the first transaction then executes a cached
            # plan like every later one.
            self._plan_cache.put(name, self._compile_plan(view.definition))
        return view

    def drop_view(self, name: str) -> None:
        """Forget a view (its contents are discarded)."""
        self._require_view(name)
        dependants = [
            other
            for other, deps in self._dependencies.items()
            if name in deps and other != name
        ]
        if dependants:
            raise MaintenanceError(
                f"cannot drop view {name!r}: referenced by {sorted(dependants)}"
            )
        del self._views[name]
        del self._policies[name]
        del self._pending[name]
        del self._commits_since_refresh[name]
        del self._stats[name]
        del self._dependencies[name]
        self._subscribers.pop(name, None)
        self._plan_cache.invalidate(name)

    # ------------------------------------------------------------------
    # Compiled plans
    # ------------------------------------------------------------------
    def _compile_plan(self, definition: ViewDefinition) -> CompiledViewPlan:
        """Build a fresh compiled plan for one registered definition."""
        referenced = frozenset(definition.normal_form.relation_names)
        return CompiledViewPlan(
            definition,
            self.database,
            self._combined_catalog(),
            view_operands=referenced & self._views.keys(),
            share_subexpressions=self.share_subexpressions,
            use_indexes=self.use_indexes,
            use_codegen=self.use_codegen,
            use_counter_free=self.use_counter_free,
            codegen_stats=self._codegen_stats,
        )

    def expected_plan_fingerprint(self, name: str) -> tuple:
        """The fingerprint a served plan for ``name`` must carry *now*.

        Combines the registered definition's structural fingerprint
        with the current execution mode (codegen version vs
        interpreter) — the value the cache audit in the simulation
        oracle compares cached plans against.
        """
        self._require_view(name)
        definition = self._views[name].definition
        return plan_fingerprint(
            definition.normal_form, self.use_codegen, definition.aggregate
        )

    def codegen_stats(self) -> CodegenStats:
        """Cumulative codegen counters across all plans and recompiles."""
        return self._codegen_stats

    def kernel_source(self, name: str) -> str:
        """The generated kernel source for one view's current plan."""
        self._require_view(name)
        return self._plan_for(name).kernel_source()

    def _plan_for(self, name: str) -> CompiledViewPlan:
        """The plan a maintenance call executes — cached when possible.

        With the cache enabled this is a hit except right after an
        invalidation (the miss recompiles and re-caches).  With the
        cache disabled every call is a counted miss compiling a
        throwaway plan — the E21 ablation's cost model.
        """
        view = self._views[name]
        stats = self._stats[name]
        fingerprint = plan_fingerprint(
            view.definition.normal_form, self.use_codegen, view.definition.aggregate
        )
        plan = self._plan_cache.get(name, fingerprint)
        if plan is not None:
            stats.plan_cache_hits += 1
            return plan
        stats.plan_cache_misses += 1
        plan = self._compile_plan(view.definition)
        if self.use_plan_cache:
            self._plan_cache.put(name, plan)
        return plan

    def compiled_plan(self, name: str) -> CompiledViewPlan | None:
        """The currently cached plan for ``name`` (None when absent).

        Purely observational: does not compile and does not touch the
        hit/miss counters.
        """
        self._require_view(name)
        return self._plan_cache.peek(name)

    def plan_cache_stats(self) -> dict[str, int]:
        """Maintainer-wide plan-cache counters (hits/misses/invalidations)."""
        return self._plan_cache.stats.as_dict()

    def plan_fingerprints(self) -> dict[str, tuple]:
        """Cached plans' definition fingerprints (see PlanCache.fingerprints)."""
        return self._plan_cache.fingerprints()

    def _on_ddl(self, event: str, relation_name: str) -> None:
        """Invalidate plans a schema change could have staled.

        Index drops are the correctness-critical case — a cached plan
        holds direct bindings to index objects that stop being
        maintained the moment they leave the manager.  Index creation,
        relation drop/re-creation and anything else touching an operand
        invalidate too: the cheapest sound answer is to recompile, and
        compilation is exactly what this cache made rare.  The one
        exception is index creation *by a running plan* (the lazy
        binding path), which must not invalidate the plan executing it.
        """
        if event == "create_index" and self._in_maintenance:
            return
        for name, deps in self._dependencies.items():
            if relation_name in deps and self._plan_cache.invalidate(name):
                self._stats[name].plan_cache_invalidations += 1

    # ------------------------------------------------------------------
    # Combined catalogs (base relations + registered views)
    # ------------------------------------------------------------------
    def _combined_catalog(self):
        catalog = dict(self.database.schema_catalog())
        for view_name, view in self._views.items():
            catalog[view_name] = view.contents.schema
        return catalog

    def _combined_instances(self):
        instances = dict(self.database.instances())
        for view_name, view in self._views.items():
            instances[view_name] = view.contents
        return instances

    def subscribe(
        self, name: str, callback: Callable[[MaterializedView, Delta], None]
    ) -> None:
        """Receive every non-empty delta applied to view ``name``.

        Callbacks run right after the delta is applied (and after
        ``auto_verify``, when enabled), inside the commit for immediate
        views and inside ``refresh()`` for deferred ones.  This is the
        natural hook for alerters [BC79]: the view delta *is* the alert
        stream.
        """
        self._require_view(name)
        self._subscribers.setdefault(name, []).append(callback)

    def unsubscribe(
        self, name: str, callback: Callable[[MaterializedView, Delta], None]
    ) -> None:
        """Remove a previously registered subscriber (no-op if absent)."""
        with contextlib.suppress(ValueError):
            self._subscribers.get(name, []).remove(callback)

    def view(self, name: str) -> MaterializedView:
        """The materialized view registered under ``name``."""
        self._require_view(name)
        return self._views[name]

    def view_names(self) -> tuple[str, ...]:
        """All registered view names, sorted."""
        return tuple(sorted(self._views))

    def stats(self, name: str) -> MaintenanceStats:
        """Maintenance counters for one view."""
        self._require_view(name)
        return self._stats[name]

    def all_stats(self) -> dict[str, dict[str, int]]:
        """Every view's maintenance counters as plain dicts.

        The JSON-ready form served by the view-server's ``stats`` op
        and convenient for ad-hoc reporting; per-view
        :class:`MaintenanceStats` objects stay available via
        :meth:`stats`.
        """
        return {name: self._stats[name].as_dict() for name in self.view_names()}

    def policy(self, name: str) -> MaintenancePolicy:
        """The registered maintenance policy for one view."""
        self._require_view(name)
        return self._policies[name]

    def explain(self, name: str, changed_relations: Iterable[str]) -> str:
        """Describe the compiled maintenance plan for a hypothetical update.

        ``changed_relations`` names the base relations a transaction
        would touch; the returned text shows the invariant/variant
        screening split, the truth-table rows, the delta-first join
        order with its pushdown decisions, and the hash index each OLD
        probe binds — the plan a real transaction with this shape would
        execute, served from the same cache.
        """
        self._require_view(name)
        return self._plan_for(name).describe(changed_relations)

    def analyze(self) -> "AnalysisReport":
        """Run the full static analyzer over every registered view.

        Per-view checks (unsatisfiable conditions, dead disjuncts,
        redundant atoms, loosenable bounds, static irrelevance under
        declared constraints, compiled-plan lint) plus the cross-view
        subsumption/equivalence pass.  Returns an
        :class:`~repro.analysis.AnalysisReport`; rendering it with
        ``format()`` or ``as_json()`` is deterministic for a given
        catalog state.
        """
        from repro.analysis import analyze_maintainer

        return analyze_maintainer(self)

    def recommended_indexes(self, name: str) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """Indexes the planner would probe while maintaining this view.

        Simulates the delta-first plan for every single-relation update
        (the common case) and collects, for each OLD operand joined by
        equality links, the base relation and link attributes — exactly
        the indexes the lazy path would create on first use.  Returns
        sorted ``(relation_name, attributes)`` pairs.
        """
        self._require_view(name)
        plan = self._plan_for(name)
        normal_form = plan.execution_normal_form
        recommendations: set[tuple[str, tuple[str, ...]]] = set()
        for changed in range(len(normal_form.occurrences)):
            planner = plan.planner_for([changed])
            for step in planner.steps:
                if step.position == changed or not step.link_attr_names:
                    continue
                occurrence = normal_form.occurrences[step.position]
                if occurrence.name in self._views:
                    continue  # view operands carry no persistent index
                base_attrs = tuple(
                    occurrence.inverse[q] for q in step.link_attr_names
                )
                recommendations.add((occurrence.name, base_attrs))
        return tuple(sorted(recommendations))

    def create_recommended_indexes(self, name: str) -> int:
        """Eagerly create every recommended index; returns how many.

        Without this, the same indexes appear lazily on first use; with
        it, the first maintenance after a bulk load avoids the one-off
        index-build latency.
        """
        created = 0
        for relation_name, attrs in self.recommended_indexes(name):
            before = self.database.indexes.lookup(relation_name, attrs)
            self.database.create_index(relation_name, attrs)
            if before is None:
                created += 1
        return created

    def report(self) -> str:
        """A formatted per-view maintenance summary table."""
        from repro.bench.reporting import format_table

        rows = []
        for name in self.view_names():
            stats = self._stats[name]
            rows.append(
                [
                    name,
                    self._policies[name].value,
                    len(self._views[name].contents),
                    stats.transactions_seen,
                    stats.transactions_skipped,
                    stats.deltas_applied,
                    stats.tuples_screened,
                    stats.tuples_irrelevant,
                ]
            )
        return format_table(
            [
                "view",
                "policy",
                "tuples",
                "seen",
                "skipped",
                "applied",
                "screened",
                "irrelevant",
            ],
            rows,
            title="view maintenance summary",
        )

    def detach(self) -> None:
        """Stop observing commits (views stop being maintained)."""
        self.database.remove_commit_hook(self._on_commit)
        self.database.remove_ddl_hook(self._on_ddl)

    def _require_view(self, name: str) -> None:
        if name not in self._views:
            raise UnknownViewError(f"no view named {name!r}")

    # ------------------------------------------------------------------
    # Commit-side
    # ------------------------------------------------------------------
    def _on_commit(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        if not deltas:
            return
        # Views are processed in definition order: upstream views exist
        # before anything that references them, so each view's operand
        # deltas — base-relation deltas from the transaction plus the
        # view deltas just applied upstream — are ready when needed.
        applied_view_deltas: dict[str, Delta] = {}
        for name, view in self._views.items():
            effective: dict[str, Delta] = {}
            for dep in self._dependencies[name]:
                delta = deltas.get(dep)
                if delta is None:
                    delta = applied_view_deltas.get(dep)
                if delta is not None and not delta.is_empty():
                    effective[dep] = delta
            if not effective:
                continue
            if self._policies[name] is MaintenancePolicy.IMMEDIATE:
                view_delta = self._maintain(name, view, effective)
                if not view_delta.is_empty():
                    applied_view_deltas[name] = view_delta
            else:
                self._commits_since_refresh[name] += 1
                pending = self._pending[name]
                for relation_name, delta in effective.items():
                    existing = pending.get(relation_name)
                    composed = (
                        delta if existing is None else existing.compose(delta)
                    )
                    if composed.is_empty():
                        pending.pop(relation_name, None)
                    else:
                        pending[relation_name] = composed

    def apply_deltas(self, txn_id: int, deltas: Mapping[str, Delta]) -> None:
        """Maintain every view from externally supplied net deltas.

        The commit pipeline calls the same entry point through its
        hook; this public seam exists for **base-free hosts**
        (``base_free=True`` followers and shard nodes): they hold no
        base-relation rows to commit against, so they decode shipped
        deltas and feed them here directly.  Stacked views, deferred
        composition, subscribers and statistics all behave exactly as
        for a local commit.  Callers own sequencing: deltas must arrive
        in commit order, and the database log must be advanced so
        ``last_refresh_sequence`` bookkeeping stays meaningful.
        """
        self._on_commit(txn_id, deltas)

    # ------------------------------------------------------------------
    # Self-maintainability
    # ------------------------------------------------------------------
    def self_maintainability(self, name: str) -> "SelfMaintainability":
        """Classify one registered view (see
        :func:`repro.scheduler.selfmaint.classify_self_maintainability`);
        the proof uses the database's declared constraints and keys."""
        self._require_view(name)
        from repro.scheduler.selfmaint import classify_self_maintainability

        return classify_self_maintainability(
            self._views[name].definition,
            self.database.constraints,
            self.database.keys,
        )

    def is_self_maintainable(self, name: str) -> bool:
        """Can this view be maintained from its contents + deltas alone?

        True exactly when a base-free host could carry the view: no
        maintenance step ever consults base-relation state.  Sound but
        not complete (a ``False`` may be conservative).
        """
        return self.self_maintainability(name).self_maintainable

    # ------------------------------------------------------------------
    # Refresh-side (deferred views)
    # ------------------------------------------------------------------
    def refresh(self, name: str) -> bool:
        """Bring a deferred view up to date; True when work was done.

        The composed deltas accumulated since the last refresh behave
        exactly like one large transaction's net effect, so the same
        filter + differential pipeline applies (the paper's closing
        observation that its approach "also applies to this
        environment").
        """
        self._require_view(name)
        view = self._views[name]
        pending = self._pending[name]
        self._commits_since_refresh[name] = 0
        if not pending:
            view.last_refresh_sequence = self.database.log.last_sequence()
            return False
        self._pending[name] = {}
        self._maintain(name, view, pending)
        return True

    def pending_deltas(self, name: str) -> dict[str, Delta]:
        """A deferred view's composed, not-yet-applied deltas."""
        self._require_view(name)
        return dict(self._pending[name])

    def backlog(self, name: str) -> dict[str, int]:
        """How stale one view is, as four observable measures.

        * ``pending_relations`` — relations with a composed pending
          delta (deferred views; 0 for immediate ones);
        * ``pending_delta_size`` — net tuples across those composed
          deltas (inserts plus deletes after cancellation);
        * ``commits_since_refresh`` — commits that touched the view's
          operands since the last refresh (composition may net the
          *deltas* away, but the commit count still ages the snapshot);
        * ``sequence_lag`` — log sequences between the database head
          and the view's ``last_refresh_sequence``.

        The `stats` server op and the CLI ``stats <view>`` line expose
        these, and the staleness-SLA scheduler prioritizes by them.
        """
        self._require_view(name)
        pending = self._pending[name]
        return {
            "pending_relations": len(pending),
            "pending_delta_size": sum(
                delta.insert_count() + delta.delete_count()
                for delta in pending.values()
            ),
            "commits_since_refresh": self._commits_since_refresh[name],
            "sequence_lag": max(
                0,
                self.database.log.last_sequence()
                - self._views[name].last_refresh_sequence,
            ),
        }

    # ------------------------------------------------------------------
    # Quiescent points
    # ------------------------------------------------------------------
    def quiesce(self) -> tuple[str, ...]:
        """Bring every view up to date; returns the names that changed.

        Immediate views are always current, so this amounts to
        refreshing every deferred view's composed backlog.  Afterwards
        the maintainer is at a *quiescent point*: every registered view
        equals its definition evaluated against the current base state
        — the precondition :meth:`verify_all` checks, and the moment
        the simulation harness's oracle runs.
        """
        refreshed = []
        for name in self.view_names():
            if self._policies[name] is MaintenancePolicy.DEFERRED:
                if self.refresh(name):
                    refreshed.append(name)
        return tuple(refreshed)

    def verify_all(
        self, raise_on_mismatch: bool = True
    ) -> "dict[str, ConsistencyReport]":
        """Full-recompute oracle over every registered view.

        Each view's defining expression is evaluated from scratch
        against the current base relations (and upstream views, for
        stacked definitions) and diffed — multiplicity counters
        included — against the maintained contents.  Only meaningful at
        a quiescent point (:meth:`quiesce` first, or no deferred
        backlog).  With ``raise_on_mismatch`` the first divergence
        raises :class:`~repro.errors.MaintenanceError`; otherwise the
        per-view reports are returned for inspection either way.
        """
        from repro.core.consistency import check_view_consistency

        instances = self._combined_instances()
        reports: dict[str, ConsistencyReport] = {}
        for name in self.view_names():
            reports[name] = check_view_consistency(
                self._views[name], instances, raise_on_mismatch=raise_on_mismatch
            )
        return reports

    # ------------------------------------------------------------------
    # The filter + differential pipeline
    # ------------------------------------------------------------------
    def _maintain(
        self, name: str, view: MaterializedView, deltas: Mapping[str, Delta]
    ) -> Delta:
        """Execute the compiled plan; returns the applied view delta
        (empty when everything was screened)."""
        stats = self._stats[name]
        stats.transactions_seen += 1
        plan = self._plan_for(name)

        self._in_maintenance = True
        try:
            relevant: dict[str, Delta] = {}
            for relation_name, delta in deltas.items():
                if self.use_relevance_filter:
                    filtered, filter_stats = plan.screen(relation_name, delta)
                    stats.tuples_screened += filter_stats.checked
                    stats.tuples_irrelevant += filter_stats.irrelevant
                    stats.tuples_static_dropped += filter_stats.static_dropped
                    if not filtered.is_empty():
                        relevant[relation_name] = filtered
                else:
                    if not delta.is_empty():
                        relevant[relation_name] = delta

            if not relevant:
                # Every update was provably irrelevant: the view is
                # already up to date — the payoff Section 4 is after.
                stats.transactions_skipped += 1
                charge("transactions_skipped_irrelevant")
                view.last_refresh_sequence = self.database.log.last_sequence()
                return Delta(view.contents.schema)

            view_delta = plan.compute_delta(self._combined_instances(), relevant)
            if view.aggregate_state is not None:
                # The pipeline produced a delta over the SPJ *core*; the
                # fold stage turns it into the visible group-row delta
                # every downstream consumer (contents, subscribers,
                # changefeeds, stacked views) sees.
                view_delta = plan.fold_aggregate(view.aggregate_state, view_delta)
        finally:
            self._in_maintenance = False
        stats.view_tuples_inserted += len(view_delta.inserted)
        stats.view_tuples_deleted += len(view_delta.deleted)
        view.apply_delta(view_delta)
        stats.deltas_applied += 1
        view.last_refresh_sequence = self.database.log.last_sequence()

        if self.auto_verify:
            from repro.core.consistency import check_view_consistency

            check_view_consistency(view, self._combined_instances())

        if not view_delta.is_empty():
            for callback in self._subscribers.get(name, ()):
                callback(view, view_delta)
        return view_delta

    def __repr__(self) -> str:
        return (
            f"<ViewMaintainer {len(self._views)} views, "
            f"filter={'on' if self.use_relevance_filter else 'off'}, "
            f"sharing={'on' if self.share_subexpressions else 'off'}, "
            f"plan_cache={'on' if self.use_plan_cache else 'off'} "
            f"({len(self._plan_cache)} plans)>"
        )
