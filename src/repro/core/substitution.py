"""Substitution and formula classification (Definitions 4.1–4.3).

Given a view ``v = π_X(σ_C(Y)(r₁ × … × r_p))`` and a tuple ``t``
inserted into or deleted from ``r_i``:

* ``Y₁ = R_i ∩ Y`` is the set of condition variables the tuple binds;
* ``C(t, Y₂)`` — the *substitution of t for Y₁ in C* (Definition 4.1) —
  replaces each occurrence of a variable ``A ∈ Y₁`` by the constant
  ``t(A)``;
* Definition 4.2 then classifies each atomic formula of the substituted
  conjunction:

  - **variant evaluable** — all of the atom's variables were
    substituted; the atom is now ground (``c op d``) and simply true or
    false;
  - **variant non-evaluable** — exactly one variable was substituted;
    the atom became a single-variable bound (``z op c``);
  - **invariant** — the atom mentions no substituted variable and is
    untouched.

The classification is what lets Algorithm 4.1 build the invariant part
of the constraint graph once per batch of tuples and redo only the
variant part per tuple.

Definition 4.3 extends substitution to simultaneous tuples from several
relations; :func:`binding_for` builds the combined variable binding in
both cases.
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.algebra.expressions import Occurrence
from repro.algebra.schema import RelationSchema
from repro.errors import ConditionError

ValueTuple = tuple[int, ...]


class FormulaKind(enum.Enum):
    """Definition 4.2's three classes of atomic formulae."""

    INVARIANT = "invariant"
    VARIANT_EVALUABLE = "variant-evaluable"
    VARIANT_NON_EVALUABLE = "variant-non-evaluable"


def classify_atom(atom: Atom, substituted: frozenset[str] | set[str]) -> FormulaKind:
    """Classify one atom with respect to a set of substituted variables.

    ``substituted`` is Y₁ — the variables that a tuple substitution
    binds.  Atoms that are already ground before substitution count as
    variant evaluable only if they mention a substituted variable —
    a pre-existing ground atom cannot occur in a well-formed condition
    (the parser folds it), but defensive handling keeps the function
    total: ground atoms with no substituted variables are classified
    invariant.

    >>> classify_atom(Atom("A", "<", 10), {"A"})
    <FormulaKind.VARIANT_EVALUABLE: 'variant-evaluable'>
    >>> classify_atom(Atom("B", "=", "C"), {"B"})
    <FormulaKind.VARIANT_NON_EVALUABLE: 'variant-non-evaluable'>
    >>> classify_atom(Atom("C", ">", 5), {"A", "B"})
    <FormulaKind.INVARIANT: 'invariant'>
    """
    variables = atom.variables()
    touched = variables & set(substituted)
    if not touched:
        return FormulaKind.INVARIANT
    if touched == variables:
        return FormulaKind.VARIANT_EVALUABLE
    return FormulaKind.VARIANT_NON_EVALUABLE


class SplitConjunction:
    """One conjunction split into the three classes of Definition 4.2."""

    __slots__ = ("invariant", "variant_evaluable", "variant_non_evaluable")

    def __init__(
        self,
        invariant: Sequence[Atom],
        variant_evaluable: Sequence[Atom],
        variant_non_evaluable: Sequence[Atom],
    ) -> None:
        self.invariant = tuple(invariant)
        self.variant_evaluable = tuple(variant_evaluable)
        self.variant_non_evaluable = tuple(variant_non_evaluable)

    def __repr__(self) -> str:
        return (
            f"<SplitConjunction inv={len(self.invariant)} "
            f"ve={len(self.variant_evaluable)} "
            f"vne={len(self.variant_non_evaluable)}>"
        )


def split_conjunction(
    conjunction: Conjunction, substituted: frozenset[str] | set[str]
) -> SplitConjunction:
    """Partition a conjunction's atoms per Definition 4.2.

    The atoms are returned *unsubstituted*; callers substitute per
    tuple.  ``C_N`` in Algorithm 4.1 is then
    ``C_INV ∧ C_VEVAL ∧ C_VNEVAL`` where the pieces correspond to the
    three sequences here.
    """
    invariant: list[Atom] = []
    evaluable: list[Atom] = []
    non_evaluable: list[Atom] = []
    for atom in conjunction.atoms:
        kind = classify_atom(atom, substituted)
        if kind is FormulaKind.INVARIANT:
            invariant.append(atom)
        elif kind is FormulaKind.VARIANT_EVALUABLE:
            evaluable.append(atom)
        else:
            non_evaluable.append(atom)
    return SplitConjunction(invariant, evaluable, non_evaluable)


def binding_for(
    occurrence: Occurrence, schema: RelationSchema, values: ValueTuple
) -> dict[str, int]:
    """The variable binding a tuple induces on one occurrence.

    Maps each *qualified* attribute name of the occurrence to the
    tuple's encoded value, which is what
    :meth:`repro.algebra.conditions.Condition.substitute` consumes.
    """
    if len(values) != len(schema):
        raise ConditionError(
            f"tuple arity {len(values)} does not match schema {schema.names}"
        )
    return {
        occurrence.rename[name]: values[i] for i, name in enumerate(schema.names)
    }


def combined_binding(
    bindings: Sequence[Mapping[str, int]],
) -> dict[str, int]:
    """Merge several occurrence bindings (Definition 4.3).

    Definition 4.3 requires the relation schemes to be disjoint; in the
    qualified namespace of a normal form that is guaranteed for
    distinct occurrences, so a key collision indicates caller error.
    """
    merged: dict[str, int] = {}
    for binding in bindings:
        overlap = merged.keys() & binding.keys()
        if overlap:
            raise ConditionError(
                f"bindings overlap on {sorted(overlap)}; Definition 4.3 "
                "requires disjoint relation schemes"
            )
        merged.update(binding)
    return merged


def substitute_condition(
    condition: Condition, binding: Mapping[str, int]
) -> Condition:
    """``C(t, Y₂)`` / ``C(t₁, …, t_k, Y₂)`` — Definitions 4.1 and 4.3.

    A thin alias over :meth:`Condition.substitute`, exported so that
    callers reading alongside the paper find the definition by name.
    """
    return condition.substitute(binding)
