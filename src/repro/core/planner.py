"""Evaluation of truth-table rows, with shared subexpressions.

Section 5.3 observes that once the truth-table rows to evaluate are
known, "we can further reduce the cost of materializing the view by
using an algorithm to determine a good order for execution of the
joins.  Notice that a new feature of our problem is the possibility of
saving computation by re-using partial subexpressions appearing in
multiple rows within the table."  Section 5.4 adds that each row's SPJ
expression can be evaluated by "some known algorithm" — the paper cites
QUEL decomposition; we substitute a direct pipelined hash-join
evaluator (see DESIGN.md).

This planner implements those ideas concretely:

* **Order** — operands are evaluated delta-first (changed positions,
  then unchanged ones).  Deltas are typically tiny, so intermediate
  results stay small and each subsequent join probes a large "old"
  operand with few keys.

* **Sharing** — rows are evaluated left-deep over that fixed order and
  every prefix result is memoized on its (position, choice) signature.
  Because unchanged operands are OLD in every row, rows share all work
  up to the first differing changed choice; with ``k`` changed
  relations the 2^k − 1 rows collapse into a binary trie of partial
  joins.  Experiment E13 measures the effect of turning this off.

* **Selection pushdown** — atoms of the view condition that appear in
  every DNF disjunct are applied as early as their variables are bound:
  equality atoms spanning the frontier become hash-join keys (with the
  paper's ``x = y + c`` offsets honoured), single-operand atoms become
  operand prefilters, and the rest become step post-filters.  With a
  purely conjunctive condition nothing is left for a final pass; a
  multi-disjunct condition is re-checked once at the end.

* **Index probes** — an optional ``index_probe`` callback lets the
  caller (the view maintainer) answer OLD-operand probes from a
  persistent hash index instead of materializing and hashing the whole
  base relation per evaluation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.algebra.conditions import Atom, Condition, Var
from repro.algebra.evaluate import compile_condition
from repro.algebra.expressions import NormalForm
from repro.algebra.relation import TaggedRelation
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag, combine_join_tags
from repro.core.truthtable import DeltaRowChoice, Rows
from repro.instrumentation import charge

ValueTuple = tuple[int, ...]

#: Rows returned by a probe: (encoded values, tag, count).
ProbeRow = tuple[ValueTuple, Tag, int]
#: A probe function: join-key values -> matching operand rows.
ProbeFn = Callable[[ValueTuple], Iterable[ProbeRow]]
#: Caller-provided index hook:
#: (position, link_attr_qualified_names) -> ProbeFn or None.
IndexProbe = Callable[[int, tuple[str, ...]], Optional[ProbeFn]]


class StepPlan:
    """Static plan for joining one operand onto the accumulator.

    Step plans are pure *plan-construction* artifacts: they hold the
    resolved hash-join links, prefilter/postfilter predicates and key
    positions, and are reused verbatim across every execution of the
    owning :class:`RowPlanner` (and, through
    :class:`repro.core.compiled.CompiledViewPlan`, across transactions).
    """

    __slots__ = (
        "position",
        "operand_schema",
        "acc_schema",
        "eq_links",
        "link_attr_names",
        "prefilter",
        "postfilter",
        "prefilter_atoms",
        "postfilter_atoms",
        "operand_key_positions",
    )

    def __init__(
        self,
        position: int,
        operand_schema: RelationSchema,
        acc_schema: RelationSchema,
        eq_links: Sequence[tuple[int, str, int]],
        prefilter_atoms: Sequence[Atom],
        postfilter_atoms: Sequence[Atom],
    ) -> None:
        self.position = position
        self.operand_schema = operand_schema
        self.acc_schema = acc_schema
        # (acc value position, operand attr name, shift): the operand
        # attribute must equal acc[pos] + shift.
        self.eq_links = tuple(eq_links)
        self.link_attr_names = tuple(name for _, name, _ in self.eq_links)
        self.operand_key_positions = tuple(
            operand_schema.index(name) for name in self.link_attr_names
        )
        # The raw atom lists are retained alongside the compiled
        # closures: the codegen backend re-emits them as inline source.
        self.prefilter_atoms = tuple(prefilter_atoms)
        self.postfilter_atoms = tuple(postfilter_atoms)
        self.prefilter = (
            compile_condition(Condition.of_atoms(prefilter_atoms), operand_schema)
            if prefilter_atoms
            else None
        )
        self.postfilter = (
            compile_condition(Condition.of_atoms(postfilter_atoms), acc_schema)
            if postfilter_atoms
            else None
        )

    def describe(self, operand_name: str, step_index: int) -> str:
        """One human-readable line for this step of the plan."""
        parts = [f"step {step_index}: {operand_name}"]
        if self.eq_links:
            links = ", ".join(
                f"{name} = acc[{pos}]{f' + {shift}' if shift else ''}"
                for pos, name, shift in self.eq_links
            )
            parts.append(f"hash-join on [{links}]")
        elif step_index:
            parts.append("cross join (no equality link)")
        if self.prefilter is not None:
            parts.append("prefiltered")
        if self.postfilter is not None:
            parts.append("post-filtered")
        return "; ".join(parts)


class RowPlanner:
    """Evaluates a batch of truth-table rows for one view and one
    transaction's operands.

    Parameters
    ----------
    normal_form:
        The view in paper normal form.
    changed_positions:
        Occurrence positions with a non-empty (filtered) delta.
    share_subexpressions:
        Memoize prefix joins across rows (default on; E13's ablation
        switch).
    index_probe:
        Optional hook answering OLD-operand probes from an index.
    """

    def __init__(
        self,
        normal_form: NormalForm,
        changed_positions: Sequence[int],
        share_subexpressions: bool = True,
        index_probe: IndexProbe | None = None,
    ) -> None:
        self.normal_form = normal_form
        self.share = share_subexpressions
        self.index_probe = index_probe
        self.changed = tuple(sorted(set(changed_positions)))
        unchanged = [
            i for i in range(len(normal_form.occurrences)) if i not in self.changed
        ]
        #: Evaluation order: delta positions first, then unchanged.
        self.order: tuple[int, ...] = self.changed + tuple(unchanged)
        self._build_steps()

    # ------------------------------------------------------------------
    # Static planning
    # ------------------------------------------------------------------
    def _operand_schema(self, position: int) -> RelationSchema:
        occurrence = self.normal_form.occurrences[position]
        qualified = self.normal_form.qualified_schema
        return qualified.project_schema(occurrence.qualified_names())

    def _build_steps(self) -> None:
        nf = self.normal_form
        disjuncts = nf.condition.disjuncts
        if disjuncts:
            pushable = list(disjuncts[0].atoms)
            for other in disjuncts[1:]:
                other_set = set(other.atoms)
                pushable = [a for a in pushable if a in other_set]
        else:
            pushable = []
        self._needs_final_filter = len(disjuncts) != 1

        # Ground atoms shared by every disjunct evaluate at plan time: a
        # false one makes the whole condition unsatisfiable, so no row
        # can ever contribute anything.
        self._always_empty = False
        ground = [a for a in pushable if a.is_ground()]
        pushable = [a for a in pushable if not a.is_ground()]
        for atom in ground:
            if not atom.truth_value():
                self._always_empty = True

        assigned = [False] * len(pushable)
        bound: set[str] = set()
        steps: list[StepPlan] = []
        acc_schema: RelationSchema | None = None

        for step_index, position in enumerate(self.order):
            operand_schema = self._operand_schema(position)
            operand_names = set(operand_schema.names)
            new_acc_schema = (
                operand_schema
                if acc_schema is None
                else acc_schema.concat(operand_schema)
            )

            eq_links: list[tuple[int, str, int]] = []
            prefilter_atoms: list[Atom] = []
            postfilter_atoms: list[Atom] = []
            for idx, atom in enumerate(pushable):
                if assigned[idx]:
                    continue
                atom_vars = atom.variables()
                if not atom_vars <= (bound | operand_names):
                    continue
                if not atom_vars & operand_names:
                    continue  # should have been applied at an earlier step
                if atom_vars <= operand_names:
                    prefilter_atoms.append(atom)
                    assigned[idx] = True
                    continue
                link = self._as_eq_link(atom, bound, operand_schema, acc_schema)
                if link is not None:
                    eq_links.append(link)
                    assigned[idx] = True
                    continue
                postfilter_atoms.append(atom)
                assigned[idx] = True

            steps.append(
                StepPlan(
                    position,
                    operand_schema,
                    new_acc_schema,
                    eq_links,
                    prefilter_atoms,
                    postfilter_atoms,
                )
            )
            bound |= operand_names
            acc_schema = new_acc_schema

        assert acc_schema is not None
        self._steps: tuple[StepPlan, ...] = tuple(steps)
        self._final_schema = acc_schema
        self._final_filter = (
            compile_condition(nf.condition, acc_schema)
            if self._needs_final_filter
            else None
        )
        self._projection_positions = tuple(
            acc_schema.index(qualified) for _, qualified in nf.projection
        )
        self._output_schema = nf.output_schema()

    @staticmethod
    def _as_eq_link(
        atom: Atom,
        bound: set[str],
        operand_schema: RelationSchema,
        acc_schema: RelationSchema | None,
    ) -> tuple[int, str, int] | None:
        """Interpret ``atom`` as a hash-join key linking acc to operand.

        Returns ``(acc_position, operand_attr, shift)`` such that the
        join requires ``operand_attr == acc_values[acc_position] + shift``,
        or ``None`` when the atom is not a usable equality link.
        """
        if acc_schema is None or atom.op != "=" or not atom.is_two_variable():
            return None
        assert isinstance(atom.left, Var) and isinstance(atom.right, Var)
        x, y, c = atom.left.name, atom.right.name, atom.offset
        # Atom means value(x) = value(y) + c.
        if x in bound and y in operand_schema.nameset:
            # value(y) = value(x) - c
            return (acc_schema.index(x), y, -c)
        if y in bound and x in operand_schema.nameset:
            # value(x) = value(y) + c
            return (acc_schema.index(y), x, c)
        return None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_rows(
        self,
        rows: Iterable[Rows],
        operands: Sequence[Mapping[DeltaRowChoice, TaggedRelation]],
        index_probe: IndexProbe | None = None,
    ) -> TaggedRelation:
        """Evaluate every row and merge the projected, tagged results.

        ``operands[position][choice]`` supplies the tagged tuples of
        each occurrence under each truth-table choice; DELTA entries are
        only consulted for changed positions.  ``index_probe`` answers
        OLD-operand probes for *this* execution; when omitted, the hook
        supplied at construction applies.  Separating the two is what
        lets one cached planner serve many transactions, each with its
        own delta-screened probe closure.
        """
        if index_probe is None:
            index_probe = self.index_probe
        memo: dict[tuple, TaggedRelation] = {}
        hash_cache: dict[tuple[int, DeltaRowChoice], dict] = {}
        merged = TaggedRelation(self._output_schema)
        if self._always_empty:
            return merged

        for row in rows:
            charge("delta_rows_evaluated")
            result = self._eval_prefix(
                len(self._steps) - 1, row, operands, memo, hash_cache, index_probe
            )
            self._project_into(result, merged)
        return merged

    def _eval_prefix(
        self,
        step_index: int,
        row: Rows,
        operands: Sequence[Mapping[DeltaRowChoice, TaggedRelation]],
        memo: dict,
        hash_cache: dict,
        index_probe: IndexProbe | None,
    ) -> TaggedRelation:
        key = tuple(row[self._steps[j].position] for j in range(step_index + 1))
        if self.share:
            cached = memo.get(key)
            if cached is not None:
                charge("subexpression_memo_hits")
                return cached

        step = self._steps[step_index]
        choice = row[step.position]
        if step_index == 0:
            result = self._load_first_operand(step, choice, operands)
        else:
            acc = self._eval_prefix(
                step_index - 1, row, operands, memo, hash_cache, index_probe
            )
            result = self._join_step(
                acc, step, choice, operands, hash_cache, index_probe
            )

        if self.share:
            memo[key] = result
        return result

    def _load_first_operand(
        self,
        step: StepPlan,
        choice: DeltaRowChoice,
        operands: Sequence[Mapping[DeltaRowChoice, TaggedRelation]],
    ) -> TaggedRelation:
        source = operands[step.position][choice]
        out = TaggedRelation(step.operand_schema)
        prefilter = step.prefilter
        for values, tag, count in source.items():
            charge("tuples_scanned")
            if prefilter is None or prefilter(values):
                out.add(values, tag, count)
        return out

    def _join_step(
        self,
        acc: TaggedRelation,
        step: StepPlan,
        choice: DeltaRowChoice,
        operands: Sequence[Mapping[DeltaRowChoice, TaggedRelation]],
        hash_cache: dict,
        index_probe: IndexProbe | None,
    ) -> TaggedRelation:
        out = TaggedRelation(step.acc_schema)
        if acc.is_empty():
            return out

        probe = self._probe_for(step, choice, operands, hash_cache, index_probe)
        eq_links = step.eq_links
        postfilter = step.postfilter
        for acc_values, acc_tag, acc_count in acc.items():
            charge("join_probes")
            probe_key = tuple(acc_values[pos] + shift for pos, _, shift in eq_links)
            for op_values, op_tag, op_count in probe(probe_key):
                tag = combine_join_tags(acc_tag, op_tag)
                if tag is Tag.IGNORE:
                    charge("tuples_ignored")
                    continue
                row = acc_values + op_values
                if postfilter is not None and not postfilter(row):
                    continue
                charge("tuples_emitted")
                out.add(row, tag, acc_count * op_count)
        return out

    def _probe_for(
        self,
        step: StepPlan,
        choice: DeltaRowChoice,
        operands: Sequence[Mapping[DeltaRowChoice, TaggedRelation]],
        hash_cache: dict,
        index_probe: IndexProbe | None,
    ) -> ProbeFn:
        """A probe function over the operand, preferring a caller index.

        The index fast path applies to OLD operands only (indexes track
        base relations); DELTA operands are hashed directly — they are
        small by assumption.
        """
        if (
            choice is DeltaRowChoice.OLD
            and index_probe is not None
            and step.link_attr_names
        ):
            indexed = index_probe(step.position, step.link_attr_names)
            if indexed is not None:
                prefilter = step.prefilter
                if prefilter is None:
                    return indexed

                def filtered(key: ValueTuple, _inner=indexed, _pred=prefilter):
                    for values, tag, count in _inner(key):
                        if _pred(values):
                            yield values, tag, count

                return filtered

        cache_key = (step.position, choice)
        table = hash_cache.get(cache_key)
        if table is None:
            table = {}
            source = operands[step.position][choice]
            key_positions = step.operand_key_positions
            prefilter = step.prefilter
            for values, tag, count in source.items():
                charge("tuples_scanned")
                if prefilter is not None and not prefilter(values):
                    continue
                key = tuple(values[i] for i in key_positions)
                table.setdefault(key, []).append((values, tag, count))
            hash_cache[cache_key] = table
        return lambda key: table.get(key, ())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def steps(self) -> tuple[StepPlan, ...]:
        """The resolved join steps, in execution order."""
        return self._steps

    @property
    def always_empty(self) -> bool:
        """True when a shared ground atom is false: no row contributes."""
        return self._always_empty

    @property
    def needs_final_filter(self) -> bool:
        """True when the full DNF condition is re-checked at the end."""
        return self._needs_final_filter

    @property
    def final_schema(self) -> RelationSchema:
        """Schema of a fully joined row, before projection."""
        return self._final_schema

    @property
    def projection_positions(self) -> tuple[int, ...]:
        """Positions in :attr:`final_schema` the projection keeps."""
        return self._projection_positions

    @property
    def output_schema(self) -> RelationSchema:
        """Schema of the projected view delta."""
        return self._output_schema

    def describe(self) -> str:
        """A human-readable account of the evaluation plan.

        Lists the truth-table rows to evaluate, the delta-first operand
        order, and per step: the hash-join links (with ``x = y + c``
        shifts), operand prefilters and post-join filters the pushdown
        assigned — the textual form of what :meth:`evaluate_rows` will
        execute.
        """
        from repro.core.truthtable import count_delta_rows, enumerate_delta_rows
        from repro.core.truthtable import render_row

        nf = self.normal_form
        names = [occ.name for occ in nf.occurrences]
        lines = [
            f"view: {nf!r}",
            f"changed occurrences: "
            f"{[names[i] for i in self.changed] or '(none: full evaluation)'}",
            f"rows to evaluate: {count_delta_rows(len(self.changed)) or 1}",
        ]
        for row in enumerate_delta_rows(len(nf.occurrences), self.changed):
            lines.append(f"  {render_row(row, names)}")
        lines.append(
            "operand order (delta-first): "
            + " -> ".join(names[i] for i in self.order)
        )
        for index, step in enumerate(self._steps):
            occ = nf.occurrences[step.position]
            lines.append("  " + step.describe(occ.name, index))
        if self._final_filter is not None:
            lines.append("final pass: full DNF condition re-check")
        lines.append(
            "projection: " + ", ".join(out for out, _ in nf.projection)
        )
        lines.append(
            f"subexpression sharing: {'on' if self.share else 'off'}; "
            f"index probes: {'available' if self.index_probe else 'none'}"
        )
        return "\n".join(lines)

    def _project_into(self, result: TaggedRelation, merged: TaggedRelation) -> None:
        """Apply the final filter and projection; accumulate into merged."""
        final_filter = self._final_filter
        positions = self._projection_positions
        for values, tag, count in result.items():
            if final_filter is not None and not final_filter(values):
                continue
            merged.add(tuple(values[i] for i in positions), tag, count)


def evaluate_normal_form(
    normal_form: NormalForm,
    instances: Mapping[str, "object"],
) -> "object":
    """Full (non-differential) evaluation via the pipelined planner.

    Treats every operand as OLD and evaluates the single all-old row,
    so the complete re-evaluation baseline enjoys the same hash joins
    and selection pushdown the differential path gets — the benchmark
    comparisons stay apples-to-apples.  Returns a counted
    :class:`~repro.algebra.relation.Relation` over the view's output
    schema.

    The naive tree evaluator (:func:`repro.algebra.evaluate.evaluate`)
    is retained as an *independent* oracle; the test suite cross-checks
    the two on random inputs.
    """
    from repro.algebra.relation import Relation

    planner = RowPlanner(normal_form, changed_positions=())
    operands = []
    for occurrence in normal_form.occurrences:
        relation = instances[occurrence.name]
        occ_schema = normal_form.qualified_schema.project_schema(
            occurrence.qualified_names()
        )
        tagged = TaggedRelation(occ_schema)
        for values, count in relation.items():  # type: ignore[attr-defined]
            tagged.add(values, Tag.OLD, count)
        operands.append({DeltaRowChoice.OLD: tagged})
    all_old = tuple([DeltaRowChoice.OLD] * len(normal_form.occurrences))
    merged = planner.evaluate_rows([all_old], operands)

    out = Relation(normal_form.output_schema())
    counts = out._counts
    for values, tag, count in merged.items():
        assert tag is Tag.OLD
        counts[values] = counts.get(values, 0) + count
    return out
