"""Generated batch kernels for the maintenance hot path.

The interpreter in :mod:`repro.core.planner` and
:mod:`repro.core.irrelevance` re-dispatches per tuple: every screened
tuple walks condition ASTs, every joined tuple goes through generic
step objects and closure predicates.  Algorithm 4.1 already amortizes
the *planning* work (invariant split, APSP) once per batch; this module
finishes the job in the DBToaster tradition by amortizing the
*dispatch* as well — at plan-compile time each
:class:`~repro.core.compiled.CompiledViewPlan` emits straight-line
Python source, ``compile()``s it once, and thereafter every transaction
runs the generated closures over whole batches:

* **screen kernels** — one per (view, relation-occurrence set): the
  Definition 4.2 invariant/variant split evaluated over a columnar
  :class:`DeltaBatch`, with the invariant APSP distances baked into the
  source as integer literals and the variant bounds unrolled into
  ``min``/``max`` expressions plus the O(B²) negative-cycle probes;
* **row kernels** — one per truth-table shape: the Section 5.3 rows
  unrolled into a prefix-sharing trie of hash-join loops, with
  equality-link keys, pre/post-filters and the paper's tag algebra all
  inlined (``insert ⊗ delete`` pairs dropped in-loop);
* **apply kernels** — one per shape: the final DNF re-check,
  projection and Section 5.2 multiplicity-counter folding into plain
  ``dict`` accumulators, collapsed to a net view delta by
  :func:`repro.core.counting.net_counts`.

Generated source is a pure function of the plan structure — no
timestamps, no ids, no dict-order dependence — so two compiles of the
same plan emit byte-identical text (the CLI's ``explain <view> source``
determinism check).  Every kernel preserves the interpreter's
instrumentation counters exactly (charged in bulk by the drivers), and
the ``use_codegen=False`` ablation keeps the interpreter as the oracle:
both paths must agree byte-for-byte on every view state.

Fallback rules: a shape whose truth table would unroll past
:data:`MAX_CODEGEN_ROWS` rows (or a view past
:data:`MAX_CODEGEN_OPERANDS` occurrences) is executed by the
interpreter instead, charging ``codegen_fallback_tuples``; results are
identical either way.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.algebra.conditions import Atom, Condition, Var
from repro.algebra.relation import Delta
from repro.algebra.schema import RelationSchema
from repro.algebra.tags import Tag
from repro.core.graph import INF, ZERO
from repro.core.truthtable import DeltaRowChoice, Rows
from repro.errors import MaintenanceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.algebra.aggregates import AggregateSpec
    from repro.algebra.expressions import NormalForm
    from repro.core.irrelevance import RelevanceFilter
    from repro.core.planner import RowPlanner

ValueTuple = tuple[int, ...]

#: Bumped whenever the shape of the generated source changes; part of
#: the plan fingerprint so a cached plan compiled by an older generator
#: can never be served to a newer runtime (and so toggling
#: ``use_codegen`` evicts, rather than reuses, cached plans).
#: v2: aggregate fold kernels (group-apply + unrolled renderers).
#: v3: counter-free apply kernels (derived view keys pin counters to 1).
CODEGEN_VERSION = 3

#: Views with more occurrences than this fall back to the interpreter
#: wholesale (the unrolled trie would be enormous and cold).
MAX_CODEGEN_OPERANDS = 8

#: Shapes whose truth table exceeds this many rows fall back too.
MAX_CODEGEN_ROWS = 64

_PY_OPS = {"=": "==", "<": "<", ">": ">", "<=": "<=", ">=": ">="}


def plan_fingerprint(
    normal_form: "NormalForm",
    use_codegen: bool,
    aggregate: "AggregateSpec | None" = None,
) -> tuple:
    """The cache identity of a compiled plan.

    Extends the definition's structural fingerprint with the executable
    format: generated kernels are tagged with :data:`CODEGEN_VERSION`,
    interpreter plans with a distinct marker.  Aggregate views mix in
    their spec fingerprint — two views sharing one SPJ core but
    different GROUP BY keys or aggregate lists are different
    executables.  The plan cache compares this on every ``get``, so
    flipping ``use_codegen`` (or upgrading the generator) evicts stale
    plans instead of executing them.
    """
    base: tuple = normal_form.fingerprint()
    if aggregate is not None:
        base = (base, aggregate.fingerprint())
    if use_codegen:
        return (base, ("codegen", CODEGEN_VERSION))
    return (base, ("interpreter",))


class CodegenStats:
    """Cumulative codegen counters for one maintainer.

    Mirrors the ``codegen_*`` instrumentation family (see
    :mod:`repro.instrumentation`) so the CLI ``stats`` command and the
    server ``stats`` op can report them without an active recorder.
    """

    __slots__ = ("plans_compiled", "batch_rows", "fallback_tuples")

    def __init__(self) -> None:
        self.plans_compiled = 0
        self.batch_rows = 0
        self.fallback_tuples = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "codegen_plans_compiled": self.plans_compiled,
            "codegen_batch_rows": self.batch_rows,
            "codegen_fallback_tuples": self.fallback_tuples,
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<CodegenStats {inner}>"


# ----------------------------------------------------------------------
# DeltaBatch: the columnar screen()-boundary representation
# ----------------------------------------------------------------------

class DeltaBatch:
    """One relation's net delta in columnar (struct-of-arrays) layout.

    ``columns[j][i]`` is attribute ``j`` of slot ``i``; the first
    :attr:`n_inserted` slots are the delta's inserts (in dict order),
    the rest its deletes.  Screen kernels loop over slot indices and
    index columns directly — no per-tuple dict, no ``Row`` views —
    while :attr:`rows` keeps the original encoded tuples so a filtered
    :class:`~repro.algebra.relation.Delta` is rebuilt without decoding.
    """

    __slots__ = ("schema", "rows", "counts", "columns", "n_inserted")

    def __init__(self, schema: RelationSchema) -> None:
        self.schema = schema
        self.rows: list[ValueTuple] = []
        self.counts: list[int] = []
        self.columns: list[list[int]] = [[] for _ in schema.names]
        self.n_inserted = 0

    @classmethod
    def from_delta(cls, delta: Delta) -> "DeltaBatch":
        """Transpose one delta into columns (inserts first, then deletes)."""
        batch = cls(delta.schema)
        rows = batch.rows
        counts = batch.counts
        columns = batch.columns
        width = len(columns)
        for values, count in delta.inserted.items():
            rows.append(values)
            counts.append(count)
            for j in range(width):
                columns[j].append(values[j])
        batch.n_inserted = len(rows)
        for values, count in delta.deleted.items():
            rows.append(values)
            counts.append(count)
            for j in range(width):
                columns[j].append(values[j])
        return batch

    def __len__(self) -> int:
        return len(self.rows)

    def to_delta(self, mask: bytearray) -> Delta:
        """The sub-delta of slots whose ``mask`` byte is set."""
        inserted: dict[ValueTuple, int] = {}
        deleted: dict[ValueTuple, int] = {}
        rows = self.rows
        counts = self.counts
        split = self.n_inserted
        for i in range(split):
            if mask[i]:
                inserted[rows[i]] = counts[i]
        for i in range(split, len(rows)):
            if mask[i]:
                deleted[rows[i]] = counts[i]
        return Delta.from_counts(self.schema, inserted, deleted)

    def __repr__(self) -> str:
        return (
            f"<DeltaBatch {list(self.schema.names)} {len(self.rows)} slots "
            f"({self.n_inserted} inserts)>"
        )


# ----------------------------------------------------------------------
# Source-emission helpers
# ----------------------------------------------------------------------

class _Emitter:
    """Tiny indented-source builder."""

    __slots__ = ("lines", "indent")

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        if line:
            self.lines.append("    " * self.indent + line)
        else:
            self.lines.append("")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _atom_expr(atom: Atom, index_of: Callable[[str], int], var: str) -> str:
    """One atom as a Python expression over indexable row ``var``.

    ``index_of`` resolves a variable name to a tuple/column position.
    Canonicalization guarantees a non-ground atom's left term is a
    variable; ground atoms are folded by the planner before this point.
    """
    if atom.is_ground():
        return "True" if atom.truth_value() else "False"
    assert isinstance(atom.left, Var)
    left = f"{var}[{index_of(atom.left.name)}]"
    op = _PY_OPS[atom.op]
    if isinstance(atom.right, Var):
        right = f"{var}[{index_of(atom.right.name)}]"
        if atom.offset:
            right = f"{right} + {atom.offset}" if atom.offset > 0 else (
                f"{right} - {-atom.offset}"
            )
    else:
        right = str(atom.right.value + atom.offset)
    return f"{left} {op} {right}"


def _conjunction_expr(
    atoms: Sequence[Atom], index_of: Callable[[str], int], var: str
) -> str:
    if not atoms:
        return "True"
    return " and ".join(f"({_atom_expr(a, index_of, var)})" for a in atoms)


def _condition_expr(
    condition: Condition, index_of: Callable[[str], int], var: str
) -> str:
    """A DNF condition as one Python expression over row ``var``."""
    if condition.is_true():
        return "True"
    if condition.is_false():
        return "False"
    return " or ".join(
        f"({_conjunction_expr(d.atoms, index_of, var)})"
        for d in condition.disjuncts
    )


# ----------------------------------------------------------------------
# Screen kernels (Section 4 over a DeltaBatch)
# ----------------------------------------------------------------------

def generate_screen_source(
    relation_name: str,
    relevance_filter: "RelevanceFilter",
    schema: RelationSchema,
    statically_irrelevant: bool = False,
) -> str:
    """Emit the batch screen kernel for one participating relation.

    The generated ``screen_kernel(cols, n, mask)`` marks relevant slots
    in ``mask`` and returns ``(ground_evals, bound_probes)`` so the
    driver can charge the interpreter's per-tuple counters in bulk.
    Structure per slot, mirroring ``RelevanceFilter._decide`` exactly:
    one block per live (occurrence, disjunct) screen, variant-evaluable
    atoms as nested short-circuit tests, variant bounds as ``min``/
    ``max`` folds, and the negative-cycle probe pairs unrolled with the
    invariant APSP distances baked in as integer literals (pairs whose
    invariant path is unreachable are omitted at generation time).
    """
    out = _Emitter()
    out.emit(f"# screen kernel: relation {relation_name!r}")
    if statically_irrelevant:
        # The Theorem 4.1 static proof is baked into the source: the
        # kernel body is the proof's conclusion.  Constraint DDL
        # invalidates the whole plan, regenerating this file.
        out.emit("# statically irrelevant under the declared constraint:")
        out.emit("# every legal update is dropped with no per-tuple work")
        out.emit("def screen_kernel(cols, n, mask):")
        out.indent += 1
        out.emit("return 0, 0")
        return out.source()
    if relevance_filter._always_relevant:
        out.emit("# condition has an empty disjunct (constant TRUE):")
        out.emit("# every update is relevant, no screening possible")
        out.emit("def screen_kernel(cols, n, mask):")
        out.indent += 1
        out.emit("for i in range(n):")
        out.indent += 1
        out.emit("mask[i] = 1")
        out.indent -= 1
        out.emit("return 0, 0")
        return out.source()

    screens = relevance_filter._screens
    out.emit("def screen_kernel(cols, n, mask):")
    out.indent += 1
    if not screens:
        out.emit("# every disjunct's invariant part is unsatisfiable:")
        out.emit("# all updates screened out")
        out.emit("return 0, 0")
        return out.source()

    used_columns = sorted(
        {
            schema.index(screen.occurrence.inverse[name])
            for screen in screens
            for atom in (
                screen.variant_evaluable + screen.variant_non_evaluable
            )
            for name in atom.variables()
            if name in screen.occurrence.inverse
        }
    )
    for j in used_columns:
        out.emit(f"c{j} = cols[{j}]")
    out.emit("ge = 0")
    out.emit("bp = 0")
    out.emit("for i in range(n):")
    out.indent += 1
    base_indent = out.indent
    for screen_index, screen in enumerate(screens):
        occurrence = screen.occurrence
        out.indent = base_indent
        out.emit(
            f"# screen {screen_index}: occurrence "
            f"{occurrence.name}#{occurrence.position}"
        )

        def col_expr(qualified: str, _occ=occurrence) -> str:
            return f"c{schema.index(_occ.inverse[qualified])}[i]"

        # Variant evaluable atoms: nested short-circuit so the per-atom
        # ground-eval counter matches the interpreter's early exit.
        for atom in screen.variant_evaluable:
            expr = _substituted_ground_expr(atom, col_expr)
            out.emit("ge += 1")
            out.emit(f"if {expr}:")
            out.indent += 1
        out.emit("bp += 1")
        probes = _bound_probe_exprs(screen, col_expr, out)
        if probes:
            joined = " or ".join(probes)
            out.emit(f"if not ({joined}):")
            out.indent += 1
        out.emit("mask[i] = 1")
        out.emit("continue")
    out.indent = base_indent - 1
    out.emit("return ge, bp")
    return out.source()


def _substituted_ground_expr(
    atom: Atom, col_expr: Callable[[str], str]
) -> str:
    """A variant-evaluable atom as an expression over column slots."""
    op = _PY_OPS[atom.op]
    assert isinstance(atom.left, Var)
    left = col_expr(atom.left.name)
    if isinstance(atom.right, Var):
        right = col_expr(atom.right.name)
        if atom.offset > 0:
            right = f"{right} + {atom.offset}"
        elif atom.offset < 0:
            right = f"{right} - {-atom.offset}"
    else:
        right = str(atom.right.value + atom.offset)
    return f"{left} {op} {right}"


def _bound_probe_exprs(
    screen, col_expr: Callable[[str], str], out: _Emitter
) -> list[str]:
    """Emit tightest-bound folds; return the negative-cycle probe exprs.

    Reproduces ``_DisjunctScreen.admits``: each variant non-evaluable
    atom contributes an upper (``x ≤ e``) or lower (``x ≥ e``) bound
    whose constant is a column expression; discrete-domain
    normalization (``<`` → ``≤ e−1``, ``>`` → ``≥ e+1``, ``=`` → both)
    is applied symbolically here, and the probe pairs are unrolled with
    the APSP entries as literals.
    """
    uppers: dict[str, list[str]] = {}
    lowers: dict[str, list[str]] = {}
    order: list[str] = []
    for atom in screen.variant_non_evaluable:
        assert isinstance(atom.left, Var) and isinstance(atom.right, Var)
        x, y = atom.left.name, atom.right.name
        substituted_left = _is_substituted(screen, x)
        if substituted_left:
            # Const(vx) op y + c mirrors to y mirror(op) (vx - c).
            free = y
            op = {"=": "=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}[
                atom.op
            ]
            base = col_expr(x)
            shift = -atom.offset
        else:
            free = x
            op = atom.op
            base = col_expr(y)
            shift = atom.offset
        if free not in order:
            order.append(free)
        if op in ("<=", "<"):
            expr = _shifted(base, shift - (1 if op == "<" else 0))
            uppers.setdefault(free, []).append(expr)
        elif op in (">=", ">"):
            expr = _shifted(base, shift + (1 if op == ">" else 0))
            lowers.setdefault(free, []).append(expr)
        else:  # "=": both bounds
            uppers.setdefault(free, []).append(_shifted(base, shift))
            lowers.setdefault(free, []).append(_shifted(base, shift))

    lower_items: list[tuple[str, str]] = []
    upper_items: list[tuple[str, str]] = []
    for var_index, free in enumerate(order):
        if free in lowers:
            name = f"l{var_index}"
            out.emit(f"{name} = {_fold('max', lowers[free])}")
            lower_items.append((free, name))
        if free in uppers:
            name = f"u{var_index}"
            out.emit(f"{name} = {_fold('min', uppers[free])}")
            upper_items.append((free, name))
    lower_items.append((ZERO, "0"))
    upper_items.append((ZERO, "0"))

    dist = screen.dist
    probes: list[str] = []
    for y, cl in lower_items:
        for x, cu in upper_items:
            if y == ZERO and x == ZERO:
                continue
            path = dist[y][x]
            if path == INF:
                continue
            probes.append(f"(-({cl}) + {int(path)} + {cu} < 0)")
    return probes


def _is_substituted(screen, name: str) -> bool:
    return name in screen.occurrence.inverse


def _shifted(base: str, shift: int) -> str:
    if shift > 0:
        return f"{base} + {shift}"
    if shift < 0:
        return f"{base} - {-shift}"
    return base


def _fold(func: str, exprs: list[str]) -> str:
    if len(exprs) == 1:
        return exprs[0]
    return f"{func}({', '.join(exprs)})"


# ----------------------------------------------------------------------
# Row + apply kernels (Section 5.3 over one truth-table shape)
# ----------------------------------------------------------------------

def codegen_rows(
    num_operands: int, changed_positions: Sequence[int]
) -> list[Rows]:
    """The rows :func:`~repro.core.truthtable.enumerate_delta_rows`
    yields, computed without charging ``truth_table_rows``.

    Kernel generation happens once per shape; the per-execution charge
    is applied in bulk by the kernel driver so the counter stays
    execution-proportional, exactly like the interpreter's.
    """
    changed = sorted(set(changed_positions))
    rows: list[Rows] = []
    for bits in product(
        (DeltaRowChoice.OLD, DeltaRowChoice.DELTA), repeat=len(changed)
    ):
        if all(b is DeltaRowChoice.OLD for b in bits):
            continue
        row = [DeltaRowChoice.OLD] * num_operands
        for position, bit in zip(changed, bits):
            row[position] = bit
        rows.append(tuple(row))
    return rows


def generate_shape_source(
    planner: "RowPlanner",
    rows: Sequence[Rows],
    counter_free: bool = False,
) -> str:
    """Emit the row kernel + apply kernel for one truth-table shape.

    The row kernel unrolls the planner's prefix-sharing trie: one named
    list per distinct (row-prefix × choice) node when sharing is on,
    one per (row, step) when the E13 ablation turns sharing off.  Hash
    tables stay shared per (step, choice) either way — mirroring the
    interpreter's ``hash_cache`` — and are built lazily behind a
    ``None`` guard so an OLD operand answered by an index probe (or
    never reached because its accumulator is empty) is never
    materialized.  The apply kernel folds each completed row through
    the final DNF re-check, the projection and the Section 5.2 counter
    accumulators.

    With ``counter_free`` (sound only when a derived view key proves
    every view row has multiplicity ≤ 1 — see
    :func:`repro.analysis.dependencies.derive_view_key`) the apply
    kernel pins each accumulator entry to one instead of summing
    multiplicities: the counts carry no information, so the
    ``get``-then-add round trip per emitted row is dropped.  The final
    :func:`~repro.core.counting.net_counts` pass still runs — one
    transaction may legitimately delete a view row and re-insert it.
    """
    nf = planner.normal_form
    steps = planner.steps
    out = _Emitter()
    names = [occ.name for occ in nf.occurrences]
    out.emit(
        "# row kernel: shape "
        + repr(tuple(names[i] for i in planner.changed))
        + f" of view over {names!r}"
    )
    out.emit(
        "# order (delta-first): "
        + " -> ".join(names[step.position] for step in steps)
    )
    if counter_free:
        out.emit(
            "# counter-free: a derived view key proves multiplicity <= 1;"
        )
        out.emit("# the apply kernel pins every counter to one")

    _emit_apply_kernel(out, planner, counter_free)
    out.emit()
    out.emit("def row_kernel(operands, probe_for):")
    out.indent += 1
    out.emit("ins = {}")
    out.emit("dele = {}")
    if planner.always_empty:
        out.emit("# a shared ground atom is false: no row can contribute")
        out.emit("return ins, dele, 0, 0, 0, 0")
        return out.source()
    out.emit("ts = 0")
    out.emit("jp = 0")
    out.emit("te = 0")
    out.emit("ti = 0")

    hash_nodes: set[tuple[int, DeltaRowChoice]] = set()
    plans: list[list[tuple[str, str, int, DeltaRowChoice]]] = []
    emitted: set[str] = set()
    for row_index, row in enumerate(rows):
        chain: list[tuple[str, str, int, DeltaRowChoice]] = []
        sig = ""
        parent = ""
        for j, step in enumerate(steps):
            choice = row[step.position]
            sig += "D" if choice is DeltaRowChoice.DELTA else "O"
            if planner.share:
                node = f"n_{sig}"
            else:
                node = f"n_r{row_index}_{j}"
            chain.append((node, parent, j, choice))
            parent = node
        plans.append(chain)
        for node, _, j, choice in chain:
            if node in emitted:
                continue
            # The hash-table path may be taken by any node that is not
            # guaranteed an index probe — i.e. every node.
            hash_nodes.add((j, choice))
            emitted.add(node)

    for j, choice in sorted(
        hash_nodes, key=lambda item: (item[0], item[1].value)
    ):
        out.emit(f"h_{j}_{choice.name} = None")

    emitted.clear()
    for row_index, chain in enumerate(plans):
        out.emit(f"# row {row_index}: " + _render_sig(chain, steps, names))
        for node, parent, j, choice in chain:
            if node not in emitted:
                if j == 0:
                    _emit_first_operand(out, planner, node, choice)
                else:
                    _emit_join_node(out, planner, node, parent, j, choice)
                emitted.add(node)
        out.emit(f"apply_kernel({chain[-1][0]}, ins, dele)")
    out.emit("return ins, dele, ts, jp, te, ti")
    return out.source()


def _render_sig(chain, steps, names) -> str:
    parts = []
    for _, _, j, choice in chain:
        name = names[steps[j].position]
        parts.append(name if choice is DeltaRowChoice.OLD else f"i_{name}")
    return " * ".join(parts)


def _emit_apply_kernel(
    out: _Emitter, planner: "RowPlanner", counter_free: bool = False
) -> None:
    final_schema = planner.final_schema
    positions = planner.projection_positions
    key = "(" + ", ".join(f"v[{p}]" for p in positions) + ("," if len(positions) == 1 else "") + ")"
    out.emit("def apply_kernel(rows, ins, dele):")
    out.indent += 1
    out.emit("for v, t, c in rows:")
    out.indent += 1
    if planner.needs_final_filter:
        expr = _condition_expr(
            planner.normal_form.condition, final_schema.index, "v"
        )
        out.emit(f"if not ({expr}):")
        out.indent += 1
        out.emit("continue")
        out.indent -= 1
    out.emit(f"k = {key}")
    out.emit("if t is T_I:")
    out.indent += 1
    if counter_free:
        out.emit("ins[k] = 1")
    else:
        out.emit("ins[k] = ins.get(k, 0) + c")
    out.indent -= 1
    out.emit("elif t is T_D:")
    out.indent += 1
    if counter_free:
        out.emit("dele[k] = 1")
    else:
        out.emit("dele[k] = dele.get(k, 0) + c")
    out.indent -= 2
    out.indent -= 1


def _emit_first_operand(
    out: _Emitter, planner: "RowPlanner", node: str, choice: DeltaRowChoice
) -> None:
    step = planner.steps[0]
    out.emit(
        f"src = operands[{step.position}][C_{choice.name}]._counts"
    )
    out.emit("ts += len(src)")
    prefilter = _prefilter_expr(step, "bv")
    if prefilter is None:
        out.emit(f"{node} = [(bv, bt, bc) for (bv, bt), bc in src.items()]")
        return
    out.emit(f"{node} = []")
    out.emit(f"{node}_append = {node}.append")
    out.emit("for (bv, bt), bc in src.items():")
    out.indent += 1
    out.emit(f"if {prefilter}:")
    out.indent += 1
    out.emit(f"{node}_append((bv, bt, bc))")
    out.indent -= 2


def _emit_join_node(
    out: _Emitter,
    planner: "RowPlanner",
    node: str,
    parent: str,
    j: int,
    choice: DeltaRowChoice,
) -> None:
    step = planner.steps[j]
    key_expr = _probe_key_expr(step)
    out.emit(f"{node} = []")
    out.emit(f"if {parent}:")
    out.indent += 1
    out.emit(f"{node}_append = {node}.append")
    use_probe = choice is DeltaRowChoice.OLD and bool(step.link_attr_names)
    if use_probe:
        out.emit(f"p = probe_for({j})")
        out.emit("if p is not None:")
        out.indent += 1
        _emit_probe_loop(out, planner, node, parent, j, key_expr)
        out.indent -= 1
        out.emit("else:")
        out.indent += 1
        _emit_hash_join(out, planner, node, parent, j, choice, key_expr)
        out.indent -= 1
    else:
        _emit_hash_join(out, planner, node, parent, j, choice, key_expr)
    out.indent -= 1


def _emit_probe_loop(
    out: _Emitter, planner: "RowPlanner", node: str, parent: str, j: int,
    key_expr: str,
) -> None:
    step = planner.steps[j]
    prefilter = _prefilter_expr(step, "bv")
    out.emit(f"for av, at, ac in {parent}:")
    out.indent += 1
    out.emit("jp += 1")
    out.emit(f"k = {key_expr}")
    out.emit("for bv, bt, bc in p(k):")
    out.indent += 1
    if prefilter is not None:
        out.emit(f"if not ({prefilter}):")
        out.indent += 1
        out.emit("continue")
        out.indent -= 1
    _emit_combine_emit(out, planner, node, j)
    out.indent -= 2


def _emit_hash_join(
    out: _Emitter,
    planner: "RowPlanner",
    node: str,
    parent: str,
    j: int,
    choice: DeltaRowChoice,
    key_expr: str,
) -> None:
    step = planner.steps[j]
    table = f"h_{j}_{choice.name}"
    prefilter = _prefilter_expr(step, "bv")
    key_positions = step.operand_key_positions
    build_key = (
        "("
        + ", ".join(f"bv[{p}]" for p in key_positions)
        + ("," if len(key_positions) == 1 else "")
        + ")"
    )
    out.emit(f"if {table} is None:")
    out.indent += 1
    out.emit(f"{table} = {{}}")
    out.emit(f"src = operands[{step.position}][C_{choice.name}]._counts")
    out.emit("ts += len(src)")
    out.emit("for (bv, bt), bc in src.items():")
    out.indent += 1
    if prefilter is not None:
        out.emit(f"if not ({prefilter}):")
        out.indent += 1
        out.emit("continue")
        out.indent -= 1
    out.emit(f"bk = {build_key}")
    out.emit(f"bucket = {table}.get(bk)")
    out.emit("if bucket is None:")
    out.indent += 1
    out.emit(f"{table}[bk] = [(bv, bt, bc)]")
    out.indent -= 1
    out.emit("else:")
    out.indent += 1
    out.emit("bucket.append((bv, bt, bc))")
    out.indent -= 2
    out.indent -= 1
    out.emit(f"for av, at, ac in {parent}:")
    out.indent += 1
    out.emit("jp += 1")
    out.emit(f"k = {key_expr}")
    out.emit(f"bucket = {table}.get(k)")
    out.emit("if bucket is not None:")
    out.indent += 1
    out.emit("for bv, bt, bc in bucket:")
    out.indent += 1
    _emit_combine_emit(out, planner, node, j)
    out.indent -= 3


def _emit_combine_emit(
    out: _Emitter, planner: "RowPlanner", node: str, j: int
) -> None:
    """Tag algebra + postfilter + emit, shared by both join paths."""
    step = planner.steps[j]
    out.emit("if at is T_O:")
    out.indent += 1
    out.emit("t = bt")
    out.indent -= 1
    out.emit("elif bt is T_O:")
    out.indent += 1
    out.emit("t = at")
    out.indent -= 1
    out.emit("elif at is bt:")
    out.indent += 1
    out.emit("t = at")
    out.indent -= 1
    out.emit("else:")
    out.indent += 1
    out.emit("ti += 1")
    out.emit("continue")
    out.indent -= 1
    out.emit("rv = av + bv")
    postfilter = _postfilter_expr(step, "rv")
    if postfilter is not None:
        out.emit(f"if not ({postfilter}):")
        out.indent += 1
        out.emit("continue")
        out.indent -= 1
    out.emit("te += 1")
    out.emit(f"{node}_append((rv, t, ac * bc))")


def _probe_key_expr(step) -> str:
    parts = []
    for pos, _, shift in step.eq_links:
        parts.append(_shifted(f"av[{pos}]", shift))
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


def _prefilter_expr(step, var: str) -> Optional[str]:
    atoms = step.prefilter_atoms
    if not atoms:
        return None
    return _conjunction_expr(atoms, step.operand_schema.index, var)


def _postfilter_expr(step, var: str) -> Optional[str]:
    atoms = step.postfilter_atoms
    if not atoms:
        return None
    return _conjunction_expr(atoms, step.acc_schema.index, var)


# ----------------------------------------------------------------------
# Aggregate fold kernels (group-apply over core deltas)
# ----------------------------------------------------------------------

def _key_tuple_expr(positions: Sequence[int], var: str) -> str:
    """``(v[i], v[j],)`` for the grouping-key positions (``()`` if none)."""
    if not positions:
        return "()"
    inner = ", ".join(f"{var}[{p}]" for p in positions)
    return "(" + inner + ("," if len(positions) == 1 else "") + ")"


def generate_aggregate_source(
    spec: "AggregateSpec", core_schema: RelationSchema
) -> str:
    """Emit the fold kernel for one aggregate view.

    The generated module holds two functions: ``render(k, bag)`` with
    the view's column arithmetic unrolled (one shared pass accumulates
    the group total and every SUM/AVG accumulator; MIN/MAX fold over
    the bag's distinct rows), and ``fold_kernel(groups, ins, dele)``
    applying one core delta to the support bags.  The kernel returns
    ``(touched, before, after, bad)`` — the touched groups in delta
    order, their rendered rows on both sides of the mutation, and the
    offending core row when a delete underflows its group support
    (``None`` otherwise); the driver
    (:meth:`~repro.core.compiled.CompiledViewPlan.fold_aggregate`)
    assembles the visible delta and charges the counters.  This is the
    generated twin of :meth:`repro.core.aggregates.AggregateState.fold`
    — both must agree cell for cell and in dict order.
    """
    positions = core_schema.positions(spec.keys)
    plans = [
        (
            column.func,
            -1
            if column.attribute is None
            else core_schema.index(column.attribute),
        )
        for column in spec.columns
    ]
    sum_positions = sorted(
        {p for func, p in plans if func in ("sum", "avg")}
    )

    out = _Emitter()
    out.emit(f"# aggregate kernel: {spec}")
    out.emit(f"# core row layout: {tuple(core_schema.names)!r}")
    out.emit()
    out.emit("def render(k, bag):")
    out.indent += 1
    out.emit("total = 0")
    for p in sum_positions:
        out.emit(f"s{p} = 0")
    out.emit("for v, c in bag.items():")
    out.indent += 1
    out.emit("total += c")
    for p in sum_positions:
        out.emit(f"s{p} += v[{p}] * c")
    out.indent -= 1
    out.emit("if total <= 0:")
    out.indent += 1
    out.emit("return None")
    out.indent -= 1
    cells = [f"k[{i}]" for i in range(len(positions))]
    for func, p in plans:
        if func == "count":
            cells.append("total")
        elif func == "sum":
            cells.append(f"s{p}")
        elif func == "avg":
            cells.append(f"s{p} // total")
        elif func == "min":
            cells.append(f"min(v[{p}] for v in bag)")
        else:  # max
            cells.append(f"max(v[{p}] for v in bag)")
    inner = ", ".join(cells)
    out.emit(f"return ({inner}{',' if len(cells) == 1 else ''})")
    out.indent -= 1
    out.emit()

    key = _key_tuple_expr(positions, "v")
    out.emit("def fold_kernel(groups, ins, dele):")
    out.indent += 1
    out.emit("touched = {}")
    out.emit("for v in ins:")
    out.indent += 1
    out.emit(f"touched[{key}] = 1")
    out.indent -= 1
    out.emit("for v in dele:")
    out.indent += 1
    out.emit(f"touched[{key}] = 1")
    out.indent -= 1
    out.emit("before = {}")
    out.emit("for k in touched:")
    out.indent += 1
    out.emit("bag = groups.get(k)")
    out.emit("if bag:")
    out.indent += 1
    out.emit("row = render(k, bag)")
    out.emit("if row is not None:")
    out.indent += 1
    out.emit("before[k] = row")
    out.indent -= 3
    out.emit("for v, c in ins.items():")
    out.indent += 1
    out.emit(f"k = {key}")
    out.emit("bag = groups.get(k)")
    out.emit("if bag is None:")
    out.indent += 1
    out.emit("groups[k] = {v: c}")
    out.indent -= 1
    out.emit("else:")
    out.indent += 1
    out.emit("bag[v] = bag.get(v, 0) + c")
    out.indent -= 2
    out.emit("for v, c in dele.items():")
    out.indent += 1
    out.emit(f"k = {key}")
    out.emit("bag = groups.get(k)")
    out.emit("n = (bag.get(v, 0) if bag is not None else 0) - c")
    out.emit("if n < 0:")
    out.indent += 1
    out.emit("return touched, before, {}, v")
    out.indent -= 1
    out.emit("if n:")
    out.indent += 1
    out.emit("bag[v] = n")
    out.indent -= 1
    out.emit("else:")
    out.indent += 1
    out.emit("del bag[v]")
    out.emit("if not bag:")
    out.indent += 1
    out.emit("del groups[k]")
    out.indent -= 3
    out.emit("after = {}")
    out.emit("for k in touched:")
    out.indent += 1
    out.emit("bag = groups.get(k)")
    out.emit("if bag:")
    out.indent += 1
    out.emit("row = render(k, bag)")
    out.emit("if row is not None:")
    out.indent += 1
    out.emit("after[k] = row")
    out.indent -= 3
    out.emit("return touched, before, after, None")
    return out.source()


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

#: Constants available to every generated kernel.  This is the entire
#: ambient namespace — generated source may not reach anything else,
#: which is what keeps kernels deterministic and side-effect-free.
_KERNEL_GLOBALS = {
    "__builtins__": {
        "len": len,
        "range": range,
        "min": min,
        "max": max,
    },
    "T_O": Tag.OLD,
    "T_I": Tag.INSERT,
    "T_D": Tag.DELETE,
    "C_OLD": DeltaRowChoice.OLD,
    "C_DELTA": DeltaRowChoice.DELTA,
}

ScreenKernel = Callable[[list, int, bytearray], tuple[int, int]]
RowKernel = Callable[..., tuple[dict, dict, int, int, int, int]]
AggregateKernel = Callable[[dict, dict, dict], tuple[dict, dict, dict, object]]


def compile_kernel(source: str, name: str, filename: str) -> Callable:
    """``compile()`` + ``exec`` one generated module; return ``name``.

    ``filename`` shows up in tracebacks (``<codegen:view:kind>``) so a
    bug in generated code is attributable to its generator.
    """
    namespace: dict = dict(_KERNEL_GLOBALS)
    try:
        code = compile(source, filename, "exec")
        exec(code, namespace)  # noqa: S102 - the codegen seam
    except SyntaxError as exc:  # pragma: no cover - generator bug
        raise MaintenanceError(
            f"generated kernel {filename} failed to compile: {exc}\n{source}"
        ) from exc
    kernel = namespace.get(name)
    if kernel is None:  # pragma: no cover - generator bug
        raise MaintenanceError(
            f"generated module {filename} defines no {name!r}"
        )
    return kernel


class ShapeKernels:
    """The compiled row + apply kernels for one truth-table shape."""

    __slots__ = ("source", "row_kernel", "rows_evaluated", "memo_hits")

    def __init__(
        self,
        source: str,
        row_kernel: RowKernel,
        rows_evaluated: int,
        memo_hits: int,
    ) -> None:
        self.source = source
        self.row_kernel = row_kernel
        #: Rows this shape charges per execution (0 when the planner is
        #: statically empty, mirroring the interpreter's early return).
        self.rows_evaluated = rows_evaluated
        #: ``subexpression_memo_hits`` the interpreter would charge per
        #: execution.  The memo holds every prefix of each evaluated
        #: row, so a row scores exactly one hit iff its first-step
        #: choice appeared in an earlier row — a compile-time constant
        #: of the shape (0 with sharing off or a statically empty plan).
        self.memo_hits = memo_hits

    def __repr__(self) -> str:
        return f"<ShapeKernels {self.rows_evaluated} rows>"


def compile_shape_kernels(
    planner: "RowPlanner", view_name: str, counter_free: bool = False
) -> ShapeKernels | None:
    """Generate + compile one shape's kernels; None triggers fallback."""
    nf = planner.normal_form
    if len(nf.occurrences) > MAX_CODEGEN_OPERANDS:
        return None
    rows = codegen_rows(len(nf.occurrences), planner.changed)
    if len(rows) > MAX_CODEGEN_ROWS:
        return None
    source = generate_shape_source(planner, rows, counter_free)
    shape_tag = "".join(str(p) for p in planner.changed)
    kernel = compile_kernel(
        source, "row_kernel", f"<codegen:{view_name}:shape{shape_tag}>"
    )
    if planner.always_empty:
        rows_evaluated = memo_hits = 0
    else:
        rows_evaluated = len(rows)
        memo_hits = 0
        if planner.share and rows:
            first_position = planner.steps[0].position
            distinct_first = len({row[first_position] for row in rows})
            memo_hits = len(rows) - distinct_first
    return ShapeKernels(source, kernel, rows_evaluated, memo_hits)
