"""The paper's primary contribution.

* Section 4 — irrelevant-update detection: :mod:`normalize`,
  :mod:`graph`, :mod:`satisfiability`, :mod:`substitution`,
  :mod:`irrelevance`.
* Section 5 — differential re-evaluation: :mod:`counting`,
  :mod:`truthtable`, :mod:`planner`, :mod:`differential`.
* Compiled plans: :mod:`compiled`, :mod:`plancache` — the
  built-once/executed-often packaging of both sections.
* Orchestration: :mod:`views`, :mod:`maintainer`, :mod:`consistency`.
"""

from repro.core.satisfiability import (
    is_satisfiable,
    is_satisfiable_conjunction,
    solve_conjunction,
    solve_condition,
)
from repro.core.implication import (
    implies,
    minimize_condition,
    minimize_conjunction,
    conjunctions_equivalent,
    negate_atom,
)
from repro.core.substitution import (
    FormulaKind,
    classify_atom,
    split_conjunction,
    binding_for,
)
from repro.core.irrelevance import (
    RelevanceFilter,
    is_irrelevant_update,
    is_irrelevant_combination,
    filter_delta,
)
from repro.core.truthtable import DeltaRowChoice, enumerate_delta_rows, render_row
from repro.core.differential import (
    changed_positions_for,
    compute_view_delta,
    execute_planner,
)
from repro.core.compiled import CompiledViewPlan
from repro.core.plancache import PlanCache, PlanCacheStats
from repro.core.views import ViewDefinition, MaterializedView
from repro.core.maintainer import ViewMaintainer, MaintenancePolicy
from repro.core.consistency import check_view_consistency

__all__ = [
    "implies",
    "minimize_condition",
    "minimize_conjunction",
    "conjunctions_equivalent",
    "negate_atom",
    "is_satisfiable",
    "is_satisfiable_conjunction",
    "solve_conjunction",
    "solve_condition",
    "FormulaKind",
    "classify_atom",
    "split_conjunction",
    "binding_for",
    "RelevanceFilter",
    "is_irrelevant_update",
    "is_irrelevant_combination",
    "filter_delta",
    "DeltaRowChoice",
    "enumerate_delta_rows",
    "render_row",
    "changed_positions_for",
    "compute_view_delta",
    "execute_planner",
    "CompiledViewPlan",
    "PlanCache",
    "PlanCacheStats",
    "ViewDefinition",
    "MaterializedView",
    "ViewMaintainer",
    "MaintenancePolicy",
    "check_view_consistency",
]
