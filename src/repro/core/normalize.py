"""Normalization of atomic formulae (Section 4, Algorithm 4.1 step 1).

The satisfiability test operates on conjunctions whose atoms use only
the comparison operators ``≤`` and ``≥``.  Because all domains are
*discrete* (Section 3), strict comparisons and equalities rewrite
exactly:

* ``x <  y + c``  →  ``x ≤ y + c − 1``
* ``x >  y + c``  →  ``x ≥ y + c + 1``
* ``x =  y + c``  →  ``x ≤ y + c``  and  ``x ≥ y + c``
* ``x ≤ / ≥ …``   →  unchanged

The same rules apply to single-variable atoms (``x < 10`` becomes
``x ≤ 9``) since a constant right side is just ``y`` fixed.  Fully
ground atoms (``c op d``) are *evaluated* instead of normalized: a
false one makes the conjunction trivially unsatisfiable, a true one is
dropped.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.conditions import Atom, Conjunction
from repro.errors import ConditionError


class NormalizedConjunction:
    """A conjunction reduced to ``≤``/``≥`` atoms plus a triviality flag.

    Attributes
    ----------
    atoms:
        The normalized non-ground atoms.  Every atom's operator is
        ``<=`` or ``>=``, and every atom mentions at least one variable.
    trivially_false:
        True when some ground atom evaluated to false, making the whole
        conjunction unsatisfiable with no graph work needed.
    """

    __slots__ = ("atoms", "trivially_false")

    def __init__(self, atoms: Iterable[Atom], trivially_false: bool) -> None:
        self.atoms = tuple(atoms)
        self.trivially_false = trivially_false

    def variables(self) -> frozenset[str]:
        """All variables mentioned by the normalized atoms."""
        out: frozenset[str] = frozenset()
        for atom in self.atoms:
            out |= atom.variables()
        return out

    def __repr__(self) -> str:
        if self.trivially_false:
            return "<NormalizedConjunction FALSE>"
        return f"<NormalizedConjunction {' and '.join(map(str, self.atoms)) or 'true'}>"


def normalize_atom(atom: Atom) -> list[Atom]:
    """Rewrite one atom into equivalent ``≤``/``≥`` atoms.

    Ground atoms are not accepted here — callers evaluate them first
    (see :func:`normalize_conjunction`).

    >>> [str(a) for a in normalize_atom(Atom("x", "<", "y", 3))]
    ['x <= y + 2']
    >>> [str(a) for a in normalize_atom(Atom("x", "=", "y"))]
    ['x <= y', 'x >= y']
    """
    if atom.is_ground():
        raise ConditionError(f"ground atom {atom} should be evaluated, not normalized")
    left, right, offset = atom.left, atom.right, atom.offset
    if atom.op == "<=":
        return [atom]
    if atom.op == ">=":
        return [atom]
    if atom.op == "<":
        return [Atom(left, "<=", right, offset - 1)]
    if atom.op == ">":
        return [Atom(left, ">=", right, offset + 1)]
    if atom.op == "=":
        return [Atom(left, "<=", right, offset), Atom(left, ">=", right, offset)]
    raise ConditionError(f"unexpected operator in {atom!r}")  # pragma: no cover


def normalize_conjunction(conjunction: Conjunction) -> NormalizedConjunction:
    """Normalize every atom of a conjunction; evaluate ground atoms.

    >>> from repro.algebra.conditions import parse_condition
    >>> c = parse_condition("x < 10 and 3 <= 7 and x >= y + 1").disjuncts[0]
    >>> nc = normalize_conjunction(c)
    >>> [str(a) for a in nc.atoms]
    ['x <= 9', 'x >= y + 1']
    >>> normalize_conjunction(
    ...     parse_condition("11 < 10 and x > 0").disjuncts[0]
    ... ).trivially_false
    True
    """
    atoms: list[Atom] = []
    for atom in conjunction.atoms:
        if atom.is_ground():
            if not atom.truth_value():
                return NormalizedConjunction((), trivially_false=True)
            continue
        atoms.extend(normalize_atom(atom))
    return NormalizedConjunction(atoms, trivially_false=False)
