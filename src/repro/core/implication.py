"""Implication and minimization of conditions.

A pleasant consequence of the paper's condition class being closed
under *negation of atoms* — over discrete domains, ``¬(x ≤ y + c)`` is
``x ≥ y + c + 1``, both inside the class — is that **implication is
decidable** with the same Section 4 machinery:

    C ⟹ a   iff   C ∧ ¬a is unsatisfiable.

(The one exception is equality: ``¬(x = y + c)`` is a *disjunction*
``x ≤ y + c − 1 ∨ x ≥ y + c + 1``, still a DNF in the class.)

On top of implication this module builds:

* :func:`implies` — does a conjunction entail an atom?
* :func:`minimize_conjunction` — drop every atom entailed by the rest,
  producing an equivalent, irredundant conjunction.  Useful at view-
  definition time: smaller conditions mean fewer graph edges in every
  Algorithm 4.1 screen and fewer compiled predicate checks per tuple.
* :func:`conjunctions_equivalent` — mutual implication of all atoms.
"""

from __future__ import annotations

from repro.algebra.conditions import Atom, Condition, Conjunction
from repro.core.satisfiability import is_satisfiable_conjunction
from repro.errors import ConditionError


def negate_atom(atom: Atom) -> list[Atom]:
    """Disjuncts of ``¬atom``, each a single in-class atom.

    Over discrete domains:

    * ``¬(x ≤ y + c)`` → ``x ≥ y + c + 1``        (one disjunct)
    * ``¬(x ≥ y + c)`` → ``x ≤ y + c − 1``        (one disjunct)
    * ``¬(x <  y + c)`` → ``x ≥ y + c``
    * ``¬(x >  y + c)`` → ``x ≤ y + c``
    * ``¬(x =  y + c)`` → ``x ≤ y + c − 1``  ∨  ``x ≥ y + c + 1``

    >>> [str(a) for a in negate_atom(Atom("x", "<", 10))]
    ['x >= 10']
    >>> [str(a) for a in negate_atom(Atom("x", "=", "y"))]
    ['x <= y - 1', 'x >= y + 1']
    """
    if atom.is_ground():
        raise ConditionError(f"negating ground atom {atom}: evaluate it instead")
    left, right, offset = atom.left, atom.right, atom.offset
    if atom.op == "<=":
        return [Atom(left, ">=", right, offset + 1)]
    if atom.op == ">=":
        return [Atom(left, "<=", right, offset - 1)]
    if atom.op == "<":
        return [Atom(left, ">=", right, offset)]
    if atom.op == ">":
        return [Atom(left, "<=", right, offset)]
    if atom.op == "=":
        return [
            Atom(left, "<=", right, offset - 1),
            Atom(left, ">=", right, offset + 1),
        ]
    raise ConditionError(f"unexpected operator in {atom!r}")  # pragma: no cover


def implies(conjunction: Conjunction, atom: Atom) -> bool:
    """Does every solution of ``conjunction`` satisfy ``atom``?

    Decided as unsatisfiability of ``conjunction ∧ ¬atom`` — one graph
    test per negation disjunct.  An *unsatisfiable* conjunction implies
    everything (vacuously), matching logical convention.

    >>> from repro.algebra.conditions import parse_condition
    >>> conj = parse_condition("x <= 3 and y >= x + 2").disjuncts[0]
    >>> implies(conj, Atom("y", ">=", "x"))
    True
    >>> implies(conj, Atom("y", "<=", 10))
    False
    """
    if atom.is_ground():
        if atom.truth_value():
            return True
        return not is_satisfiable_conjunction(conjunction)
    for negated in negate_atom(atom):
        augmented = Conjunction(list(conjunction.atoms) + [negated])
        if is_satisfiable_conjunction(augmented):
            return False
    return True


def minimize_conjunction(conjunction: Conjunction) -> Conjunction:
    """An equivalent conjunction with every redundant atom removed.

    Iterates over atoms (ground atoms first — a true one is always
    redundant) and drops any implied by the remaining ones.  The result
    depends on iteration order for mutually-redundant sets (e.g. two
    copies of the same atom: one survives), but is always equivalent
    and irredundant.

    >>> from repro.algebra.conditions import parse_condition
    >>> conj = parse_condition("x < 5 and x < 7 and y = x + 1").disjuncts[0]
    >>> str(minimize_conjunction(conj))
    'x < 5 and y = x + 1'
    """
    kept = list(conjunction.atoms)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = Conjunction(kept[:index] + kept[index + 1:])
        if candidate.is_ground():
            redundant = candidate.truth_value() or not is_satisfiable_conjunction(rest)
        else:
            redundant = implies(rest, candidate)
        if redundant:
            kept.pop(index)
        else:
            index += 1
    return Conjunction(kept)


def conjunctions_equivalent(a: Conjunction, b: Conjunction) -> bool:
    """Do two conjunctions have identical solution sets?

    Mutual implication atom by atom; two unsatisfiable conjunctions are
    equivalent.

    >>> from repro.algebra.conditions import parse_condition
    >>> c1 = parse_condition("x < 5").disjuncts[0]
    >>> c2 = parse_condition("x <= 4").disjuncts[0]
    >>> conjunctions_equivalent(c1, c2)
    True
    """
    a_sat = is_satisfiable_conjunction(a)
    b_sat = is_satisfiable_conjunction(b)
    if not a_sat or not b_sat:
        return a_sat == b_sat
    # Both satisfiable, so any ground atoms they contain are true and
    # mutual implication of the non-ground atoms decides equivalence.
    return all(
        implies(a, atom) for atom in b.atoms if not atom.is_ground()
    ) and all(implies(b, atom) for atom in a.atoms if not atom.is_ground())


def negate_conjunction(conjunction: Conjunction) -> Condition:
    """``¬(a₁ ∧ … ∧ aₙ)`` as a DNF condition.

    De Morgan turns the conjunction into a disjunction of negated
    atoms, each of which stays in the class (equality contributes two
    disjuncts).  Ground atoms fold away: a false one makes the whole
    negation ``True``, a true one contributes nothing.

    >>> from repro.algebra.conditions import parse_condition
    >>> conj = parse_condition("x <= 3 and y = 2").disjuncts[0]
    >>> str(negate_conjunction(conj))
    '(x >= 4) or (y <= 1) or (y >= 3)'
    """
    if not conjunction.atoms:
        return Condition.false()  # ¬True
    disjuncts = []
    for atom in conjunction.atoms:
        if atom.is_ground():
            if not atom.truth_value():
                return Condition.true()
            continue
        for negated in negate_atom(atom):
            disjuncts.append(Conjunction([negated]))
    return Condition(disjuncts)


def negate_condition(condition: Condition, max_disjuncts: int = 512) -> Condition:
    """``¬condition`` in DNF, distributing over the disjuncts.

    ``¬(D₁ ∨ … ∨ Dₘ)`` conjoins the per-disjunct negations, so the
    result can grow as the product of their sizes; ``max_disjuncts``
    bounds the blow-up and raises :class:`ConditionError` beyond it
    (callers doing best-effort analysis catch and skip).
    """
    result = Condition.true()
    for disjunct in condition.disjuncts:
        result = result.conjoin(negate_conjunction(disjunct))
        if len(result.disjuncts) > max_disjuncts:
            raise ConditionError(
                f"negation of {condition} exceeds {max_disjuncts} disjuncts"
            )
    return result


def condition_implies(a: Condition, b: Condition) -> bool:
    """Does every solution of ``a`` satisfy ``b`` (DNF-level)?

    Decided as unsatisfiability of ``a ∧ ¬b``, the same reduction
    :func:`implies` uses atom-wise.  May raise
    :class:`ConditionError` when ``¬b`` explodes past the negation
    bound.

    >>> from repro.algebra.conditions import parse_condition
    >>> condition_implies(parse_condition("x > 7"), parse_condition("x > 5"))
    True
    >>> condition_implies(parse_condition("x > 5"), parse_condition("x > 7"))
    False
    """
    from repro.core.satisfiability import is_satisfiable

    return not is_satisfiable(a.conjoin(negate_condition(b)))


def conditions_equivalent(a: Condition, b: Condition) -> bool:
    """Do two DNF conditions have identical solution sets?"""
    return condition_implies(a, b) and condition_implies(b, a)


def minimize_condition(condition: Condition) -> Condition:
    """Minimize every disjunct and drop unsatisfiable ones.

    The result may be ``Condition.false()`` when nothing survives.
    """
    survivors = []
    for disjunct in condition.disjuncts:
        if not is_satisfiable_conjunction(disjunct):
            continue
        survivors.append(minimize_conjunction(disjunct))
    return Condition(survivors)
