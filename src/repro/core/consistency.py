"""Cross-checking differential maintenance against full re-evaluation.

The master invariant of the whole system (DESIGN.md §6): after any
sequence of transactions, a differentially-maintained view must equal —
tuple for tuple *and count for count* — the complete re-evaluation of
its defining expression over the current base relations.  This module
performs that comparison and reports differences precisely, and backs
both the maintainer's ``auto_verify`` mode and the property tests.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.evaluate import evaluate
from repro.algebra.relation import Relation
from repro.core.views import MaterializedView
from repro.errors import MaintenanceError


class ConsistencyReport:
    """The differences between a maintained view and the ground truth."""

    __slots__ = ("view_name", "missing", "unexpected", "count_mismatches")

    def __init__(
        self,
        view_name: str,
        missing: dict,
        unexpected: dict,
        count_mismatches: dict,
    ) -> None:
        self.view_name = view_name
        #: tuples the recomputation has but the view lacks: values -> count
        self.missing = missing
        #: tuples the view has but the recomputation lacks: values -> count
        self.unexpected = unexpected
        #: tuples present in both with differing counts: values -> (view, truth)
        self.count_mismatches = count_mismatches

    def is_consistent(self) -> bool:
        """True when the view matches the ground truth exactly."""
        return not (self.missing or self.unexpected or self.count_mismatches)

    def summary(self) -> str:
        """A one-line human-readable verdict."""
        if self.is_consistent():
            return f"view {self.view_name!r}: consistent"
        return (
            f"view {self.view_name!r}: {len(self.missing)} missing, "
            f"{len(self.unexpected)} unexpected, "
            f"{len(self.count_mismatches)} count mismatches"
        )

    def __repr__(self) -> str:
        return f"<ConsistencyReport {self.summary()}>"


def compare_relations(
    view_name: str, maintained: Relation, truth: Relation
) -> ConsistencyReport:
    """Diff two counted relations tuple by tuple."""
    maintained_counts = maintained.counts()
    truth_counts = truth.counts()
    missing = {
        values: count
        for values, count in truth_counts.items()
        if values not in maintained_counts
    }
    unexpected = {
        values: count
        for values, count in maintained_counts.items()
        if values not in truth_counts
    }
    mismatches = {
        values: (maintained_counts[values], truth_counts[values])
        for values in maintained_counts.keys() & truth_counts.keys()
        if maintained_counts[values] != truth_counts[values]
    }
    return ConsistencyReport(view_name, missing, unexpected, mismatches)


def check_view_consistency(
    view: MaterializedView,
    instances: Mapping[str, Relation],
    raise_on_mismatch: bool = True,
) -> ConsistencyReport:
    """Recompute ``view`` from scratch and compare with its contents.

    With ``raise_on_mismatch`` (the default) an inconsistency raises
    :class:`~repro.errors.MaintenanceError` carrying the report's
    summary; otherwise the report is returned for inspection either way.
    """
    truth = evaluate(view.definition.expression, instances)
    report = compare_relations(view.definition.name, view.contents, truth)
    if raise_on_mismatch and not report.is_consistent():
        raise MaintenanceError(report.summary())
    return report
