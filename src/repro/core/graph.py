"""The Rosenkrantz–Hunt constraint graph (Section 4).

A normalized conjunction (all atoms ``≤``/``≥``) is represented as a
directed weighted graph whose nodes are the variables plus a
distinguished zero node; the conjunction is unsatisfiable exactly when
the graph contains a negative-weight cycle.  The paper prescribes
Floyd's all-pairs shortest-path algorithm [F62] for the cycle test;
this module implements Floyd–Warshall (the paper's choice, also used
for the invariant-graph precomputation of Algorithm 4.1) and
Bellman–Ford (asymptotically better for the one-shot sparse case),
which the test suite cross-checks against each other.

Edge encoding
-------------
Following the paper's two-variable convention, the atom ``x ≤ y + c``
becomes the edge ``(x, y, c)`` — origin ``x``, destination ``y``,
weight ``c`` — and ``x ≥ y + c`` (equivalently ``y ≤ x − c``) becomes
``(y, x, −c)``.  Single-variable bounds route through the zero node
``ZERO`` (standing for the constant 0):

* ``x ≤ c``  →  edge ``(x, ZERO, c)``
* ``x ≥ c``  →  edge ``(ZERO, x, −c)``

*Erratum note:* the paper's prose lists the bound edges as
``('0', x, c)`` and ``(x, '0', −c)``, i.e. with origin and destination
swapped relative to its own two-variable convention.  Applying the
two-variable rule uniformly (treat ``x ≤ c`` as ``x ≤ ZERO + c``)
yields the directions used here; with the paper's literal directions
the worked Example 4.1 would come out wrong.  EXPERIMENTS.md records
this as a reproduction erratum.

With this encoding an edge ``(u, v, w)`` asserts ``u − v ≤ w``, so the
telescoped sum around any cycle is ≥ 0 in every solution; a
negative-weight cycle therefore certifies unsatisfiability, and
conversely shortest-path potentials construct a solution when no such
cycle exists (see :meth:`ConstraintGraph.solve`).
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.conditions import Atom
from repro.errors import ConditionError
from repro.instrumentation import charge

#: The distinguished node standing for the constant zero.
ZERO = "0"

INF = float("inf")


class ConstraintGraph:
    """A directed weighted graph over condition variables plus ``ZERO``.

    Parallel edges collapse to the minimum weight (the tightest
    constraint), which preserves both cycle detection and solutions.
    """

    __slots__ = ("_nodes", "_edges")

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: set[str] = set(nodes)
        self._nodes.add(ZERO)
        # (origin, destination) -> weight (minimum over parallel edges)
        self._edges: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom],
                   nodes: Iterable[str] = ()) -> "ConstraintGraph":
        """Build a graph from normalized (``≤``/``≥``) atoms."""
        graph = cls(nodes)
        for atom in atoms:
            graph.add_atom(atom)
        return graph

    def add_node(self, node: str) -> None:
        """Ensure ``node`` exists (isolated nodes are fine)."""
        self._nodes.add(node)

    def add_edge(self, origin: str, destination: str, weight: int) -> None:
        """Add ``origin − destination ≤ weight``, keeping the tightest."""
        self._nodes.add(origin)
        self._nodes.add(destination)
        key = (origin, destination)
        existing = self._edges.get(key)
        if existing is None or weight < existing:
            self._edges[key] = weight

    def add_atom(self, atom: Atom) -> None:
        """Translate one normalized atom into its edge.

        >>> g = ConstraintGraph()
        >>> g.add_atom(Atom("x", "<=", "y", 2))   # x <= y + 2
        >>> g.edges()[("x", "y")]
        2
        """
        if atom.op not in ("<=", ">="):
            raise ConditionError(
                f"graph atoms must be normalized to <= or >=, got {atom}"
            )
        if atom.is_ground():
            raise ConditionError(f"ground atom {atom} does not belong in the graph")
        if atom.is_two_variable():
            x = atom.left.name  # type: ignore[union-attr]
            y = atom.right.name  # type: ignore[union-attr]
            if atom.op == "<=":
                self.add_edge(x, y, atom.offset)
            else:
                self.add_edge(y, x, -atom.offset)
            return
        # Single-variable bound: x op c, routed through ZERO.
        assert atom.is_single_variable()
        x = atom.left.name  # type: ignore[union-attr]
        c = atom.right.value  # type: ignore[union-attr]
        if atom.op == "<=":
            self.add_edge(x, ZERO, c)
        else:
            self.add_edge(ZERO, x, -c)

    def copy(self) -> "ConstraintGraph":
        """An independent copy."""
        out = ConstraintGraph(self._nodes)
        out._edges = dict(self._edges)
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def edges(self) -> dict[tuple[str, str], int]:
        return dict(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"<ConstraintGraph {len(self._nodes)} nodes, {len(self._edges)} edges>"

    # ------------------------------------------------------------------
    # Shortest paths / negative cycles
    # ------------------------------------------------------------------
    def floyd_warshall(self) -> tuple[dict[str, dict[str, float]], bool]:
        """All-pairs shortest paths by Floyd's algorithm [F62].

        Returns ``(dist, has_negative_cycle)``.  ``dist[u][v]`` is the
        shortest-path weight from ``u`` to ``v`` (``inf`` if
        unreachable); a negative diagonal entry certifies a negative
        cycle.  This is the paper's prescribed O(n³) procedure.
        """
        charge("floyd_warshall_runs")
        nodes = sorted(self._nodes)
        dist: dict[str, dict[str, float]] = {
            u: {v: (0 if u == v else INF) for v in nodes} for u in nodes
        }
        for (u, v), w in self._edges.items():
            if w < dist[u][v]:
                dist[u][v] = w
        for k in nodes:
            dk = dist[k]
            for i in nodes:
                dik = dist[i][k]
                if dik == INF:
                    continue
                di = dist[i]
                for j in nodes:
                    alt = dik + dk[j]
                    if alt < di[j]:
                        di[j] = alt
        negative = any(dist[u][u] < 0 for u in nodes)
        return dist, negative

    def bellman_ford_negative_cycle(self) -> bool:
        """Negative-cycle detection by Bellman–Ford (O(n·e)).

        Runs from a virtual super-source connected to every node with a
        zero-weight edge, so cycles anywhere in the graph are found.
        """
        charge("bellman_ford_runs")
        nodes = list(self._nodes)
        dist: dict[str, float] = {u: 0 for u in nodes}  # virtual source
        edges = list(self._edges.items())
        for _ in range(len(nodes) - 1):
            changed = False
            for (u, v), w in edges:
                alt = dist[u] + w
                if alt < dist[v]:
                    dist[v] = alt
                    changed = True
            if not changed:
                return False
        for (u, v), w in edges:
            if dist[u] + w < dist[v]:
                return True
        return False

    def has_negative_cycle(self, method: str = "bellman") -> bool:
        """Negative-cycle test by either algorithm.

        ``method`` is ``"bellman"`` (default; faster one-shot) or
        ``"floyd"`` (the paper's choice).  Both are exercised and
        cross-checked by the test suite.
        """
        if method == "floyd":
            _, negative = self.floyd_warshall()
            return negative
        if method == "bellman":
            return self.bellman_ford_negative_cycle()
        raise ValueError(f"unknown method {method!r}")

    def solve(self) -> dict[str, int] | None:
        """An integer assignment satisfying every edge, or ``None``.

        An edge ``(u, v, w)`` demands ``value(u) − value(v) ≤ w``.
        Bellman–Ford potentials from a virtual source satisfy all
        difference constraints when no negative cycle exists; the final
        shift pins ``ZERO`` to the value 0, making single-variable
        bounds come out right.

        The returned mapping covers every node except ``ZERO``.
        """
        nodes = list(self._nodes)
        # Edge (u, v, w): u - v <= w. In standard difference-constraint
        # form (x_a - x_b <= w gives edge b->a), Bellman-Ford relaxation
        # must push distance from v to u.
        dist: dict[str, float] = {u: 0 for u in nodes}
        edges = list(self._edges.items())
        for _ in range(len(nodes) - 1):
            changed = False
            for (u, v), w in edges:
                alt = dist[v] + w
                if alt < dist[u]:
                    dist[u] = alt
                    changed = True
            if not changed:
                break
        else:
            for (u, v), w in edges:
                if dist[v] + w < dist[u]:
                    return None
        for (u, v), w in edges:
            if dist[v] + w < dist[u]:
                return None
        shift = dist[ZERO]
        return {
            node: int(dist[node] - shift) for node in nodes if node != ZERO
        }
