"""Per-group aggregate state, maintained from core SPJ deltas.

The Section 5.2 multiplicity counter generalizes: where an SPJ view
stores one counter per visible tuple, an aggregate view stores one
*support bag* per group — the group's core rows with their summed
multiplicities — and derives the visible row (COUNT/SUM/AVG/MIN/MAX
cells) from the bag on demand.  The bag is exactly what sound
incremental MIN/MAX needs: deleting the current extremum exposes the
runner-up only if the per-value support survives, which no bounded
per-group accumulator can provide.  COUNT/SUM/AVG would get away with
plain totals; the implementation keeps the bag uniformly so one fold
and one renderer cover the whole supported class.

The fold protocol mirrors the generated aggregate kernel
(:func:`repro.core.codegen.generate_aggregate_source`) *exactly* —
same touched-group ordering, same mutation order, same underflow
signalling — so the ``use_codegen`` ablation is byte-for-byte and
counter-for-counter comparable.  Both are driven by
:meth:`repro.core.compiled.CompiledViewPlan.fold_aggregate`, which owns
the instrumentation charges and the visible-delta assembly.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.aggregates import (
    AggregateSpec,
    ColumnPlan,
    column_plans,
    render_group,
)
from repro.algebra.relation import Relation
from repro.algebra.schema import RelationSchema

ValueTuple = tuple[int, ...]
#: (touched keys in deterministic order, key → visible row before,
#:  key → visible row after, offending core row on underflow or None).
FoldResult = tuple[
    "dict[ValueTuple, int]",
    "dict[ValueTuple, ValueTuple]",
    "dict[ValueTuple, ValueTuple]",
    "ValueTuple | None",
]


class AggregateState:
    """One aggregate view's maintained state: group → core-row support.

    ``groups[key][core_row] = multiplicity`` with every multiplicity
    positive and no empty bags — the invariants
    :class:`~repro.algebra.relation.Relation` keeps for its counters,
    lifted one level.  A group with no bag emits no visible row (the
    aggregate analogue of "delete the tuple when its counter reaches
    zero").
    """

    __slots__ = (
        "spec",
        "core_schema",
        "visible_schema",
        "key_positions",
        "plans",
        "groups",
    )

    def __init__(self, spec: AggregateSpec, core_schema: RelationSchema) -> None:
        self.spec = spec
        self.core_schema = core_schema
        self.visible_schema = spec.output_schema(core_schema)
        self.key_positions: tuple[int, ...] = core_schema.positions(spec.keys)
        self.plans: ColumnPlan = column_plans(spec, core_schema)
        self.groups: dict[ValueTuple, dict[ValueTuple, int]] = {}

    @classmethod
    def from_core(cls, spec: AggregateSpec, core: Relation) -> "AggregateState":
        """Build the state from a fully evaluated core relation."""
        state = cls(spec, core.schema)
        groups = state.groups
        positions = state.key_positions
        for values, count in core.items():
            key = tuple(values[i] for i in positions)
            bag = groups.setdefault(key, {})
            bag[values] = bag.get(values, 0) + count
        return state

    def visible_relation(self) -> Relation:
        """Render every group into the visible (set-semantics) relation."""
        counts: dict[ValueTuple, int] = {}
        for key in sorted(self.groups):
            row = render_group(key, self.groups[key], self.plans)
            if row is not None:
                counts[row] = 1
        return Relation.from_counts(self.visible_schema, counts)

    def stored_contents(self) -> Relation:
        """The core support bag as one counted relation.

        This is what checkpoints persist for an aggregate view: the
        visible rows are derived state, and restoring MIN/MAX soundly
        needs the per-row support back.  Flattening and regrouping are
        inverse by construction (the grouping key is a projection of
        the row), so restore is byte-for-byte.
        """
        counts: dict[ValueTuple, int] = {}
        for bag in self.groups.values():
            for row, count in bag.items():
                counts[row] = counts.get(row, 0) + count
        return Relation.from_counts(self.core_schema, counts)

    def render(self, key: ValueTuple) -> ValueTuple | None:
        """The visible row of one group (None when the group is empty)."""
        bag = self.groups.get(key)
        if not bag:
            return None
        return render_group(key, bag, self.plans)

    def fold(
        self,
        inserted: Mapping[ValueTuple, int],
        deleted: Mapping[ValueTuple, int],
    ) -> FoldResult:
        """The interpreter fold — the oracle the generated kernel mirrors.

        Collects the touched groups (inserts first, then deletes, in
        delta order), renders their before-rows, applies the core delta
        to the support bags, and renders the after-rows.  An underflow
        (deleting more copies of a core row than its group supports)
        aborts mid-mutation and returns the offending row in the fourth
        slot; the driver raises — the same fatal-invariant contract as
        :meth:`repro.algebra.relation.Relation.discard`.
        """
        positions = self.key_positions
        plans = self.plans
        groups = self.groups
        touched: dict[ValueTuple, int] = {}
        for values in inserted:
            touched[tuple(values[i] for i in positions)] = 1
        for values in deleted:
            touched[tuple(values[i] for i in positions)] = 1
        before: dict[ValueTuple, ValueTuple] = {}
        for key in touched:
            bag = groups.get(key)
            if bag:
                row = render_group(key, bag, plans)
                if row is not None:
                    before[key] = row
        for values, count in inserted.items():
            key = tuple(values[i] for i in positions)
            bag = groups.get(key)
            if bag is None:
                groups[key] = {values: count}
            else:
                bag[values] = bag.get(values, 0) + count
        for values, count in deleted.items():
            key = tuple(values[i] for i in positions)
            bag = groups.get(key)
            remaining = (bag.get(values, 0) if bag is not None else 0) - count
            if remaining < 0:
                return touched, before, {}, values
            assert bag is not None
            if remaining:
                bag[values] = remaining
            else:
                del bag[values]
                if not bag:
                    del groups[key]
        after: dict[ValueTuple, ValueTuple] = {}
        for key in touched:
            bag = groups.get(key)
            if bag:
                row = render_group(key, bag, plans)
                if row is not None:
                    after[key] = row
        return touched, before, after, None

    def __len__(self) -> int:
        return len(self.groups)

    def __repr__(self) -> str:
        support = sum(len(bag) for bag in self.groups.values())
        return (
            f"<AggregateState {len(self.groups)} groups, "
            f"{support} support rows ({self.spec})>"
        )
