"""The binary truth table of Section 5.3.

To differentially update a join view ``V = R₁ ⋈ R₂ ⋈ … ⋈ R_p`` the
paper associates a binary variable ``B_i`` with each relation: value 0
selects the *old* tuples of ``r_i`` and value 1 selects the tuples the
transaction changed.  Expanding the join of ``(old ∪ changed)`` over
union yields one subexpression per row of the truth table; the all-old
row is the current view and is skipped, and — crucially — "in practice
it is not necessary to build a table with 2^p rows.  Instead, by
knowing which relations have been modified, we can build only those
rows of the table representing the necessary subexpressions", which
with ``k`` modified relations costs O(2^k) regardless of ``p``.

This module enumerates exactly those rows.  A row is a tuple of
:class:`DeltaRowChoice` values, one per occurrence (``OLD`` everywhere
except the changed positions, which range over ``OLD``/``DELTA``).
"""

from __future__ import annotations

import enum
from itertools import product
from typing import Iterator, Sequence

from repro.errors import MaintenanceError
from repro.instrumentation import charge


class DeltaRowChoice(enum.Enum):
    """One truth-table cell: which tuples of the operand a row uses."""

    #: B_i = 0 — tuples present both before and after the transaction.
    OLD = 0
    #: B_i = 1 — the transaction's net-change tuples (tagged inserts
    #: and deletes).
    DELTA = 1

    def __repr__(self) -> str:
        return f"DeltaRowChoice.{self.name}"


Rows = tuple[DeltaRowChoice, ...]


def enumerate_delta_rows(
    num_operands: int, changed_positions: Sequence[int]
) -> Iterator[Rows]:
    """Yield the truth-table rows that need evaluating.

    ``changed_positions`` are the operand indices the transaction
    modified.  The generator yields every combination of OLD/DELTA over
    those positions except all-OLD (the current view), with unchanged
    positions pinned to OLD — ``2^k − 1`` rows in total.

    The paper's p = 3 example: with insertions to r₁ and r₂ only,
    "to bring the view up to date we need to compute only the joins
    represented by rows 3, 5, and 7":

    >>> rows = list(enumerate_delta_rows(3, [0, 1]))
    >>> [tuple(c.value for c in row) for row in rows]
    [(0, 1, 0), (1, 0, 0), (1, 1, 0)]
    """
    changed = sorted(set(changed_positions))
    if not changed:
        return
    for position in changed:
        if not 0 <= position < num_operands:
            raise MaintenanceError(
                f"changed position {position} out of range for "
                f"{num_operands} operands"
            )
    for bits in product((DeltaRowChoice.OLD, DeltaRowChoice.DELTA),
                        repeat=len(changed)):
        if all(b is DeltaRowChoice.OLD for b in bits):
            continue  # the current materialization of the view
        row = [DeltaRowChoice.OLD] * num_operands
        for position, bit in zip(changed, bits):
            row[position] = bit
        charge("truth_table_rows")
        yield tuple(row)


def count_delta_rows(changed_count: int) -> int:
    """Number of rows :func:`enumerate_delta_rows` will yield: 2^k − 1."""
    if changed_count < 0:
        raise MaintenanceError("changed_count must be non-negative")
    return (1 << changed_count) - 1 if changed_count else 0


def render_row(row: Rows, operand_names: Sequence[str]) -> str:
    """Format a row like the paper's table, e.g. ``i_r1 ⋈ r2 ⋈ r3``.

    DELTA cells render as ``i_<name>`` following the paper's insert-only
    exposition; in the general tagged setting a DELTA cell carries both
    inserts and deletes.
    """
    if len(row) != len(operand_names):
        raise MaintenanceError(
            f"row width {len(row)} does not match {len(operand_names)} names"
        )
    parts = [
        name if choice is DeltaRowChoice.OLD else f"i_{name}"
        for choice, name in zip(row, operand_names)
    ]
    return " ⋈ ".join(parts)


def full_truth_table(num_operands: int) -> list[Rows]:
    """All ``2^p`` rows including the all-old row, for display only.

    This reproduces the paper's illustrative p = 3 table verbatim
    (benchmark E5 prints it); maintenance itself always uses
    :func:`enumerate_delta_rows`.
    """
    rows = []
    for bits in product((DeltaRowChoice.OLD, DeltaRowChoice.DELTA),
                        repeat=num_operands):
        rows.append(tuple(bits))
    return rows
