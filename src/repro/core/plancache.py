"""The per-maintainer cache of compiled maintenance plans.

One :class:`PlanCache` lives inside each
:class:`~repro.core.maintainer.ViewMaintainer`.  It maps view names to
:class:`~repro.core.compiled.CompiledViewPlan` objects and tracks the
three events that matter for its correctness story:

* **hit** — a maintenance call executed an already-compiled plan;
* **miss** — no plan was cached (first use, post-invalidation, or the
  cache is disabled for ablation) and one was compiled;
* **invalidation** — a cached plan was discarded because something it
  depends on changed: an index was created or dropped, a base relation
  was dropped, or the view was re-registered under the same name.

The counters feed both the maintainer's ``stats`` mapping and — through
:mod:`repro.instrumentation` — the server's ``stats`` operation, so the
amortization claim ("plans are built once per view, not once per
transaction") is observable end to end.

Plan fingerprints (see :func:`repro.core.codegen.plan_fingerprint`)
cover the execution mode and generated-source version, not just the
normal form: a plan compiled with the generated batch kernels carries
``("codegen", CODEGEN_VERSION)`` while an interpreter plan carries
``("interpreter",)``.  Toggling ``use_codegen`` — or bumping
``CODEGEN_VERSION`` when kernel emission changes — therefore misses on
:meth:`PlanCache.get` and recompiles, so stale generated source can
never be executed against a maintainer configured differently.
Invalidation also drops the compiled kernel artifacts along with the
plan: a static-irrelevance proof baked into generated screen source is
discarded the moment ``declare_constraint`` / ``drop_constraint``
changes what is provable.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.compiled import CompiledViewPlan
from repro.instrumentation import charge


class PlanCacheStats:
    """Cumulative hit/miss/invalidation counters for one cache."""

    __slots__ = ("hits", "misses", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "plan_cache_hits": self.hits,
            "plan_cache_misses": self.misses,
            "plan_cache_invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<PlanCacheStats hits={self.hits} misses={self.misses} "
            f"invalidations={self.invalidations}>"
        )


class PlanCache:
    """Compiled plans keyed by view name, with explicit invalidation.

    The cache never compiles anything itself — the maintainer owns
    compilation — it only stores, serves, and discards plans, charging
    the instrumentation counters as it goes.  A fingerprint check on
    :meth:`get` guards against serving a plan compiled for a different
    definition that happens to share the view's name (the
    re-registration race the invalidation path exists to prevent).
    """

    __slots__ = ("_plans", "stats")

    def __init__(self) -> None:
        self._plans: dict[str, CompiledViewPlan] = {}
        self.stats = PlanCacheStats()

    def get(
        self, name: str, fingerprint: tuple | None = None
    ) -> Optional[CompiledViewPlan]:
        """The cached plan for ``name``, or None (counted as hit/miss).

        When ``fingerprint`` is given, a cached plan whose definition
        identity differs is treated as stale: it is evicted and the call
        counts as a miss.
        """
        plan = self._plans.get(name)
        if plan is not None and fingerprint is not None:
            if plan.fingerprint != fingerprint:
                del self._plans[name]
                plan = None
        if plan is None:
            self.stats.misses += 1
            charge("plan_cache_misses")
            return None
        self.stats.hits += 1
        charge("plan_cache_hits")
        return plan

    def peek(self, name: str) -> Optional[CompiledViewPlan]:
        """The cached plan without touching the hit/miss counters."""
        return self._plans.get(name)

    def fingerprints(self) -> dict[str, tuple]:
        """Every cached plan's definition fingerprint, keyed by name.

        Purely observational — the staleness-audit hook: an external
        checker (the simulation harness's oracle, a debugging session)
        compares these against the live definitions' fingerprints to
        prove no cached plan outlived the definition it was compiled
        for.
        """
        return {name: plan.fingerprint for name, plan in self._plans.items()}

    def put(self, name: str, plan: CompiledViewPlan) -> CompiledViewPlan:
        """Store a freshly compiled plan (replacing any cached one)."""
        self._plans[name] = plan
        return plan

    def invalidate(self, name: str) -> bool:
        """Discard one view's plan; True when a plan was cached."""
        plan = self._plans.pop(name, None)
        if plan is None:
            return False
        self.stats.invalidations += 1
        charge("plan_cache_invalidations")
        return True

    def invalidate_all(self) -> int:
        """Discard every cached plan; returns how many were discarded."""
        count = len(self._plans)
        if count:
            self._plans.clear()
            self.stats.invalidations += count
            charge("plan_cache_invalidations", count)
        return count

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, name: str) -> bool:
        return name in self._plans

    def __iter__(self) -> Iterator[str]:
        return iter(self._plans)

    def __repr__(self) -> str:
        return f"<PlanCache {len(self._plans)} plans, {self.stats!r}>"
