"""The network view-server: asyncio front-end over one database.

The paper's economics — pay maintenance at write time so reads are a
lookup — only matter if something can *read*.  This package serves a
:class:`~repro.engine.database.Database` and its
:class:`~repro.core.maintainer.ViewMaintainer` over a length-prefixed
JSON wire protocol:

* ``query`` — read a view or relation (optionally filtered/projected)
  from stored contents; no recomputation, ever;
* ``txn`` — commit insert/delete batches through the normal pipeline
  (irrelevance filter + differential maintenance, WAL when durable);
* ``subscribe`` — live per-view changefeed fan-out with resumable
  offsets;
* ``stats`` — cost counters and per-view maintenance statistics.

See ``docs/server.md`` for the protocol, and ``examples/serve_client.py``
for the end-to-end workflow.
"""

from repro.server.client import ViewClient
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServerError,
)
from repro.server.server import (
    Changefeed,
    ServerConfig,
    ServerHandle,
    ViewServer,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Changefeed",
    "ProtocolError",
    "ServerConfig",
    "ServerError",
    "ServerHandle",
    "ViewClient",
    "ViewServer",
]
