"""One connected client: framing loop, outbox, backpressure policy.

A :class:`Session` owns exactly one TCP connection.  Requests are read
and handled *sequentially* (a client that wants parallelism opens more
connections), so a session never interleaves two of its own requests;
different sessions interleave only at ``await`` points, and all
database work is synchronous — the event loop serializes every commit.

All outbound frames — responses and changefeed events alike — pass
through one bounded outbox queue drained by a writer task.  That queue
is the server's backpressure boundary: when a client stops reading, the
kernel socket buffer fills, the writer task blocks in ``drain()``, the
outbox fills, and the next frame that does not fit triggers the
slow-consumer policy — the session is *disconnected*, never awaited,
so one stalled subscriber cannot wedge the commit path fanning out to
everyone else.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.server import protocol
from repro.server.protocol import ProtocolError


class Session:
    """State and I/O loops for one connection (server side)."""

    def __init__(self, server, reader, writer, session_id: int) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.session_id = session_id
        config = server.config
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=config.outbox_frames)
        #: subscription id → view name (ids are per-session).
        self.subscriptions: dict[int, str] = {}
        self._next_subscription_id = 1
        #: Events staged by a ``subscribe`` handler, flushed right after
        #: its response so the response frame always precedes them.
        self.pending_events: list[dict[str, Any]] = []
        self.closing = False
        self.close_reason: str | None = None
        self._aborted = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._writer_task: asyncio.Task | None = None
        self.task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Main loops
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Read → handle → respond until EOF, error, or shutdown."""
        self._writer_task = asyncio.create_task(self._writer_loop())
        try:
            await self._read_loop()
        except asyncio.CancelledError:
            pass
        except ProtocolError as exc:
            # Framing violations are fatal: report once, then hang up
            # (the stream can no longer be trusted to re-synchronize).
            self.send_frame(protocol.response_error(None, exc.code, str(exc)))
            self.close_reason = self.close_reason or exc.code
        except (ConnectionError, OSError):
            self.close_reason = self.close_reason or "io_error"
        finally:
            await self._shutdown()

    async def _read_loop(self) -> None:
        config = self.server.config
        while not self.closing:
            doc = await protocol.read_frame_async(self.reader, config.max_frame_bytes)
            if doc is None or self.closing:
                break
            self._idle.clear()
            try:
                await self._handle(doc)
            finally:
                self._idle.set()

    async def _handle(self, doc: dict[str, Any]) -> None:
        config = self.server.config
        try:
            response = await asyncio.wait_for(
                self.server.dispatch(self, doc), config.request_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            self.pending_events.clear()
            response = protocol.response_error(
                doc.get("id"),
                protocol.E_TIMEOUT,
                f"request exceeded the {config.request_timeout}s limit",
            )
        self.send_frame(response)
        # Subscription catch-up: staged after the response so a resumed
        # subscriber always sees its confirmation before any event.
        events, self.pending_events = self.pending_events, []
        for event in events:
            if not self.send_frame(event):
                break

    async def _writer_loop(self) -> None:
        try:
            while True:
                frame = await self.outbox.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
                self.server.recorder.incr("server_bytes_written", len(frame))
        except (ConnectionError, OSError):
            self.closing = True
            self.close_reason = self.close_reason or "io_error"

    # ------------------------------------------------------------------
    # Outbound frames and the slow-consumer policy
    # ------------------------------------------------------------------
    def send_frame(self, doc: dict[str, Any]) -> bool:
        """Enqueue one outbound frame; False when the session is done for.

        Never blocks.  A full outbox means the peer has stopped reading
        faster than the server produces: the session is aborted on the
        spot (slow-consumer policy) rather than awaited.
        """
        if self.closing:
            return False
        try:
            self.outbox.put_nowait(protocol.encode_frame(doc))
        except asyncio.QueueFull:
            self.server.recorder.incr("server_slow_consumer_disconnects")
            self.abort("slow_consumer")
            return False
        return True

    def abort(self, reason: str) -> None:
        """Drop the connection immediately, without flushing the outbox."""
        if self.closing:
            return
        self.closing = True
        self._aborted = True
        self.close_reason = reason
        if self._writer_task is not None:
            self._writer_task.cancel()
        transport = self.writer.transport
        if transport is not None:
            transport.abort()
        # Wake the read loop if it is parked in read_frame_async.
        if self.task is not None:
            self.task.cancel()

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def new_subscription(self, view_name: str) -> int:
        """Register a changefeed subscription; returns its id."""
        subscription_id = self._next_subscription_id
        self._next_subscription_id += 1
        self.subscriptions[subscription_id] = view_name
        return subscription_id

    def drop_subscription(self, subscription_id: int) -> str | None:
        """Forget one subscription; returns its view name (None if absent)."""
        return self.subscriptions.pop(subscription_id, None)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def drain_close(self, timeout: float) -> None:
        """Graceful-shutdown path: finish in-flight work, then close.

        Waits (bounded) for the request being handled to complete —
        this is what "drains in-flight transactions" means: a commit
        that has started gets to finish and its response gets queued —
        then stops the read loop; :meth:`run`'s cleanup flushes the
        outbox so queued responses still reach the client.
        """
        self.closing = True
        with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
            await asyncio.wait_for(self._idle.wait(), timeout)
        if self.task is not None:
            self.task.cancel()

    async def _shutdown(self) -> None:
        self.closing = True
        if self._writer_task is not None:
            if self._aborted:
                self._writer_task.cancel()
            else:
                try:
                    self.outbox.put_nowait(None)
                except asyncio.QueueFull:
                    self._writer_task.cancel()
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._writer_task),
                    self.server.config.drain_timeout,
                )
            except (asyncio.TimeoutError, TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        with contextlib.suppress(ConnectionError, OSError, asyncio.CancelledError):
            self.writer.close()
            await self.writer.wait_closed()
        self.server.release_session(self)

    def __repr__(self) -> str:
        return (
            f"<Session {self.session_id} "
            f"{len(self.subscriptions)} subscriptions"
            f"{' closing' if self.closing else ''}>"
        )


class LocalSession:
    """An in-process session over an injectable transport — no sockets.

    Opened with :meth:`ViewServer.open_local_session`, this presents the
    exact session surface :meth:`ViewServer.dispatch` and the changefeed
    fan-out rely on (``subscriptions``, ``pending_events``,
    ``send_frame``…), but every outbound frame — response and event
    alike — leaves through one caller-supplied ``transport(frame) ->
    bool`` callable instead of a TCP writer.  The deterministic
    simulation harness plugs a fault-injecting in-memory channel in
    here; an embedder could just as well plug a queue.

    The backpressure contract carries over unchanged: a transport that
    returns ``False`` means the frame did not fit (the peer has stopped
    draining), and the session is disconnected on the spot — the same
    slow-consumer policy a socket-backed :class:`Session` applies when
    its outbox fills.

    Requests are handled *synchronously*: ``dispatch`` is an ``async
    def`` for the socket path's timeout plumbing, but every handler
    body is synchronous, so :meth:`handle` drives the coroutine to
    completion without an event loop.
    """

    def __init__(self, server, session_id: int, transport) -> None:
        self.server = server
        self.session_id = session_id
        self._transport = transport
        self.subscriptions: dict[int, str] = {}
        self._next_subscription_id = 1
        self.pending_events: list[dict[str, Any]] = []
        self.closing = False
        self.close_reason: str | None = None
        self.task = None

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def handle(self, doc: dict[str, Any]) -> bool:
        """Dispatch one request document; False once the session is closed.

        The response frame is pushed through the transport, followed by
        any events the handler staged (subscription catch-up), exactly
        in the order the socket path would write them.
        """
        if self.closing:
            return False
        coro = self.server.dispatch(self, doc)
        try:
            coro.send(None)
        except StopIteration as stop:
            response = stop.value
        else:  # pragma: no cover - dispatch handlers are synchronous
            coro.close()
            raise RuntimeError(
                "ViewServer.dispatch suspended; LocalSession requires "
                "synchronous request handlers"
            )
        self.send_frame(response)
        events, self.pending_events = self.pending_events, []
        for event in events:
            if not self.send_frame(event):
                break
        return not self.closing

    # ------------------------------------------------------------------
    # Outbound frames and the slow-consumer policy
    # ------------------------------------------------------------------
    def send_frame(self, doc: dict[str, Any]) -> bool:
        """Push one frame through the transport; False when it refuses."""
        if self.closing:
            return False
        if not self._transport(protocol.encode_frame(doc)):
            self.server.recorder.incr("server_slow_consumer_disconnects")
            self.close("slow_consumer")
            return False
        return True

    # ------------------------------------------------------------------
    # Subscriptions (identical bookkeeping to Session)
    # ------------------------------------------------------------------
    def new_subscription(self, view_name: str) -> int:
        """Register a changefeed subscription; returns its id."""
        subscription_id = self._next_subscription_id
        self._next_subscription_id += 1
        self.subscriptions[subscription_id] = view_name
        return subscription_id

    def drop_subscription(self, subscription_id: int) -> str | None:
        """Forget one subscription; returns its view name (None if absent)."""
        return self.subscriptions.pop(subscription_id, None)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self, reason: str | None = None) -> None:
        """Release the session; safe to call more than once."""
        if self.closing:
            return
        self.closing = True
        self.close_reason = reason
        self.server.release_session(self)

    def __repr__(self) -> str:
        return (
            f"<LocalSession {self.session_id} "
            f"{len(self.subscriptions)} subscriptions"
            f"{' closing' if self.closing else ''}>"
        )
