"""A blocking client for the view-server wire protocol.

:class:`ViewClient` is deliberately synchronous — the audience is
ordinary application code, benchmarks and tests, none of which want an
event loop of their own.  One client owns one TCP connection; requests
on it are strictly sequential (open more clients for parallelism, which
is also how the server's fairness works).

Changefeed events arrive interleaved with responses on the same
connection.  The client demultiplexes: frames carrying ``event`` are
buffered internally and handed out by :meth:`next_event` /
:meth:`drain_events`, frames carrying ``id`` complete the pending call.
A failed request raises :class:`~repro.server.protocol.ServerError`
with the server's closed-vocabulary error code; a dropped connection
(including a slow-consumer disconnect) raises :class:`ConnectionError`.
"""

from __future__ import annotations

import contextlib
import socket
from collections import deque
from typing import Any

from repro.server import protocol
from repro.server.protocol import ServerError


class ViewClient:
    """One blocking connection to a :class:`~repro.server.server.ViewServer`.

    Parameters
    ----------
    host, port:
        Where the server listens.
    timeout:
        Socket timeout in seconds for connect and for each response
        (``None`` blocks forever).
    max_frame_bytes:
        Inbound frame bound — match the server's config when raised.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = 10.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._socket.makefile("rb")
        self._events: deque[dict[str, Any]] = deque()
        self._next_id = 1
        self._closed = False

    # ------------------------------------------------------------------
    # The request/response engine
    # ------------------------------------------------------------------
    def call(self, op: str, **params: Any) -> dict[str, Any]:
        """Issue one request and block for its response's ``result``.

        ``None``-valued parameters are omitted from the wire document.
        Event frames received while waiting are buffered for
        :meth:`next_event`.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = self._next_id
        self._next_id += 1
        doc = {"id": request_id, "op": op}
        doc.update({k: v for k, v in params.items() if v is not None})
        self._socket.settimeout(self.timeout)
        self._socket.sendall(protocol.encode_frame(doc))
        while True:
            frame = self._read_frame()
            if frame is None:
                raise ConnectionError(
                    "server closed the connection (a full outbox disconnects "
                    "slow consumers; see docs/server.md)"
                )
            if "event" in frame:
                self._events.append(frame)
                continue
            if frame.get("id") == request_id:
                if frame.get("ok"):
                    return frame.get("result", {})
                error = frame.get("error") or {}
                raise ServerError(
                    error.get("code", protocol.E_INTERNAL),
                    error.get("message", "request failed"),
                )
            if frame.get("id") is None and not frame.get("ok", True):
                # Unsolicited fatal error (admission rejection, framing
                # violation): the server hangs up after sending it.
                error = frame.get("error") or {}
                raise ServerError(
                    error.get("code", protocol.E_INTERNAL),
                    error.get("message", "connection refused"),
                )
            # A response to an abandoned earlier call: drop it.

    def _read_frame(self) -> dict[str, Any] | None:
        try:
            return protocol.read_frame_blocking(self._stream, self.max_frame_bytes)
        except TimeoutError:  # socket.timeout — let callers decide
            raise
        except OSError as exc:
            raise ConnectionError(f"connection lost: {exc}") from exc

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Round-trip check; returns protocol version and catalog names."""
        return self.call("ping")

    def query(
        self,
        target: str,
        where: str | None = None,
        select: list[str] | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Read a view or relation; rows/counts/attributes/seq.

        ``where`` is a selection condition in the paper's class (it
        filters the *stored* contents — the server never re-evaluates a
        view); ``select`` projects attributes (bag semantics: counts
        merge); ``limit`` truncates the sorted row list.
        """
        return self.call(
            "query", target=target, where=where, select=select, limit=limit
        )

    def txn(
        self,
        insert: dict[str, list] | None = None,
        delete: dict[str, list] | None = None,
    ) -> dict[str, Any]:
        """Commit one transaction of row batches; returns txn id and seq.

        Exactly the in-process commit pipeline runs server-side:
        net-effect semantics, irrelevance filtering, differential view
        maintenance, WAL append when the server is durable.
        """
        insert_doc = (
            {name: [list(row) for row in rows] for name, rows in insert.items()}
            if insert
            else None
        )
        delete_doc = (
            {name: [list(row) for row in rows] for name, rows in delete.items()}
            if delete
            else None
        )
        return self.call("txn", insert=insert_doc, delete=delete_doc)

    def subscribe(self, view: str, from_seq: int | None = None) -> dict[str, Any]:
        """Open a live changefeed on ``view``; returns the subscription.

        ``from_seq`` resumes from a past position: retained deltas with
        sequence greater than it are delivered first (the server's
        response reports how many were ``replayed``), then live ones.
        """
        return self.call("subscribe", view=view, **{"from": from_seq})

    def unsubscribe(self, subscription: int) -> dict[str, Any]:
        """Close one changefeed subscription."""
        return self.call("unsubscribe", subscription=subscription)

    def stats(self) -> dict[str, Any]:
        """Server cost counters, per-view maintenance stats, session info."""
        return self.call("stats")

    # ------------------------------------------------------------------
    # Changefeed consumption
    # ------------------------------------------------------------------
    def next_event(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The next changefeed event, or ``None`` if none arrives in time.

        Buffered events are returned immediately; otherwise the call
        blocks on the socket up to ``timeout`` seconds (defaulting to
        the client's timeout).
        """
        if self._events:
            return self._events.popleft()
        if self._closed:
            raise ConnectionError("client is closed")
        self._socket.settimeout(self.timeout if timeout is None else timeout)
        try:
            frame = self._read_frame()
        except TimeoutError:
            return None
        if frame is None:
            raise ConnectionError("server closed the connection")
        if "event" in frame:
            return frame
        # A stray response (e.g. to an abandoned call): ignore it.
        return None

    def drain_events(
        self, count: int, timeout: float | None = None
    ) -> list[dict[str, Any]]:
        """Collect up to ``count`` events, stopping early on a quiet wire."""
        events = []
        while len(events) < count:
            event = self.next_event(timeout)
            if event is None:
                break
            events.append(event)
        return events

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(OSError):  # close races are harmless
            self._stream.close()
            self._socket.close()

    def __enter__(self) -> "ViewClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<ViewClient {self.host}:{self.port} {state}>"
