"""The view-server wire protocol: length-prefixed JSON frames.

A connection is a bidirectional stream of *frames*.  Each frame is a
4-byte big-endian unsigned length followed by that many bytes of UTF-8
JSON encoding one object.  Three frame shapes exist (``docs/server.md``
is the normative description):

* **Request** (client → server)::

      {"id": 7, "op": "query", ...op parameters...}

  ``id`` is an arbitrary client-chosen integer echoed in the response;
  ``op`` is one of ``ping``, ``query``, ``txn``, ``subscribe``,
  ``unsubscribe``, ``stats``.

* **Response** (server → client)::

      {"id": 7, "ok": true,  "result": {...}}
      {"id": 7, "ok": false, "error": {"code": "...", "message": "..."}}

* **Event** (server → client, unsolicited — changefeed traffic)::

      {"event": "delta", "subscription": 3, "view": "hot",
       "seq": 42, "delta": {"inserted": [...], "deleted": [...]}}

Error codes are closed-vocabulary strings (the ``E_*`` constants);
clients switch on the code, never on the message.  The framing is
symmetric, so both the asyncio server and the blocking client share the
codecs in this module.
"""

from __future__ import annotations

import json
import struct
from typing import Any, BinaryIO

from repro.errors import ReproError

#: Bumped on any incompatible frame- or document-shape change.
PROTOCOL_VERSION = 1

#: Default bound on a single frame's JSON payload.
DEFAULT_MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

# ----------------------------------------------------------------------
# Error codes (closed vocabulary; see docs/server.md)
# ----------------------------------------------------------------------

#: Frame violates the transport: oversized, truncated, or not JSON.
E_BAD_FRAME = "bad_frame"
#: Frame is JSON but not a well-formed request for its op.
E_BAD_REQUEST = "bad_request"
#: ``op`` is not in the protocol's vocabulary.
E_UNKNOWN_OP = "unknown_op"
#: ``query``/``subscribe`` target names no relation or view.
E_UNKNOWN_TARGET = "unknown_target"
#: A ``where`` condition failed to parse or reference the schema.
E_BAD_CONDITION = "bad_condition"
#: A ``txn`` was rejected; the transaction was not applied.
E_TXN_FAILED = "txn_failed"
#: ``subscribe --from`` position fell outside the retained window.
E_OFFSET_OUT_OF_RANGE = "offset_out_of_range"
#: Admission control: the server is at its session limit.
E_TOO_MANY_SESSIONS = "too_many_sessions"
#: The server is draining; no new work is accepted.
E_SHUTTING_DOWN = "shutting_down"
#: The request exceeded the server's per-request timeout.
E_TIMEOUT = "timeout"
#: The session's outbox overflowed (slow-subscriber policy).
E_SLOW_CONSUMER = "slow_consumer"
#: A cluster transaction aborted because a shard stayed unreachable
#: past the coordinator's two-phase-commit timeout (retry is safe: the
#: abort is durable before the error is reported).
E_SHARD_UNAVAILABLE = "shard_unavailable"
#: The request raised an error the server did not classify.
E_INTERNAL = "internal"


class ProtocolError(ReproError):
    """A frame or document violated the wire protocol."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ServerError(ReproError):
    """A request was answered with ``ok: false`` (client-side raise)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


# ----------------------------------------------------------------------
# Frame codecs
# ----------------------------------------------------------------------

def encode_frame(doc: dict[str, Any]) -> bytes:
    """Serialize one document to its framed wire form."""
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Decode a frame payload; raises :class:`ProtocolError` on damage."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            E_BAD_FRAME, f"frame payload is not JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict):
        raise ProtocolError(E_BAD_FRAME, "frame payload must be a JSON object")
    return doc


def check_frame_length(length: int, max_frame_bytes: int) -> None:
    """Reject a declared payload length outside the admissible range."""
    if length > max_frame_bytes:
        raise ProtocolError(
            E_BAD_FRAME,
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit",
        )


async def read_frame_async(reader, max_frame_bytes: int) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` for truncation mid-frame or an oversized or
    undecodable payload.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(E_BAD_FRAME, "connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    check_frame_length(length, max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(E_BAD_FRAME, "connection closed mid-frame") from exc
    return decode_payload(payload)


def read_frame_blocking(stream: BinaryIO, max_frame_bytes: int) -> dict[str, Any] | None:
    """Read one frame from a blocking binary stream (the client side).

    Same contract as :func:`read_frame_async`: ``None`` on clean EOF,
    :class:`ProtocolError` on truncation or damage.
    """
    header = _read_exact(stream, HEADER_BYTES)
    if header is None:
        return None
    if len(header) < HEADER_BYTES:
        raise ProtocolError(E_BAD_FRAME, "connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    check_frame_length(length, max_frame_bytes)
    payload = _read_exact(stream, length)
    if payload is None or len(payload) < length:
        raise ProtocolError(E_BAD_FRAME, "connection closed mid-frame")
    return decode_payload(payload)


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on immediate EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    if not chunks and count:
        return None
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Document constructors (shared shapes)
# ----------------------------------------------------------------------

def response_ok(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """A successful response document."""
    return {"id": request_id, "ok": True, "result": result}


def response_error(request_id: Any, code: str, message: str) -> dict[str, Any]:
    """A failed response document."""
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def delta_event(
    subscription_id: int, view_name: str, sequence: int, delta_doc: dict[str, Any]
) -> dict[str, Any]:
    """A changefeed event document."""
    return {
        "event": "delta",
        "subscription": subscription_id,
        "view": view_name,
        "seq": sequence,
        "delta": delta_doc,
    }


def request_field(doc: dict[str, Any], name: str, kind: type, required: bool = True):
    """Extract and type-check one request parameter.

    Raises :class:`ProtocolError` (``bad_request``) when a required
    field is absent or a present field has the wrong JSON type.
    Returns ``None`` for an absent optional field.
    """
    value = doc.get(name)
    if value is None:
        if required:
            raise ProtocolError(E_BAD_REQUEST, f"request is missing {name!r}")
        return None
    # bool is an int subclass; reject it where an int is expected.
    if kind is int and isinstance(value, bool):
        raise ProtocolError(E_BAD_REQUEST, f"{name!r} must be an integer")
    if not isinstance(value, kind):
        raise ProtocolError(
            E_BAD_REQUEST, f"{name!r} must be of JSON type {kind.__name__}"
        )
    return value
