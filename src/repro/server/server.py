"""The asyncio view-server: reads, writes and live changefeeds over TCP.

:class:`ViewServer` puts a network front-end on one database + maintainer
pair, turning the paper's economics into a service: writes pay the
maintenance cost once, inside the commit, and every ``query`` after that
is answered from stored view contents alone — the server never
re-evaluates a view to serve a read.

Request handling is single-writer by construction: all database work is
synchronous and runs on the event loop, so commits from different
sessions serialize exactly as in-process callers' do, and the
maintainer's commit hooks fire inside the committing request.  Those
hooks are also the changefeed: the server subscribes to every view and
fans each applied view delta out to the sessions subscribed to it —
through bounded per-session outboxes, so one stalled reader is
disconnected (the slow-consumer policy) rather than allowed to wedge
the commit path.

The wire protocol lives in :mod:`repro.server.protocol`; the per
-connection loops in :mod:`repro.server.session`; the blocking client in
:mod:`repro.server.client`; ``docs/server.md`` is the normative
protocol description.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Mapping

from repro.algebra.conditions import Condition
from repro.algebra.relation import Delta, Relation
from repro.core.maintainer import ViewMaintainer
from repro.engine.database import Database
from repro.engine.persistence import delta_to_document
from repro.errors import (
    ConditionError,
    ReproError,
    UnknownRelationError,
    UnknownViewError,
)
from repro.instrumentation import CostRecorder, recording
from repro.scheduler import RefreshScheduler, StalenessSLA, TickClock
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.server.session import LocalSession, Session

if TYPE_CHECKING:  # pragma: no cover
    from repro.replication.durability import DurabilityManager


class ServerConfig:
    """Tunables for one :class:`ViewServer` (all have serving defaults).

    ``port=0`` binds an ephemeral port (the bound one is published on
    :attr:`ViewServer.port` after start — the test-friendly default).
    ``outbox_frames`` bounds each session's outbound queue; a frame that
    does not fit disconnects the session (see ``docs/server.md`` for the
    full backpressure policy).  ``changefeed_history`` is how many past
    view deltas are retained per view for resumable subscriptions.
    """

    __slots__ = (
        "host",
        "port",
        "max_sessions",
        "max_frame_bytes",
        "outbox_frames",
        "request_timeout",
        "drain_timeout",
        "changefeed_history",
        "staleness_slas",
        "scheduler_batch_limit",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 64,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        outbox_frames: int = 256,
        request_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        changefeed_history: int = 1024,
        staleness_slas: "Mapping[str, StalenessSLA] | None" = None,
        scheduler_batch_limit: int = 4,
    ) -> None:
        self.host = host
        self.port = port
        self.max_sessions = max_sessions
        self.max_frame_bytes = max_frame_bytes
        self.outbox_frames = outbox_frames
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.changefeed_history = changefeed_history
        #: view name → :class:`~repro.scheduler.sla.StalenessSLA` for
        #: deferred views the server should refresh on its own; the
        #: server's virtual clock advances once per committed txn.
        self.staleness_slas = dict(staleness_slas or {})
        self.scheduler_batch_limit = scheduler_batch_limit

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"<ServerConfig {inner}>"


class Changefeed:
    """One view's retained delta history (the resumable-offset window).

    Fed by the maintainer's subscriber hook, consumed by ``subscribe``
    requests carrying a ``from`` position.  :attr:`floor` is the highest
    sequence *not* retained: a subscriber may resume from any position
    ``>= floor`` and miss nothing; anything older is out of range.
    """

    __slots__ = ("view_name", "events", "floor")

    def __init__(self, view_name: str, base_sequence: int, capacity: int) -> None:
        self.view_name = view_name
        #: Retained ``(sequence, delta_document)`` pairs, oldest first.
        self.events: deque[tuple[int, dict[str, Any]]] = deque(maxlen=capacity)
        #: Highest sequence that is no longer replayable.
        self.floor = base_sequence

    def append(self, sequence: int, delta_doc: dict[str, Any]) -> None:
        """Retain one applied view delta, evicting the oldest if full."""
        if self.events.maxlen is not None and len(self.events) == self.events.maxlen:
            self.floor = self.events[0][0]
        self.events.append((sequence, delta_doc))

    def since(self, after: int) -> list[tuple[int, dict[str, Any]]]:
        """Retained events with ``sequence > after``.

        Raises :class:`~repro.server.protocol.ProtocolError`
        (``offset_out_of_range``) when ``after`` precedes the window.
        """
        if after < self.floor:
            raise ProtocolError(
                protocol.E_OFFSET_OUT_OF_RANGE,
                f"view {self.view_name!r} retains deltas after sequence "
                f"{self.floor}; cannot resume from {after}",
            )
        return [(seq, doc) for seq, doc in self.events if seq > after]


class ViewServer:
    """Serves one database + maintainer over the wire protocol.

    Parameters
    ----------
    database, maintainer:
        The served pair.  Define relations and views *before* starting
        the server (the wire protocol deliberately has no DDL: view
        definitions are code, exactly as for followers and recovery).
    config:
        A :class:`ServerConfig`; defaults throughout when omitted.
    durability:
        An attached :class:`~repro.replication.durability.DurabilityManager`,
        if the served database is durable — only used to report the WAL
        position in ``stats``; commits reach the WAL through the
        manager's own hook regardless.
    """

    def __init__(
        self,
        database: Database,
        maintainer: ViewMaintainer,
        config: ServerConfig | None = None,
        durability: "DurabilityManager | None" = None,
    ) -> None:
        self.database = database
        self.maintainer = maintainer
        self.config = config if config is not None else ServerConfig()
        self.durability = durability
        #: Always-on counters (``server_*`` plus whatever the engine
        #: charges while handling requests); served by the ``stats`` op.
        self.recorder = CostRecorder()
        self.port: int | None = None
        self._sessions: dict[int, Session | LocalSession] = {}
        self._next_session_id = 1
        self._feeds: dict[str, Changefeed] = {}
        #: view name → ``(session, subscription_id)`` fan-out targets.
        self._subscribers: dict[str, list[tuple[Session | LocalSession, int]]] = {}
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._draining = False
        self._stopped: asyncio.Event | None = None
        #: Virtual time: one tick per committed transaction.  The
        #: scheduler refreshes SLA-bound deferred views inside the
        #: committing request, so subscribers see the resulting view
        #: deltas through the ordinary changefeed fan-out.
        self.clock = TickClock()
        self.scheduler = RefreshScheduler(
            maintainer,
            clock=self.clock,
            batch_limit=self.config.scheduler_batch_limit,
        )
        for name, sla in sorted(self.config.staleness_slas.items()):
            self.scheduler.declare_sla(name, sla)
        for name in maintainer.view_names():
            self._attach_feed(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (returns once bound)."""
        self._stopped = asyncio.Event()
        self._asyncio_server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and run until :meth:`shutdown` completes."""
        if self._asyncio_server is None:
            await self.start()
        await self.wait_closed()

    async def wait_closed(self) -> None:
        """Block until a shutdown has fully drained and stopped."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work.

        New connections and new requests are refused with
        ``shutting_down``; requests already being handled get
        ``drain_timeout`` seconds to finish and their responses are
        flushed before the connections close.
        """
        if self._draining:
            await self.wait_closed()
            return
        self._draining = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        sessions = list(self._sessions.values())
        if sessions:
            await asyncio.gather(
                *(s.drain_close(self.config.drain_timeout) for s in sessions),
                return_exceptions=True,
            )
            tasks = [s.task for s in sessions if s.task is not None]
            if tasks:
                done, pending = await asyncio.wait(
                    tasks, timeout=self.config.drain_timeout
                )
                for task in pending:
                    task.cancel()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Connection admission
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        if self._draining:
            await self._reject(
                writer, protocol.E_SHUTTING_DOWN, "server is shutting down"
            )
            return
        if len(self._sessions) >= self.config.max_sessions:
            self.recorder.incr("server_sessions_rejected")
            await self._reject(
                writer,
                protocol.E_TOO_MANY_SESSIONS,
                f"server is at its {self.config.max_sessions}-session limit",
            )
            return
        session_id = self._next_session_id
        self._next_session_id += 1
        session = Session(self, reader, writer, session_id)
        session.task = asyncio.current_task()
        self._sessions[session_id] = session
        self.recorder.incr("server_sessions_opened")
        await session.run()

    async def _reject(self, writer, code: str, message: str) -> None:
        # Suppressed errors mean the peer vanished mid-rejection.
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(protocol.encode_frame(protocol.response_error(None, code, message)))
            await writer.drain()
            writer.close()
            await writer.wait_closed()

    def open_local_session(self, transport) -> LocalSession:
        """Admit one in-process client over an injectable transport.

        Counts against (and is refused by) the same admission limits a
        TCP connection faces: a draining server raises ``shutting_down``
        and a full session table raises ``too_many_sessions`` — both as
        :class:`~repro.server.protocol.ProtocolError`, since there is no
        socket to write a rejection frame to.  ``transport(frame) ->
        bool`` receives every outbound frame; see
        :class:`~repro.server.session.LocalSession` for the contract.
        """
        if self._draining:
            raise ProtocolError(
                protocol.E_SHUTTING_DOWN, "server is shutting down"
            )
        if len(self._sessions) >= self.config.max_sessions:
            self.recorder.incr("server_sessions_rejected")
            raise ProtocolError(
                protocol.E_TOO_MANY_SESSIONS,
                f"server is at its {self.config.max_sessions}-session limit",
            )
        session_id = self._next_session_id
        self._next_session_id += 1
        session = LocalSession(self, session_id, transport)
        self._sessions[session_id] = session
        self.recorder.incr("server_sessions_opened")
        return session

    def release_session(self, session: "Session | LocalSession") -> None:
        """Forget a finished session and all of its subscriptions."""
        self._sessions.pop(session.session_id, None)
        for subscription_id, view_name in session.subscriptions.items():
            self._drop_subscriber(view_name, session, subscription_id)
        self.recorder.incr("server_sessions_closed")

    def _drop_subscriber(
        self, view_name: str, session: "Session | LocalSession", subscription_id: int
    ) -> None:
        targets = self._subscribers.get(view_name)
        if not targets:
            return
        entry = (session, subscription_id)
        if entry in targets:
            targets.remove(entry)

    # ------------------------------------------------------------------
    # The changefeed (maintainer hook → session outboxes)
    # ------------------------------------------------------------------
    def _attach_feed(self, view_name: str) -> Changefeed:
        feed = self._feeds.get(view_name)
        if feed is None:
            view = self.maintainer.view(view_name)
            feed = Changefeed(
                view_name,
                view.last_refresh_sequence,
                self.config.changefeed_history,
            )
            self._feeds[view_name] = feed
            self.maintainer.subscribe(
                view_name, lambda v, delta: self._on_view_delta(v, delta)
            )
        return feed

    def _on_view_delta(self, view, delta: Delta) -> None:
        sequence = view.last_refresh_sequence
        delta_doc = delta_to_document(delta)
        name = view.definition.name
        self._feeds[name].append(sequence, delta_doc)
        targets = self._subscribers.get(name)
        if not targets:
            return
        for session, subscription_id in list(targets):
            sent = session.send_frame(
                protocol.delta_event(subscription_id, name, sequence, delta_doc)
            )
            if sent:
                self.recorder.incr("server_events_sent")

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    _OPS = ("ping", "query", "txn", "subscribe", "unsubscribe", "stats")

    async def dispatch(
        self, session: "Session | LocalSession", doc: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Handle one request document; always returns a response doc."""
        request_id = doc.get("id")
        self.recorder.incr("server_requests")
        if self._draining:
            return protocol.response_error(
                request_id, protocol.E_SHUTTING_DOWN, "server is shutting down"
            )
        op = doc.get("op")
        if not isinstance(op, str) or op not in self._OPS:
            self.recorder.incr("server_requests_failed")
            return protocol.response_error(
                request_id,
                protocol.E_UNKNOWN_OP,
                f"unknown op {op!r}; expected one of {list(self._OPS)}",
            )
        handler = getattr(self, f"_op_{op}")
        try:
            with recording(self.recorder):
                result = handler(session, doc)
        except ProtocolError as exc:
            self.recorder.incr("server_requests_failed")
            return protocol.response_error(request_id, exc.code, str(exc))
        except ReproError as exc:
            self.recorder.incr("server_requests_failed")
            return protocol.response_error(request_id, protocol.E_INTERNAL, str(exc))
        except Exception as exc:  # a handler bug must not kill the session
            self.recorder.incr("server_requests_failed")
            return protocol.response_error(
                request_id, protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        return protocol.response_ok(request_id, result)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _op_ping(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "views": list(self.maintainer.view_names()),
            "relations": list(self.database.relation_names()),
        }

    def _resolve_target(self, name: str) -> tuple[str, Relation, int]:
        """``(kind, contents, sequence)`` for a view or base relation."""
        with contextlib.suppress(UnknownViewError):
            view = self.maintainer.view(name)
            return "view", view.contents, view.last_refresh_sequence
        try:
            relation = self.database.relation(name)
        except UnknownRelationError:
            raise ProtocolError(
                protocol.E_UNKNOWN_TARGET,
                f"{name!r} names neither a view nor a base relation",
            ) from None
        return "relation", relation, self.database.log.last_sequence()

    def _op_query(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        target = protocol.request_field(doc, "target", str)
        where = protocol.request_field(doc, "where", str, required=False)
        select = protocol.request_field(doc, "select", list, required=False)
        limit = protocol.request_field(doc, "limit", int, required=False)
        kind, contents, sequence = self._resolve_target(target)
        schema = contents.schema
        names = tuple(schema.names)

        condition = None
        if where is not None:
            try:
                condition = Condition.coerce(where)
            except ConditionError as exc:
                raise ProtocolError(protocol.E_BAD_CONDITION, str(exc)) from exc
            unknown = condition.variables() - set(names)
            if unknown:
                raise ProtocolError(
                    protocol.E_BAD_CONDITION,
                    f"condition references {sorted(unknown)}, not attributes "
                    f"of {target!r} {list(names)}",
                )

        positions: list[int] | None = None
        if select is not None:
            if not select or not all(isinstance(a, str) for a in select):
                raise ProtocolError(
                    protocol.E_BAD_REQUEST,
                    "'select' must be a non-empty list of attribute names",
                )
            try:
                positions = [names.index(a) for a in select]
            except ValueError:
                missing = [a for a in select if a not in names]
                raise ProtocolError(
                    protocol.E_BAD_REQUEST,
                    f"'select' names {missing} not in {target!r} {list(names)}",
                ) from None

        # Iterate in sorted-encoded order — the exact order of
        # persistence.relation_to_document, so an unfiltered view query
        # is byte-for-byte the view's stored contents.
        rows: list[list[Any]] = []
        counts: list[int] = []
        if positions is None:
            for values, count in sorted(contents.items()):
                if condition is not None and not condition.evaluate(
                    dict(zip(names, values))
                ):
                    continue
                rows.append(list(schema.decode_values(values)))
                counts.append(count)
        else:
            # Bag projection: surviving rows merge their multiplicities.
            merged: dict[tuple[Any, ...], int] = {}
            for values, count in contents.items():
                if condition is not None and not condition.evaluate(
                    dict(zip(names, values))
                ):
                    continue
                decoded = schema.decode_values(values)
                key = tuple(decoded[i] for i in positions)
                merged[key] = merged.get(key, 0) + count
            for key in sorted(merged):
                rows.append(list(key))
                counts.append(merged[key])
        truncated = False
        if limit is not None and limit >= 0 and len(rows) > limit:
            rows, counts = rows[:limit], counts[:limit]
            truncated = True
        self.recorder.incr("server_rows_returned", len(rows))
        result = {
            "target": target,
            "kind": kind,
            "attributes": list(select) if select is not None else list(names),
            "rows": rows,
            "counts": counts,
            "seq": sequence,
        }
        if truncated:
            result["truncated"] = True
        return result

    def _op_txn(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        inserts = protocol.request_field(doc, "insert", dict, required=False) or {}
        deletes = protocol.request_field(doc, "delete", dict, required=False) or {}
        if not inserts and not deletes:
            raise ProtocolError(
                protocol.E_BAD_REQUEST, "'txn' needs 'insert' and/or 'delete' batches"
            )
        for label, batch in (("insert", inserts), ("delete", deletes)):
            for name, batch_rows in batch.items():
                if not isinstance(batch_rows, list) or not all(
                    isinstance(row, list) for row in batch_rows
                ):
                    raise ProtocolError(
                        protocol.E_BAD_REQUEST,
                        f"'{label}' batch for {name!r} must be a list of rows",
                    )
        txn = self.database.begin()
        try:
            # Deletes before inserts, matching Database.apply: an update
            # expressed as delete+insert of the same key nets correctly.
            for name, batch_rows in deletes.items():
                txn.delete_many(name, (tuple(row) for row in batch_rows))
            for name, batch_rows in inserts.items():
                txn.insert_many(name, (tuple(row) for row in batch_rows))
            deltas = txn.commit()
        except ReproError as exc:
            if txn.state.value == "active":
                txn.abort()
            self.recorder.incr("server_txns_failed")
            raise ProtocolError(protocol.E_TXN_FAILED, str(exc)) from exc
        self.recorder.incr("server_txns_committed")
        # Advance virtual time and let the scheduler refresh whatever
        # the commit pushed past its staleness SLA.
        self.clock.advance(1)
        for refreshed in self.scheduler.tick():
            self.recorder.incr("server_scheduler_refreshes")
            self.recorder.incr(f"server_scheduler_refreshed_{refreshed}")
        applied = {
            name: {
                "inserted": delta.insert_count(),
                "deleted": delta.delete_count(),
            }
            for name, delta in sorted(deltas.items())
            if not delta.is_empty()
        }
        return {
            "txn": txn.txn_id,
            "seq": self.database.log.last_sequence(),
            "applied": applied,
        }

    def _op_subscribe(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        view_name = protocol.request_field(doc, "view", str)
        after = protocol.request_field(doc, "from", int, required=False)
        try:
            view = self.maintainer.view(view_name)
        except UnknownViewError:
            raise ProtocolError(
                protocol.E_UNKNOWN_TARGET,
                f"{view_name!r} names no view (subscriptions are per-view)",
            ) from None
        feed = self._attach_feed(view_name)
        current = view.last_refresh_sequence
        replay: list[tuple[int, dict[str, Any]]] = []
        if after is not None and after < current:
            replay = feed.since(after)
        subscription_id = session.new_subscription(view_name)
        self._subscribers.setdefault(view_name, []).append(
            (session, subscription_id)
        )
        self.recorder.incr("server_subscriptions_opened")
        # Catch-up events are staged; the session flushes them right
        # after this response, so confirmation always precedes deltas.
        for sequence, delta_doc in replay:
            session.pending_events.append(
                protocol.delta_event(subscription_id, view_name, sequence, delta_doc)
            )
        self.recorder.incr("server_events_sent", len(replay))
        return {
            "subscription": subscription_id,
            "view": view_name,
            "seq": current,
            "replayed": len(replay),
        }

    def _op_unsubscribe(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        subscription_id = protocol.request_field(doc, "subscription", int)
        view_name = session.drop_subscription(subscription_id)
        if view_name is None:
            raise ProtocolError(
                protocol.E_BAD_REQUEST,
                f"this session holds no subscription {subscription_id}",
            )
        self._drop_subscriber(view_name, session, subscription_id)
        return {"unsubscribed": subscription_id, "view": view_name}

    def _op_stats(self, session: Session, doc: Mapping[str, Any]) -> dict[str, Any]:
        only = protocol.request_field(doc, "view", str, required=False)
        if only is not None and only not in self.maintainer.view_names():
            raise ProtocolError(
                protocol.E_UNKNOWN_TARGET,
                f"{only!r} names no view (stats filters are per-view)",
            )
        views = {}
        for name, maintenance in self.maintainer.all_stats().items():
            if only is not None and name != only:
                continue
            view = self.maintainer.view(name)
            views[name] = {
                "policy": self.maintainer.policy(name).value,
                "tuples": len(view.contents),
                "seq": view.last_refresh_sequence,
                "maintenance": maintenance,
                "backlog": self.maintainer.backlog(name),
            }
        result = {
            "counters": self.recorder.snapshot(),
            "views": views,
            "plan_cache": self.maintainer.plan_cache_stats(),
            "codegen": self.maintainer.codegen_stats().as_dict(),
            "sessions": {
                "open": len(self._sessions),
                "max": self.config.max_sessions,
            },
            "subscriptions": sum(len(t) for t in self._subscribers.values()),
            "seq": self.database.log.last_sequence(),
            "scheduler": {
                "now": self.clock.now,
                "batch_limit": self.scheduler.batch_limit,
                "slas": {
                    name: sla.as_dict()
                    for name in self.scheduler.sla_names()
                    if (sla := self.scheduler.sla(name)) is not None
                },
                "violations": self.scheduler.violations(),
                "counters": self.scheduler.stats.as_dict(),
            },
        }
        if self.durability is not None:
            result["wal_position"] = self.durability.position
        return result

    def __repr__(self) -> str:
        return (
            f"<ViewServer port={self.port} {len(self._sessions)} sessions, "
            f"{len(self.maintainer.view_names())} views"
            f"{' draining' if self._draining else ''}>"
        )


class ServerHandle:
    """A :class:`ViewServer` running on its own event-loop thread.

    The embedding story for synchronous programs (examples, benchmarks,
    the CLI's tests): start the loop in a daemon thread, hand blocking
    :class:`~repro.server.client.ViewClient` connections to it, stop it
    with :meth:`stop`.  Build the database, views and server *before*
    :meth:`start`; afterwards the loop thread owns them, and all
    mutation must go through the wire.

    Usable as a context manager::

        with ServerHandle(server) as handle:
            client = ViewClient(port=handle.port)
    """

    def __init__(self, server: ViewServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        """Launch the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-view-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("view server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"view server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        await self.server.wait_closed()

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        assert self.server.port is not None, "server not started"
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Gracefully shut the server down and join the loop thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(), self._loop)
        with contextlib.suppress(TimeoutError, RuntimeError):  # loop already gone
            future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        alive = self._thread is not None and self._thread.is_alive()
        return f"<ServerHandle port={self.server.port} {'running' if alive else 'stopped'}>"
