"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends raised by misuse of the Python API itself) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or two schemas are incompatible.

    Raised, for example, when a tuple's arity does not match its schema,
    when a projection names an attribute the schema lacks, or when two
    relations joined by a cross product share attribute names (the paper
    assumes disjoint schemes, ``R_i ∩ R_j = ∅``).
    """


class DomainError(ReproError):
    """A value lies outside the domain declared for its attribute."""


class ConditionError(ReproError):
    """A selection condition is not in the supported class.

    Section 4 of the paper restricts conditions to conjunctions (and
    disjunctions of conjunctions) of atomic formulae ``x op y``,
    ``x op c`` and ``x op y + c`` with ``op ∈ {=, <, >, <=, >=}``.
    The operator ``!=`` is explicitly excluded because it breaks the
    polynomial satisfiability test of Rosenkrantz and Hunt.
    """


class ExpressionError(ReproError):
    """A relational-algebra expression is malformed.

    Examples: selecting on attributes not produced by the operand,
    joining relations whose schemas are not disjoint on non-join
    attributes when the operation requires it, or supplying a view
    definition outside the SPJ class.
    """


class TransactionError(ReproError):
    """A transaction was used incorrectly.

    Raised for commits of already-committed transactions, operations on
    aborted transactions, or updates that reference unknown relations.
    """


class UnknownRelationError(TransactionError):
    """A statement referenced a base relation the database does not hold."""


class ConstraintError(ReproError):
    """A relation constraint is malformed or cannot be declared.

    Raised when a constraint references attributes outside its
    relation's schema, targets an unknown relation, or would be
    violated by rows the relation already holds.
    """


class ConstraintViolationError(TransactionError):
    """A transaction tried to insert tuples violating a declared constraint.

    Enforcement happens before the commit mutates any state, so the
    transaction's effects are discarded in full.
    """


class KeyViolationError(TransactionError):
    """A transaction's net effect would violate a declared key or
    foreign key.

    Either two post-state rows would agree on a declared candidate key,
    or a referencing row would be left without a referenced-key partner.
    Enforcement happens before the commit mutates any state, so the
    transaction's effects are discarded in full.
    """


class UnknownViewError(ReproError):
    """A maintenance request referenced a view that was never registered."""


class ViewDefinitionError(ExpressionError):
    """A view definition cannot be maintained by this library.

    The differential algorithm of Section 5 supports exactly the class of
    SPJ expressions; definitions containing other operators are rejected
    at registration time with this error.
    """


class MaintenanceError(ReproError):
    """Differential maintenance failed or was invoked inconsistently."""


class AnalysisError(ReproError):
    """The static view analyzer was invoked inconsistently.

    Raised for malformed analysis requests (unknown views, conditions
    outside the tractable class surfacing mid-analysis); *findings* are
    not errors — they are data on the report.
    """


class StrictAnalysisError(MaintenanceError):
    """Strict registration rejected a view over ERROR-level findings.

    Carries the offending :class:`repro.analysis.findings.Finding`
    objects on :attr:`findings` so callers can render or log them.
    """

    def __init__(self, view_name: str, findings: tuple) -> None:
        self.view_name = view_name
        self.findings = tuple(findings)
        details = "; ".join(f.message for f in self.findings)
        super().__init__(
            f"strict analysis rejected view {view_name!r}: {details}"
        )


class ClusterError(ReproError):
    """The sharded-cluster subsystem was misconfigured or failed.

    Covers invalid topologies (non-increasing partition boundaries,
    boundary counts that do not match the shard count), view
    definitions outside the shardable class (a view must reference
    exactly one occurrence of exactly one partitioned relation, so the
    merged cluster view is a disjoint bag-union of per-shard views),
    and coordinator-side transaction failures (a shard vetoed the
    prepare phase, or stayed unreachable past the 2PC timeout).
    """


class ReplicationError(ReproError):
    """The durability / replication subsystem failed.

    Covers write-ahead-log corruption (see
    :class:`repro.replication.wal.WalCorruptionError`), malformed
    checkpoint documents, and followers consuming a log that references
    relations they never declared.
    """
