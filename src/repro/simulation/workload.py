"""Workload generation and the episode machine.

A **schedule** is pure data: a list of ``(kind, payload)`` events drawn
from one seeded RNG, with no reference to database state, file paths or
live objects.  That is what makes an episode replayable (the same
schedule against the same seed produces the identical run, so a failing
seed is a complete bug report) and minimizable (the runner can delete
events from the list and re-execute).

An :class:`Episode` executes a schedule against a full stack built in a
scratch directory: a leader :class:`~repro.engine.database.Database`
with paper-class SPJ views under a
:class:`~repro.core.maintainer.ViewMaintainer`, a
:class:`~repro.replication.durability.DurabilityManager` writing through
a :class:`~repro.simulation.faults.FaultyWalIO`, a
:class:`~repro.server.server.ViewServer` reached through in-process
sessions, followers fed over lossy
:class:`~repro.simulation.network.ReplicaLink` channels, and
changefeed-mirroring :class:`~repro.simulation.network.SimClient`\\ s.

Event kinds
-----------
``txn``              random net-effect transaction on the leader
``server_txn``       the same, submitted through a client session
``client_query``     an ad-hoc read over the wire
``net``              advance virtual time; pump channels and clients
``checkpoint``       flush barrier + durability checkpoint
``quiesce``          drain everything, then run the full oracle
``subscriber_churn`` a client drops and re-opens its subscription
``client_stall``     a client stops draining its link (slow consumer)
``follower_stall``   a replica link stops consuming
``partition``        a replica channel silently discards until healed
``ddl_index``        create or drop an index (exercises the DDL bus)
``ddl_scratch``      create/drop a scratch relation (+ checkpoint:
                     the WAL carries no schema, so schema changes are
                     checkpoint state by contract)
``view_churn``       drop + redefine the churn view ``w`` (+ checkpoint)
``crash``            the machine dies: un-fsynced WAL bytes may vanish,
                     then full recovery + oracle + follower repair
``corrupt``          crash, then flip one stored WAL bit; recovery must
                     either detect it (CRC) or classify it as the torn
                     tail — both end the episode

Deferred views are only required to agree with the oracle at quiescent
points, which is why every oracle round is preceded by
:meth:`ViewMaintainer.quiesce`.
"""

from __future__ import annotations

import json
import random
from collections import Counter
from typing import Any

from repro.algebra.conditions import OPERATORS, Atom, Condition, Conjunction
from repro.algebra.expressions import BaseRef, Expression, Join, Project, Select
from repro.core.maintainer import MaintenancePolicy, ViewMaintainer
from repro.engine.database import Database
from repro.errors import ReproError
from repro.replication.durability import DurabilityManager
from repro.replication.follower import Follower
from repro.replication.recovery import Recovery
from repro.replication.wal import WalCorruptionError, WalReader
from repro.scheduler import RefreshScheduler, StalenessSLA
from repro.server.protocol import ProtocolError
from repro.server.server import ServerConfig, ViewServer
from repro.simulation import oracle
from repro.simulation.clock import SimClock
from repro.simulation.faults import FaultyWalIO, flip_segment_byte
from repro.simulation.network import ReplicaLink, SimChannel, SimClient

#: The simulated schema: three base relations with disjoint attribute
#: names, so any natural join between them is a (filtered) product —
#: the paper's select-project-join shape.
BASE_TABLES: dict[str, tuple[str, ...]] = {
    "r": ("A", "B"),
    "s": ("C", "D"),
    "t": ("E", "F"),
}

#: Cell values are drawn from a small domain so random deletes collide
#: with existing rows and join conditions actually match.
VALUE_MIN, VALUE_MAX = 0, 6

#: Small WAL segments force rotation (and therefore multi-segment
#: crash/truncation coverage) within a single episode.
SEGMENT_BYTES = 600


# ----------------------------------------------------------------------
# Random paper-class SPJ views
# ----------------------------------------------------------------------
def random_spj_expression(
    rng: random.Random,
    tables: dict[str, tuple[str, ...]] | None = None,
    max_operands: int = 3,
) -> Expression:
    """A random select-project-join view over ``tables``.

    The shape is exactly the paper's Section 2 class: a join of distinct
    base relations, a conjunctive selection whose atoms compare an
    attribute with another attribute plus an integer offset or with a
    constant (the Rosenkrantz–Hunt tractable class), and an optional
    projection.  Multi-operand views always carry at least one atom so
    raw products stay small.  Used both by the simulator's workload and
    by the hypothesis strategies in ``tests/strategies.py``.
    """
    return _random_spj_core(rng, tables, max_operands)[0]


def _random_spj_core(
    rng: random.Random,
    tables: dict[str, tuple[str, ...]] | None,
    max_operands: int,
) -> tuple[Expression, list[str]]:
    """The SPJ generator body, also reporting the output attributes."""
    if tables is None:
        tables = BASE_TABLES
    weights = [0.35, 0.45, 0.2][: max(1, min(max_operands, 3))]
    operand_count = rng.choices(range(1, len(weights) + 1), weights)[0]
    operand_count = min(operand_count, len(tables))
    names = rng.sample(sorted(tables), operand_count)
    expression: Expression = BaseRef(names[0])
    attributes: list[str] = list(tables[names[0]])
    for name in names[1:]:
        expression = Join(expression, BaseRef(name))
        attributes.extend(tables[name])

    minimum_atoms = 1 if operand_count > 1 else 0
    atom_count = rng.randint(minimum_atoms, 3)
    atoms = []
    for _ in range(atom_count):
        op = rng.choice(OPERATORS)
        left = rng.choice(attributes)
        if len(attributes) > 1 and rng.random() < 0.5:
            right = rng.choice([a for a in attributes if a != left])
            atoms.append(Atom(left, op, right, offset=rng.randint(-3, 3)))
        else:
            atoms.append(Atom(left, op, rng.randint(VALUE_MIN, VALUE_MAX)))
    if atoms:
        expression = Select(expression, Condition([Conjunction(atoms)]))

    if rng.random() < 0.8:
        kept = sorted(rng.sample(attributes, rng.randint(1, len(attributes))))
        expression = Project(expression, kept)
        attributes = kept
    return expression, list(attributes)


def random_aggregate_expression(
    rng: random.Random,
    tables: dict[str, tuple[str, ...]] | None = None,
    max_operands: int = 2,
    allow_minmax: bool = True,
) -> Expression:
    """A random GROUP BY view over a random SPJ core.

    The core comes from the same generator as the plain SPJ views; on
    top of it, a random subset of the core's output attributes becomes
    the grouping key (possibly empty — a global aggregate) and one to
    three aggregate columns are drawn from COUNT/SUM/AVG (plus MIN/MAX
    unless ``allow_minmax`` is off — base-free hosts reject MIN/MAX, so
    the base-free follower workload pins it off).  Used by the episode
    machine and re-exported to hypothesis via ``tests/strategies.py``.
    """
    core, attributes = _random_spj_core(rng, tables, max_operands)
    key_count = rng.randint(0, len(attributes) - 1) if len(attributes) > 1 else 0
    keys = sorted(rng.sample(attributes, key_count)) if key_count else []
    functions = ["count", "sum", "avg"] + (["min", "max"] if allow_minmax else [])
    columns: list[tuple[str, str | None, str]] = []
    for index in range(rng.randint(1, 3)):
        func = rng.choice(functions)
        attribute = None if func == "count" else rng.choice(attributes)
        columns.append((func, attribute, f"agg{index}"))
    return core.aggregate(keys, columns)


def _random_row(rng: random.Random, arity: int) -> list[int]:
    return [rng.randint(VALUE_MIN, VALUE_MAX) for _ in range(arity)]


# ----------------------------------------------------------------------
# Simulation configuration
# ----------------------------------------------------------------------
class SimulationConfig:
    """Knobs for a simulation batch (all deterministic given ``seed``)."""

    __slots__ = (
        "seed",
        "episodes",
        "events",
        "crashes",
        "partitions",
        "ddl",
        "corruption",
        "followers",
        "base_free_followers",
        "clients",
        "lost_fsync_rate",
        "use_codegen",
    )

    def __init__(
        self,
        seed: int = 0,
        episodes: int = 10,
        events: int = 40,
        crashes: bool = True,
        partitions: bool = True,
        ddl: bool = True,
        corruption: bool = False,
        followers: int = 1,
        base_free_followers: int = 1,
        clients: int = 2,
        lost_fsync_rate: float = 0.15,
        use_codegen: bool = True,
    ) -> None:
        self.seed = seed
        self.episodes = episodes
        self.events = events
        self.crashes = crashes
        self.partitions = partitions
        self.ddl = ddl
        self.corruption = corruption
        self.followers = followers
        #: Extra followers hosting self-maintainable views with their
        #: base-relation copies shed (verified against the leader by
        #: :func:`repro.simulation.oracle.verify_base_free_follower`).
        self.base_free_followers = base_free_followers
        self.clients = clients
        self.lost_fsync_rate = lost_fsync_rate
        #: Maintain every copy (leader, recovery, followers) with the
        #: generated batch kernels; ``False`` pins the per-tuple
        #: interpreter so oracle rounds exercise the ablation too.
        self.use_codegen = use_codegen

    @property
    def total_followers(self) -> int:
        """Full replicas plus base-free replicas (one link each)."""
        return self.followers + self.base_free_followers


# ----------------------------------------------------------------------
# Schedule generation (pure data)
# ----------------------------------------------------------------------
def generate_schedule(
    rng: random.Random, config: SimulationConfig
) -> list[tuple[str, dict[str, Any]]]:
    """Draw ``config.events`` weighted events; no state is consulted."""
    kinds: list[tuple[str, float]] = [
        ("txn", 22),
        ("server_txn", 8),
        ("client_query", 4),
        ("net", 26),
        ("checkpoint", 4),
        ("quiesce", 3),
        ("subscriber_churn", 3),
    ]
    if config.partitions:
        kinds.append(("client_stall", 3))
        if config.total_followers:
            kinds.append(("follower_stall", 3))
            kinds.append(("partition", 3))
    if config.ddl:
        kinds.append(("ddl_index", 3))
        kinds.append(("ddl_scratch", 2))
        kinds.append(("view_churn", 2))
    if config.crashes:
        kinds.append(("crash", 2))
    population = [kind for kind, _ in kinds]
    weights = [weight for _, weight in kinds]

    schedule: list[tuple[str, dict[str, Any]]] = []
    for _ in range(config.events):
        kind = rng.choices(population, weights)[0]
        schedule.append((kind, _payload(rng, kind, config)))
    if config.corruption and rng.random() < 0.75 and len(schedule) > 1:
        position = rng.randint(len(schedule) // 2, len(schedule))
        schedule.insert(position, ("corrupt", {}))
    return schedule


def _payload(
    rng: random.Random, kind: str, config: SimulationConfig
) -> dict[str, Any]:
    if kind == "txn":
        ops = []
        for _ in range(rng.randint(1, 4)):
            name = rng.choice(sorted(BASE_TABLES))
            row = _random_row(rng, len(BASE_TABLES[name]))
            roll = rng.random()
            if roll < 0.6:
                ops.append(["ins", name, row])
            elif roll < 0.85:
                ops.append(["del", name, row])
            else:  # an update: delete one row, insert another
                ops.append(["del", name, row])
                ops.append(["ins", name, _random_row(rng, len(row))])
        return {"ops": ops}
    if kind == "server_txn":
        name = rng.choice(sorted(BASE_TABLES))
        arity = len(BASE_TABLES[name])
        payload: dict[str, Any] = {
            "client": rng.randrange(config.clients),
            "insert": {name: [_random_row(rng, arity)]},
        }
        if rng.random() < 0.5:
            other = rng.choice(sorted(BASE_TABLES))
            payload["delete"] = {
                other: [_random_row(rng, len(BASE_TABLES[other]))]
            }
        return payload
    if kind == "client_query":
        targets = sorted(BASE_TABLES) + ["v0", "v1", "va", "vd"]
        return {
            "client": rng.randrange(config.clients),
            "target": rng.choice(targets),
        }
    if kind == "net":
        return {"ticks": rng.randint(1, 4)}
    if kind == "subscriber_churn":
        return {"client": rng.randrange(config.clients)}
    if kind == "client_stall":
        return {"client": rng.randrange(config.clients), "ticks": rng.randint(2, 6)}
    if kind == "follower_stall":
        return {
            "follower": rng.randrange(config.total_followers),
            "ticks": rng.randint(2, 6),
        }
    if kind == "partition":
        return {
            "follower": rng.randrange(config.total_followers),
            "ticks": rng.randint(2, 8),
        }
    if kind == "ddl_index":
        name = rng.choice(sorted(BASE_TABLES))
        attrs = rng.sample(BASE_TABLES[name], rng.randint(1, 2))
        return {
            "action": rng.choice(["create", "drop"]),
            "relation": name,
            "attributes": sorted(attrs),
        }
    if kind == "view_churn":
        return {"seed": rng.randrange(2**31)}
    # checkpoint, quiesce, ddl_scratch, crash, corrupt carry no payload.
    return {}


# ----------------------------------------------------------------------
# The episode machine
# ----------------------------------------------------------------------
class Episode:
    """One seeded run of the whole stack against a schedule.

    Everything nondeterministic flows from split RNGs derived from the
    episode seed by *string* seeding (stable across processes, unlike
    ``hash``): setup, fault injection and per-channel behavior each get
    their own stream, so removing an event during minimization perturbs
    as little unrelated behavior as possible.
    """

    #: Bound on quiesce drain ticks; hitting it is itself a divergence
    #: (retransmission plus healed partitions must always converge).
    MAX_DRAIN_TICKS = 600

    def __init__(self, seed: int, config: SimulationConfig, directory: str) -> None:
        self.seed = seed
        self.config = config
        self.directory = directory
        self.clock = SimClock()
        self.trace: list[str] = []
        self.stats: Counter = Counter()
        self.divergences: list[str] = []
        #: Set when a corruption event ends the run before the schedule
        #: does ("corruption_detected" or "corruption_survived_tail").
        self.ended_early: str | None = None
        self.io = FaultyWalIO(
            random.Random(f"{seed}:io"),
            lost_fsync_rate=config.lost_fsync_rate if config.crashes else 0.0,
        )
        #: name -> (expression, policy): the view registry recovery
        #: rebuilds from (view definitions are code, not WAL records).
        self.views: dict[str, tuple[Expression, MaintenancePolicy]] = {}
        self.server_generation = 0
        self._client_generation: dict[str, int] = {}
        self._partition_heal: dict[int, int] = {}
        setup_rng = random.Random(f"{seed}:setup")
        self._build_leader(setup_rng)
        self._build_followers(setup_rng)
        self._build_clients()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_leader(self, rng: random.Random) -> None:
        self.database = Database()
        for name in sorted(BASE_TABLES):
            attributes = BASE_TABLES[name]
            rows = {
                tuple(_random_row(rng, len(attributes)))
                for _ in range(rng.randint(4, 8))
            }
            self.database.create_relation(name, attributes, sorted(rows))
        self.maintainer = ViewMaintainer(
            self.database, use_codegen=self.config.use_codegen
        )
        for name, policy in (
            ("v0", MaintenancePolicy.IMMEDIATE),
            ("v1", MaintenancePolicy.IMMEDIATE),
            ("vd", MaintenancePolicy.DEFERRED),
        ):
            expression = random_spj_expression(rng)
            self.maintainer.define_view(name, expression, policy=policy)
            self.views[name] = (expression, policy)
        # One aggregate view rides every episode, so crash/recovery,
        # checkpoints, changefeeds and the oracle rounds all exercise
        # the grouped-accumulator path alongside the plain SPJ views.
        aggregate = random_aggregate_expression(rng)
        self.maintainer.define_view(
            "va", aggregate, policy=MaintenancePolicy.IMMEDIATE
        )
        self.views["va"] = (aggregate, MaintenancePolicy.IMMEDIATE)
        self.durability = DurabilityManager(
            self.database,
            self.directory,
            segment_bytes=SEGMENT_BYTES,
            sync="commit",
            io=self.io,
        )
        # Followers and recovery both bootstrap from a checkpoint.
        self._checkpoint_now()
        self.server = ViewServer(
            self.database, self.maintainer, self._server_config(),
            durability=self.durability,
        )
        self._attach_scheduler()

    def _attach_scheduler(self) -> None:
        # The deferred view "vd" runs under a staleness SLA driven by
        # the episode's virtual clock: the scheduler ticks once per
        # simulated network tick, so SLA violations are as replayable
        # as everything else.
        self.scheduler = RefreshScheduler(
            self.maintainer, clock=self.clock, batch_limit=2
        )
        self.scheduler.declare_sla(
            "vd", StalenessSLA(max_pending_commits=8, max_lag_ticks=6)
        )

    def _server_config(self) -> ServerConfig:
        return ServerConfig(changefeed_history=64)

    def _build_followers(self, rng: random.Random) -> None:
        self.links: list[ReplicaLink] = []
        self.follower_views: list[tuple[str, Expression, bool]] = []
        for index in range(self.config.total_followers):
            # Links past the full replicas host base-free followers:
            # their views must be self-maintainable, so they get
            # single-relation definitions (a random join view would be
            # legitimately rejected at shed time).
            base_free = index >= self.config.followers
            follower = Follower(
                self.directory,
                base_free=base_free,
                use_codegen=self.config.use_codegen,
            )
            name = f"g{index}"
            # Followers host aggregate views too; base-free ones only
            # get the self-maintainable subset (single relation, no
            # MIN/MAX — shedding would otherwise be rightly refused).
            if rng.random() < 0.4:
                expression = random_aggregate_expression(
                    rng,
                    max_operands=1 if base_free else 2,
                    allow_minmax=not base_free,
                )
            else:
                expression = random_spj_expression(
                    rng, max_operands=1 if base_free else 3
                )
            follower.define_view(name, expression)
            self.follower_views.append((name, expression, base_free))
            lossy = self.config.partitions
            channel = SimChannel(
                self.clock,
                random.Random(f"{self.seed}:chan{index}"),
                delay_max=2,
                drop_rate=0.08 if lossy else 0.0,
                duplicate_rate=0.08 if lossy else 0.0,
                reorder_rate=0.15 if lossy else 0.0,
            )
            self.links.append(ReplicaLink(follower, channel))

    def _build_clients(self) -> None:
        self.clients: list[SimClient] = []
        for index in range(self.config.clients):
            # Subscriptions rotate over a plain view, the aggregate view
            # and a second plain view, so two clients already put an
            # aggregate changefeed mirror under verification.
            view_name = ("v0", "va", "v1")[index % 3]
            self.clients.append(SimClient(f"c{index}", self.clock, view_name))
        self._ensure_clients()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, schedule: list[tuple[str, dict[str, Any]]]) -> "Episode":
        for index, (kind, payload) in enumerate(schedule):
            detail = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            self.trace.append(f"[{index}] t={self.clock.now} {kind} {detail}")
            getattr(self, f"_event_{kind}")(payload)
            if self.ended_early:
                break
        if not self.ended_early:
            self.trace.append(f"[end] t={self.clock.now} quiesce (final)")
            self._event_quiesce({})
        self._collect_stats()
        return self

    def _fold_scheduler_stats(self) -> None:
        for key, value in self.scheduler.stats.as_dict().items():
            self.stats[f"scheduler_{key}"] += value

    def _collect_stats(self) -> None:
        for client in self.clients:
            self.divergences.extend(client.divergences)
            for key, value in client.counters.items():
                self.stats[f"client_{key}"] += value
        for link in self.links:
            self.stats["follower_records_applied"] += link.records_applied
            if link.follower.base_free:
                self.stats["base_free_rows_dropped"] += (
                    link.follower.base_rows_dropped
                )
            for key, value in link.channel.stats().items():
                self.stats[f"net_{key}"] += value
        for key, value in self.io.stats().items():
            self.stats[key] += value
        self._fold_scheduler_stats()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _event_txn(self, payload: dict[str, Any]) -> None:
        with self.database.transact() as txn:
            for op, name, row in payload["ops"]:
                if op == "ins":
                    txn.insert(name, tuple(row))
                else:
                    txn.delete(name, tuple(row))
        self.stats["txns"] += 1

    def _event_server_txn(self, payload: dict[str, Any]) -> None:
        self._ensure_clients()
        client = self.clients[payload["client"]]
        if client.submit_txn(payload.get("insert", {}), payload.get("delete", {})):
            self.stats["server_txns"] += 1

    def _event_client_query(self, payload: dict[str, Any]) -> None:
        self._ensure_clients()
        client = self.clients[payload["client"]]
        if client.submit_query(payload["target"]):
            self.stats["client_queries"] += 1

    def _event_net(self, payload: dict[str, Any]) -> None:
        for _ in range(payload["ticks"]):
            self.clock.advance(1)
            self._pump_network()
            for name in self.scheduler.tick():
                self.stats[f"scheduler_refreshed_{name}"] += 1

    def _event_checkpoint(self, payload: dict[str, Any]) -> None:
        self._checkpoint_now()

    def _event_subscriber_churn(self, payload: dict[str, Any]) -> None:
        self._ensure_clients()
        self.clients[payload["client"]].resubscribe()
        self.stats["subscriber_churns"] += 1

    def _event_client_stall(self, payload: dict[str, Any]) -> None:
        self.clients[payload["client"]].stall(self.clock.now + payload["ticks"])
        self.stats["client_stalls"] += 1

    def _event_follower_stall(self, payload: dict[str, Any]) -> None:
        self.links[payload["follower"]].stall(self.clock.now + payload["ticks"])
        self.stats["follower_stalls"] += 1

    def _event_partition(self, payload: dict[str, Any]) -> None:
        index = payload["follower"]
        self.links[index].channel.partitioned = True
        heal_at = self.clock.now + payload["ticks"]
        self._partition_heal[index] = max(
            self._partition_heal.get(index, 0), heal_at
        )
        self.stats["partitions"] += 1

    def _event_ddl_index(self, payload: dict[str, Any]) -> None:
        if payload["action"] == "create":
            self.database.create_index(payload["relation"], payload["attributes"])
        else:
            self.database.drop_index(payload["relation"], payload["attributes"])
        self.stats["ddl_index"] += 1

    def _event_ddl_scratch(self, payload: dict[str, Any]) -> None:
        # The WAL carries no schema: a schema change is only durable as
        # checkpoint state, so it is immediately followed by one.  The
        # scratch relation never receives rows — it exercises the DDL
        # notification bus and checkpoint schema round-trip.
        if "scratch" in self.database.relation_names():
            self.database.drop_relation("scratch")
        else:
            self.database.create_relation("scratch", ("G", "H"))
        self._checkpoint_now()
        self.stats["ddl_scratch"] += 1

    def _event_view_churn(self, payload: dict[str, Any]) -> None:
        # Redefine the churn view "w" under a fresh random definition.
        # Like all DDL it pairs with a checkpoint, so recovery re-adopts
        # contents that match the current definition.  "w" is leader-
        # only and never subscribed, so the stale-changefeed question
        # does not arise.
        rng = random.Random(f"view-churn:{payload['seed']}")
        expression = random_spj_expression(rng)
        if "w" in self.maintainer.view_names():
            self.maintainer.drop_view("w")
        self.maintainer.define_view("w", expression, policy=MaintenancePolicy.IMMEDIATE)
        self.views["w"] = (expression, MaintenancePolicy.IMMEDIATE)
        self._checkpoint_now()
        self.stats["view_churns"] += 1

    def _event_crash(self, payload: dict[str, Any]) -> None:
        self._crash_machine()
        self._recover()

    def _event_corrupt(self, payload: dict[str, Any]) -> None:
        # Crash first so the flipped byte survives into recovery, then
        # damage one stored bit.  The contract: recovery either raises
        # WalCorruptionError (damage with valid records after it) or
        # soundly classifies the damage as the torn tail (final record)
        # and converges to the surviving prefix.  Either way the
        # pre-crash expectations are void, so the episode ends here.
        self._crash_machine()
        flip = flip_segment_byte(self.directory, self.io.rng)
        if flip is None:
            self.trace.append("[corrupt] log empty; nothing to damage")
            self._recover()
            return
        self.stats["corruption_injected"] += 1
        self.trace.append(f"[corrupt] flipped a bit at {flip[0]}+{flip[1]}")
        try:
            self._recover()
        except WalCorruptionError as exc:
            self.stats["corruption_detected"] += 1
            self.trace.append(f"[corrupt] detected: {exc}")
            self.ended_early = "corruption_detected"
            return
        self.stats["corruption_survived_tail"] += 1
        self.ended_early = "corruption_survived_tail"

    def _event_quiesce(self, payload: dict[str, Any]) -> None:
        self._drain_network()
        self.maintainer.quiesce()
        for client in self.clients:
            client.request_verify()
        self._drain_network()
        self._oracle_round()
        self.stats["quiesces"] += 1

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def _crash_machine(self) -> None:
        for name, before, after in self.io.crash():
            self.trace.append(f"[crash] {name}: {before} -> {after} bytes")
        self.stats["crashes"] += 1
        self.server_generation += 1
        for client in self.clients:
            client.on_server_gone()

    def _recover(self) -> None:
        recovery = Recovery(self.directory)
        maintainer = ViewMaintainer(
            recovery.database, use_codegen=self.config.use_codegen
        )
        for name in sorted(self.views):
            expression, policy = self.views[name]
            recovery.restore_view(maintainer, name, expression, policy=policy)
        recovery.replay()
        self.database = recovery.database
        self.maintainer = maintainer
        self.durability = DurabilityManager(
            self.database,
            self.directory,
            segment_bytes=SEGMENT_BYTES,
            sync="commit",
            io=self.io,
        )
        self.server = ViewServer(
            self.database, self.maintainer, self._server_config(),
            durability=self.durability,
        )
        # The scheduler dies with the machine; fold its counters into
        # the episode stats and attach a fresh one to the recovered
        # maintainer (SLA declarations are code, like view definitions).
        self._fold_scheduler_stats()
        self._attach_scheduler()
        self.stats["recoveries"] += 1
        # The recovered copy must equal checkpoint + surviving WAL,
        # independently rebuilt without any maintainer in the loop.
        self.divergences.extend(
            oracle.verify_database_against_wal(
                "recovered leader", self.directory, self.database
            )
        )
        # Recovered views must pass the full-recompute oracle too; the
        # replayed backlog of deferred views is applied first.
        self.maintainer.quiesce()
        self.divergences.extend(
            oracle.verify_maintainer("recovered leader", self.maintainer)
        )
        for index, link in enumerate(self.links):
            if link.follower.position > self.durability.position:
                # The follower applied records the crash un-wrote; its
                # sequences may be reissued for different data.  It must
                # be rebuilt from the leader's checkpoint.
                self._rebootstrap_follower(index)
            else:
                # Records from the dead regime may still be in flight.
                link.reset(link.follower)

    def _rebootstrap_follower(self, index: int) -> None:
        """Rebuild one follower from the leader's latest checkpoint."""
        name, expression, base_free = self.follower_views[index]
        follower = Follower(
            self.directory,
            base_free=base_free,
            use_codegen=self.config.use_codegen,
        )
        follower.define_view(name, expression)
        self.links[index].reset(follower)
        self.stats["follower_resets"] += 1

    def _follower_gapped(self, link: ReplicaLink) -> bool:
        """True when the log no longer holds the record the link needs.

        Checkpoints prune segments they cover, and the leader keeps no
        follower positions — so a follower lagging behind the prune
        horizon can never catch up from the log alone and must
        re-bootstrap from the checkpoint, exactly as a production
        replica behind the retention window would.
        """
        if link.follower.position >= self.durability.position:
            return False
        for record in WalReader(self.directory).records(
            after=link.follower.position
        ):
            return record.sequence > link.follower.position + 1
        # Behind the leader yet nothing on disk after its position:
        # everything it needs was pruned into the checkpoint.
        return True

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------
    def _ensure_clients(self) -> None:
        for client in self.clients:
            if client.connected():
                continue
            resume = (
                self._client_generation.get(client.name) == self.server_generation
            )
            try:
                client.connect(self.server, resume=resume)
            except ProtocolError:
                self.stats["client_connects_refused"] += 1
                continue
            self._client_generation[client.name] = self.server_generation

    def _heal_partitions(self) -> None:
        for index, heal_at in list(self._partition_heal.items()):
            if self.clock.now >= heal_at:
                self.links[index].channel.partitioned = False
                del self._partition_heal[index]

    def _pump_network(self) -> None:
        self._heal_partitions()
        self._ensure_clients()
        for link in self.links:
            link.pump()
            link.receive()
        for client in self.clients:
            client.process()

    def _network_idle(self) -> bool:
        for link in self.links:
            if not link.idle() or link.follower.position != self.durability.position:
                return False
        for client in self.clients:
            if not (client.connected() and client.seeded and client.idle()):
                return False
        return True

    def _drain_network(self) -> None:
        """Heal every fault, then tick until the whole system is idle."""
        for index in list(self._partition_heal):
            self.links[index].channel.partitioned = False
            del self._partition_heal[index]
        for link in self.links:
            link.stalled_until = 0
        for client in self.clients:
            client.stalled_until = 0
        for index, link in enumerate(self.links):
            if self._follower_gapped(link):
                self._rebootstrap_follower(index)
        for _ in range(self.MAX_DRAIN_TICKS):
            self._pump_network()
            if self._network_idle():
                return
            self.clock.advance(1)
        states = [
            f"{link.follower.position}/{self.durability.position}"
            for link in self.links
        ] + [repr(client) for client in self.clients]
        self.divergences.append(
            f"quiesce failed to converge within {self.MAX_DRAIN_TICKS} ticks: "
            + "; ".join(states)
        )

    # ------------------------------------------------------------------
    # Durability and the oracle
    # ------------------------------------------------------------------
    def _checkpoint_now(self) -> None:
        # A checkpoint is a durability claim; make it true first (see
        # the fault model's documented idealization).
        self.io.make_durable()
        self.durability.checkpoint(self.maintainer)
        self.stats["checkpoints"] += 1

    def _oracle_round(self) -> None:
        found: list[str] = []
        found.extend(oracle.verify_maintainer("leader", self.maintainer))
        found.extend(
            oracle.verify_database_against_wal(
                "leader", self.directory, self.database
            )
        )
        for index, link in enumerate(self.links):
            if link.follower.base_free:
                found.extend(
                    oracle.verify_base_free_follower(
                        f"base-free follower {index}",
                        link.follower,
                        self.database,
                    )
                )
            else:
                found.extend(
                    oracle.verify_follower(
                        f"follower {index}", link.follower, self.database,
                        required=sorted(BASE_TABLES),
                    )
                )
        self.stats["oracle_checks"] += 1
        self.divergences.extend(found)
