"""The full-recompute oracle and cross-copy agreement checks.

Every check returns a list of human-readable divergence strings (empty
when the copy agrees) rather than raising, so one oracle round can
report everything it finds and the episode can attach the seed and
trace.  The checks:

:func:`verify_maintainer`
    The paper's ground truth: re-evaluate every view definition from
    the current base relations and compare byte-for-byte (multiplicity
    counters included) with the differentially maintained contents.
    Also audits the plan cache — a cached plan whose fingerprint no
    longer matches its view's definition would silently maintain the
    view with stale screening conditions.

:func:`verify_database_against_wal`
    Rebuild the base relations *independently* — latest checkpoint plus
    a raw WAL replay with no maintainer attached — and compare with a
    live database.  This is the durability contract: a recovered (or
    running) leader is exactly checkpoint + log.

:func:`verify_follower`
    A follower's base replica must match the leader's relations (over
    the names both have: followers receive no DDL, so relations created
    after their bootstrap checkpoint are legitimately absent — but the
    simulated base tables are required), and its own views must pass
    the full-recompute oracle against its replica.

:func:`verify_base_free_follower`
    A base-free follower holds no base replica to recompute from, so
    the ground truth comes from the *leader*: each follower view is
    re-evaluated with the naive tree evaluator against the leader's
    relations and bag-compared with the follower's maintained contents.
    Once the bootstrap copy has been shed, every base relation on the
    follower must also be empty — rows reappearing there would mean the
    delta-only path quietly fell back to base state.

All comparisons are *bag* comparisons over encoded tuples — the same
``Relation.counts()`` mapping the persistence layer serializes, so
"agree" here means byte-for-byte equal on disk too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.algebra.evaluate import evaluate
from repro.engine.database import Database
from repro.engine.log import replay_records
from repro.replication.checkpoints import Checkpoint, latest_checkpoint_path
from repro.replication.recovery import decode_wal_record
from repro.replication.wal import WalReader

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.maintainer import ViewMaintainer
    from repro.replication.follower import Follower


def verify_maintainer(label: str, maintainer: "ViewMaintainer") -> list[str]:
    """Full recompute of every view + plan-cache staleness audit.

    Only meaningful at a quiescent point for DEFERRED views — call
    :meth:`ViewMaintainer.quiesce` first.
    """
    divergences: list[str] = []
    for name, report in maintainer.verify_all(raise_on_mismatch=False).items():
        if not report.is_consistent():
            divergences.append(f"{label}: {report.summary()}")
    # Aggregate views carry internal per-group support bags; the rows
    # they render must agree with the cached visible contents (a fold
    # that mutated the bags but mis-rendered a group would otherwise
    # slip past the expression-level recompute above only by luck).
    for name in maintainer.view_names():
        state = maintainer.view(name).aggregate_state
        if state is None:
            continue
        rendered = state.visible_relation().counts()
        visible = maintainer.view(name).contents.counts()
        if rendered != visible:
            divergences.append(
                f"{label}: aggregate view {name!r} support bags render "
                f"{len(rendered)} group row(s) but the visible contents "
                f"hold {len(visible)} — internal state diverged"
            )
    live = {
        name: maintainer.expected_plan_fingerprint(name)
        for name in maintainer.view_names()
    }
    for name, cached in maintainer.plan_fingerprints().items():
        if name not in live:
            divergences.append(
                f"{label}: plan cache holds a plan for dropped view {name!r}"
            )
        elif cached != live[name]:
            divergences.append(
                f"{label}: cached plan for {name!r} is stale "
                "(fingerprint differs from the live definition)"
            )
    return divergences


def ground_truth_database(directory: str) -> tuple[Database, int]:
    """Checkpoint + raw WAL replay, with no maintainer in the loop.

    Returns ``(database, last_sequence)``.  Propagates
    :class:`~repro.replication.wal.WalCorruptionError` — the caller
    decides whether detection was the expected outcome.
    """
    path = latest_checkpoint_path(directory)
    if path is None:
        raise AssertionError(f"no checkpoint in {directory!r} to ground on")
    checkpoint = Checkpoint.load(path)
    database = checkpoint.build_database()
    database.log.advance_sequence(checkpoint.wal_sequence + 1)
    last = checkpoint.wal_sequence
    reader = WalReader(directory)

    def decoded():
        nonlocal last
        for record in reader.records(after=checkpoint.wal_sequence):
            last = record.sequence
            yield decode_wal_record(database, record)

    replay_records(database, decoded(), preserve_txn_ids=True)
    return database, last


def diff_relations(
    label: str, expected: Database, actual: Database, names
) -> list[str]:
    """Bag-compare the named relations between two databases."""
    divergences: list[str] = []
    for name in sorted(names):
        want = expected.relation(name).counts()
        have = actual.relation(name).counts()
        if want == have:
            continue
        missing = sorted(set(want) - set(have))
        unexpected = sorted(set(have) - set(want))
        recounted = sorted(
            k for k in set(want) & set(have) if want[k] != have[k]
        )
        divergences.append(
            f"{label}: relation {name!r} diverges "
            f"(missing {missing[:3]!r}, unexpected {unexpected[:3]!r}, "
            f"count mismatches {recounted[:3]!r}; "
            f"sizes {len(want)} vs {len(have)})"
        )
    return divergences


def verify_database_against_wal(
    label: str, directory: str, database: Database
) -> list[str]:
    """A live database must equal its checkpoint + WAL, independently built."""
    truth, _ = ground_truth_database(directory)
    truth_names = set(truth.relation_names())
    live_names = set(database.relation_names())
    divergences: list[str] = []
    if truth_names != live_names:
        divergences.append(
            f"{label}: relation sets differ — WAL ground truth has "
            f"{sorted(truth_names - live_names)} extra, lacks "
            f"{sorted(live_names - truth_names)} (schema changes must "
            "pair with a checkpoint)"
        )
    divergences.extend(
        diff_relations(
            f"{label} (vs checkpoint+WAL)",
            truth,
            database,
            truth_names & live_names,
        )
    )
    return divergences


def verify_follower(
    label: str, follower: "Follower", leader: Database, required=()
) -> list[str]:
    """Follower base replica vs the leader, plus its own views' oracle.

    ``required`` names relations that must exist on both sides; other
    names are compared only when both sides have them (followers get no
    DDL, so later schema changes legitimately diverge).
    """
    follower_names = set(follower.database.relation_names())
    leader_names = set(leader.relation_names())
    divergences: list[str] = []
    missing_bases = set(required) - (follower_names & leader_names)
    if missing_bases:
        divergences.append(
            f"{label}: base tables {sorted(missing_bases)} absent from "
            "the replica or the leader"
        )
    divergences.extend(
        diff_relations(label, leader, follower.database, follower_names & leader_names)
    )
    follower.maintainer.quiesce()
    divergences.extend(verify_maintainer(label, follower.maintainer))
    return divergences


def verify_base_free_follower(
    label: str, follower: "Follower", leader: Database
) -> list[str]:
    """Base-free follower views vs a leader-side full recompute.

    Only meaningful at a quiescent point where the follower has applied
    every committed record — otherwise the leader is simply ahead.
    Deferred follower views are quiesced first, as everywhere else.
    """
    divergences: list[str] = []
    if follower.base_dropped:
        for name in sorted(follower.database.relation_names()):
            held = len(follower.database.relation(name))
            if held:
                divergences.append(
                    f"{label}: shed base relation {name!r} holds {held} "
                    "tuples — the base-free path leaked base state"
                )
    follower.maintainer.quiesce()
    instances = {
        name: leader.relation(name) for name in leader.relation_names()
    }
    for name in sorted(follower.maintainer.view_names()):
        view = follower.maintainer.view(name)
        if view.aggregate_state is not None:
            rendered = view.aggregate_state.visible_relation().counts()
            if rendered != view.contents.counts():
                divergences.append(
                    f"{label}: aggregate view {name!r} support bags "
                    "disagree with the visible contents"
                )
        want = evaluate(view.definition.expression, instances).counts()
        have = view.contents.counts()
        if want == have:
            continue
        missing = sorted(set(want) - set(have))
        unexpected = sorted(set(have) - set(want))
        recounted = sorted(
            k for k in set(want) & set(have) if want[k] != have[k]
        )
        divergences.append(
            f"{label}: base-free view {name!r} diverges from the leader "
            f"recompute (missing {missing[:3]!r}, unexpected "
            f"{unexpected[:3]!r}, count mismatches {recounted[:3]!r}; "
            f"sizes {len(want)} vs {len(have)})"
        )
    return divergences
