"""Episode batches, trace minimization and reporting.

The contract the CLI and the test-suite lean on: everything here is a
pure function of the configuration — the same ``seed`` produces the
identical schedules, traces, statistics and report text on every run
(scratch directories are scrubbed from any message that could leak
one).  A divergence therefore *is* its seed: ``repro simulate --seed N``
replays it exactly, and :func:`minimize_schedule` shrinks the event
list while the failure persists, so what gets reported is the shortest
schedule this harness could find that still reproduces the problem.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from collections import Counter
from typing import Any

from repro.simulation.workload import (
    Episode,
    SimulationConfig,
    generate_schedule,
)

Schedule = list[tuple[str, dict[str, Any]]]

#: Bound on re-executions spent shrinking one failing schedule.
MINIMIZE_BUDGET = 40


class EpisodeResult:
    """Everything one episode produced (all deterministic per seed)."""

    __slots__ = ("seed", "schedule", "trace", "stats", "divergences", "ended_early")

    def __init__(
        self,
        seed: int,
        schedule: Schedule,
        trace: list[str],
        stats: Counter,
        divergences: list[str],
        ended_early: str | None,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.trace = trace
        self.stats = stats
        self.divergences = divergences
        self.ended_early = ended_early

    @property
    def ok(self) -> bool:
        return not self.divergences


class SimFailure:
    """One failing episode plus its minimized reproduction."""

    __slots__ = (
        "seed",
        "divergences",
        "schedule",
        "minimized_schedule",
        "minimized_trace",
        "minimize_runs",
    )

    def __init__(
        self,
        seed: int,
        divergences: list[str],
        schedule: Schedule,
        minimized_schedule: Schedule,
        minimized_trace: list[str],
        minimize_runs: int,
    ) -> None:
        self.seed = seed
        self.divergences = divergences
        self.schedule = schedule
        self.minimized_schedule = minimized_schedule
        self.minimized_trace = minimized_trace
        self.minimize_runs = minimize_runs


class SimulationReport:
    """Aggregated outcome of a batch of episodes."""

    __slots__ = ("config", "stats", "episodes", "failures")

    def __init__(
        self,
        config: SimulationConfig,
        stats: Counter,
        episodes: list[EpisodeResult],
        failures: list[SimFailure],
    ) -> None:
        self.config = config
        self.stats = stats
        self.episodes = episodes
        self.failures = failures

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """A deterministic multi-line summary (same seed, same text)."""
        config = self.config
        lines = [
            f"simulation seed={config.seed} episodes={len(self.episodes)} "
            f"events={config.events} followers={config.followers} "
            f"base_free_followers={config.base_free_followers} "
            f"clients={config.clients} crashes={config.crashes} "
            f"partitions={config.partitions} ddl={config.ddl} "
            f"corruption={config.corruption}"
        ]
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]}")
        for failure in self.failures:
            lines.append(f"DIVERGENCE seed={failure.seed}")
            for message in failure.divergences[:5]:
                lines.append(f"  ! {message}")
            lines.append(
                f"  minimized to {len(failure.minimized_schedule)} of "
                f"{len(failure.schedule)} events "
                f"(in {failure.minimize_runs} replays):"
            )
            for line in failure.minimized_trace:
                lines.append(f"    {line}")
        lines.append("OK" if self.ok else f"FAILED ({len(self.failures)} episodes)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def episode_seeds(config: SimulationConfig) -> list[int]:
    """The batch's episode seeds, derived from the master seed."""
    rng = random.Random(f"{config.seed}:episodes")
    return [rng.randrange(2**31) for _ in range(config.episodes)]


def run_episode(
    seed: int,
    config: SimulationConfig,
    schedule: Schedule | None = None,
) -> EpisodeResult:
    """Execute one episode in a scratch directory, always cleaned up.

    An exception escaping the episode machine is itself a finding (the
    simulator's handlers absorb every *expected* outcome), so it is
    converted into a divergence — with the scratch path scrubbed for
    reproducible text — rather than propagated.
    """
    if schedule is None:
        schedule = generate_schedule(random.Random(f"{seed}:schedule"), config)
    directory = tempfile.mkdtemp(prefix="repro-sim-")
    trace: list[str] = []
    stats: Counter = Counter()
    divergences: list[str] = []
    ended_early: str | None = None
    try:
        episode = Episode(seed, config, directory)
        trace, stats, divergences = episode.trace, episode.stats, episode.divergences
        episode.run(schedule)
        ended_early = episode.ended_early
    except Exception as exc:  # noqa: BLE001 — an escape *is* the finding
        message = str(exc).replace(directory, "<dir>")
        note = f"unhandled {type(exc).__name__}: {message}"
        trace.append(f"[!] {note}")
        divergences.append(note)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return EpisodeResult(seed, schedule, trace, stats, divergences, ended_early)


def minimize_schedule(
    seed: int,
    config: SimulationConfig,
    schedule: Schedule,
    budget: int = MINIMIZE_BUDGET,
) -> tuple[Schedule, list[str], int]:
    """Shrink a failing schedule while it keeps failing.

    Two phases under one replay budget: a bisection for the shortest
    failing prefix (failures are usually prefix-monotone — the final
    quiesce always runs — but the result is re-verified, so a
    non-monotone failure just keeps the full schedule), then greedy
    removal of single events from the back.  Returns the minimized
    schedule, its failing trace, and how many replays were spent.
    """

    def fails(candidate: Schedule) -> bool:
        return bool(run_episode(seed, config, schedule=candidate).divergences)

    runs = 0
    current = list(schedule)
    low, high = 1, len(current)
    while low < high and runs < budget:
        mid = (low + high) // 2
        runs += 1
        if fails(current[:mid]):
            high = mid
        else:
            low = mid + 1
    if high < len(current):
        runs += 1
        if fails(current[:high]):
            current = current[:high]
    index = len(current) - 1
    while index >= 0 and runs < budget:
        candidate = current[:index] + current[index + 1 :]
        runs += 1
        if candidate and fails(candidate):
            current = candidate
        index -= 1
    final = run_episode(seed, config, schedule=current)
    return current, final.trace, runs + 1


def run_simulation(
    config: SimulationConfig,
    minimize: bool = True,
    max_failures: int = 3,
) -> SimulationReport:
    """Run the batch; failing episodes get minimized reproductions.

    ``max_failures`` stops the batch early once that many episodes have
    diverged — enough evidence to debug with, without paying for the
    rest of the batch.
    """
    stats: Counter = Counter()
    episodes: list[EpisodeResult] = []
    failures: list[SimFailure] = []
    for seed in episode_seeds(config):
        result = run_episode(seed, config)
        episodes.append(result)
        stats.update(result.stats)
        stats["episodes"] += 1
        if result.ended_early:
            stats[f"episodes_{result.ended_early}"] += 1
        if result.ok:
            continue
        if minimize:
            minimized, trace, replays = minimize_schedule(
                seed, config, result.schedule
            )
        else:
            minimized, trace, replays = result.schedule, result.trace, 0
        failures.append(
            SimFailure(
                seed, result.divergences, result.schedule,
                minimized, trace, replays,
            )
        )
        if len(failures) >= max_failures:
            break
    return SimulationReport(config, stats, episodes, failures)
