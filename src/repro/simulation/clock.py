"""Virtual time for the simulator.

Nothing in a simulation ever reads the wall clock: every component that
cares about time holds a :class:`SimClock`, and only the workload
driver advances it.  Ticks are abstract (a tick is "one scheduling
opportunity", not a duration); what matters is that delivery deadlines,
stall windows and partition lengths are all expressed in the same
monotonically advancing integer, so a replayed schedule observes the
identical interleaving.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing integer clock owned by the scheduler."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def advance(self, ticks: int = 1) -> int:
        """Move time forward; returns the new now."""
        if ticks < 0:
            raise ValueError("time only moves forward in the simulator")
        self.now += ticks
        return self.now

    def __repr__(self) -> str:
        return f"<SimClock t={self.now}>"
