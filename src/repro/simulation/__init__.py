"""Deterministic simulation of the whole stack under injected faults.

A FoundationDB-style test harness: one seed determines everything —
the workload (random transactions over paper-class SPJ views, DDL,
checkpoints), the fault schedule (crashes, torn tail writes, lost
fsyncs, bit-flip corruption, network delay/reorder/drop/duplicate,
partitions, slow consumers), and the virtual time everything runs in.
After every quiescent point a full-recompute oracle re-evaluates each
view definition from the base relations and asserts byte-for-byte
agreement (multiplicity counters included) with the differentially
maintained copy, the crash-recovered copy, every follower's copy, and
each client's changefeed-built mirror.  A divergence reports the seed
and a minimized event trace that reproduces it.

Layers
------
:mod:`~repro.simulation.clock`
    :class:`SimClock` — virtual time, advanced only by the scheduler.
:mod:`~repro.simulation.faults`
    :class:`FaultyWalIO` — the storage fault model behind the WAL's
    :class:`~repro.replication.wal.WalIO` seam, plus bit-flip
    corruption of segments.
:mod:`~repro.simulation.network`
    :class:`SimChannel` (delay/reorder/drop/duplicate/partition),
    :class:`ReplicaLink` (record shipping to a follower) and
    :class:`SimClient` (a server session over an injectable transport,
    maintaining a changefeed mirror).
:mod:`~repro.simulation.workload`
    Schedule generation (pure data from the seed) and the
    :class:`Episode` machine that executes it.
:mod:`~repro.simulation.oracle`
    The full-recompute and cross-copy agreement checks.
:mod:`~repro.simulation.runner`
    Batches of episodes, trace minimization, the CLI's engine.

Entry points: ``python -m repro.cli simulate --seed N`` or
:func:`repro.simulation.runner.run_simulation`.
"""

from repro.simulation.clock import SimClock
from repro.simulation.faults import FaultyWalIO
from repro.simulation.runner import (
    SimulationConfig,
    SimulationReport,
    run_episode,
    run_simulation,
)

__all__ = [
    "SimClock",
    "FaultyWalIO",
    "SimulationConfig",
    "SimulationReport",
    "run_episode",
    "run_simulation",
]
