"""The storage fault model: a lying disk behind the WAL's IO seam.

:class:`FaultyWalIO` plugs into :class:`~repro.replication.wal.WalWriter`
through the ``io=`` parameter and tracks, per file, two byte counts:

``written``
    bytes the writer has pushed to the "OS" (every write is flushed, so
    in this model written bytes are always in the page cache);
``durable``
    bytes an *honest* fsync has confirmed on "disk".

An fsync may be silently **lost** (probability ``lost_fsync_rate``):
the call returns success but ``durable`` does not advance — the lying
disk.  A :meth:`crash` then models the machine dying: each file is cut
back to its durable prefix *plus a random prefix of the unsynced tail*
(the page cache may have drifted part of it to disk on its own).  A cut
that lands mid-record is exactly a torn tail write; a cut at a record
boundary is a clean lost suffix.  Data an honest fsync acknowledged is
never lost — that is what keeps the oracle's expectations sound: after
recovery, the surviving WAL prefix *is* the durable history.

The model's two deliberate idealizations, both of the same shape —
a fault whose only possible outcome is damage the code under test can
at best *detect* is excluded from the crash fault, so that every crash
episode has a recoverable ground truth:

1. :meth:`make_durable` marks everything written as durable, and the
   workload driver calls it before each checkpoint.  A checkpoint is a
   durability *claim* ("state as of WAL sequence N"); a lost fsync
   under one would leave the checkpoint pointing past the surviving
   log — undetectable corruption by construction.
2. :meth:`close` performs an honest fsync: segment rotation is a
   durability barrier.  A lost rotation fsync followed by a crash
   would tear the tail of a *non-final* segment, which the reader
   (correctly) refuses as mid-log corruption.

Both scenarios still exist in the harness — as :func:`flip_segment_byte`
episodes, whose contract is detection, not recovery.

:func:`flip_segment_byte` is the separate, *detectable* corruption
fault: one bit of one committed record changes on disk, which the WAL's
per-record CRC must catch.
"""

from __future__ import annotations

import os
import random

from repro.replication.wal import WalIO, segment_paths


class FaultyWalIO(WalIO):
    """A :class:`~repro.replication.wal.WalIO` that loses unsynced bytes.

    ``rng`` drives every fault decision (never the global
    :mod:`random`), so a given seed replays the identical fault
    history.  With ``lost_fsync_rate=0`` the only fault left is the
    crash itself — cut points within whatever was written after the
    last fsync.
    """

    def __init__(self, rng: random.Random, lost_fsync_rate: float = 0.0) -> None:
        self.rng = rng
        self.lost_fsync_rate = lost_fsync_rate
        #: Per path: bytes pushed to the OS / bytes an honest fsync saw.
        self._written: dict[str, int] = {}
        self._durable: dict[str, int] = {}
        self.fsyncs_lost = 0
        self.crashes = 0
        self.bytes_discarded = 0

    # ------------------------------------------------------------------
    # The WalIO surface
    # ------------------------------------------------------------------
    def open_append(self, path: str):
        stream = super().open_append(path)
        size = stream.tell()
        self._written[path] = size
        # Bytes present at open that this IO never tracked (a segment
        # inherited from before attachment) are taken as durable; bytes
        # it did track keep their recorded durability, clamped to the
        # file's actual size.
        self._durable[path] = min(self._durable.get(path, size), size)
        return stream

    def write(self, stream, data: bytes) -> None:
        super().write(stream, data)
        self._written[stream.name] = self._written.get(stream.name, 0) + len(data)

    def fsync(self, stream) -> None:
        if self.rng.random() < self.lost_fsync_rate:
            # The disk lies: success is reported, durability is not won.
            self.fsyncs_lost += 1
            return
        super().fsync(stream)
        path = stream.name
        self._durable[path] = self._written.get(path, self._durable.get(path, 0))

    def close(self, stream) -> None:
        # Segment rotation is a durability barrier (idealization #2,
        # see the module docstring): the writer fsyncs a segment before
        # abandoning it, and that fsync is honest here.  Otherwise a
        # crash could tear the tail of a *non-final* segment, which
        # reads as mid-log corruption — a lying-disk scenario the WAL
        # can only detect, never repair, so it belongs to the bit-flip
        # fault, not the crash fault.
        if not stream.closed:
            super().fsync(stream)
            self._durable[stream.name] = self._written.get(stream.name, 0)
        super().close(stream)

    def truncate(self, path: str, offset: int) -> None:
        super().truncate(path, offset)
        self._written[path] = offset
        self._durable[path] = offset

    # ------------------------------------------------------------------
    # Fault-model controls (driven by the workload)
    # ------------------------------------------------------------------
    def make_durable(self) -> None:
        """Declare everything written durable (a real flush barrier)."""
        for path, written in self._written.items():
            self._durable[path] = written

    def crash(self) -> list[tuple[str, int, int]]:
        """The machine dies: un-fsynced bytes may vanish.

        Each tracked file is truncated to ``durable + r`` where ``r``
        is a uniform random prefix of its unsynced tail.  Returns
        ``(basename, size_before, size_after)`` for every file that
        lost bytes.  Tracking is reset to the post-crash reality, so
        the same IO object can serve the recovered writer.
        """
        self.crashes += 1
        outcomes: list[tuple[str, int, int]] = []
        for path in sorted(self._written):
            if not os.path.exists(path):
                # Pruned by a checkpoint; nothing left to lose.
                self._written.pop(path, None)
                self._durable.pop(path, None)
                continue
            written = os.path.getsize(path)
            durable = min(self._durable.get(path, written), written)
            if written > durable:
                keep = durable + self.rng.randint(0, written - durable)
                if keep < written:
                    with open(path, "r+b") as stream:
                        stream.truncate(keep)
                    self.bytes_discarded += written - keep
                    outcomes.append((os.path.basename(path), written, keep))
                written = keep
            self._written[path] = written
            self._durable[path] = written
        return outcomes

    def stats(self) -> dict[str, int]:
        """The fault counters (deterministic content, for traces)."""
        return {
            "fsyncs_lost": self.fsyncs_lost,
            "crashes": self.crashes,
            "bytes_discarded": self.bytes_discarded,
        }

    def __repr__(self) -> str:
        return (
            f"<FaultyWalIO crashes={self.crashes} "
            f"fsyncs_lost={self.fsyncs_lost}>"
        )


def flip_segment_byte(directory: str, rng: random.Random) -> tuple[str, int] | None:
    """Flip one random bit of one random committed WAL byte.

    Models silent media corruption, the fault the per-record CRC exists
    for.  Returns ``(segment basename, byte offset)``, or None when the
    log has no bytes to corrupt.  Any single-bit flip changes the
    record's canonical encoding without a compensating CRC change, so
    the damaged line must decode to None — detection is then the
    reader's torn-tail-versus-corruption classification.
    """
    segments = [
        (path, os.path.getsize(path))
        for _, path in segment_paths(directory)
        if os.path.getsize(path) > 0
    ]
    if not segments:
        return None
    total = sum(size for _, size in segments)
    target = rng.randrange(total)
    for path, size in segments:
        if target < size:
            with open(path, "r+b") as stream:
                stream.seek(target)
                byte = stream.read(1)
                stream.seek(target)
                stream.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))
            return os.path.basename(path), target
        target -= size
    raise AssertionError("unreachable: target within total")
