"""The simulated network: lossy channels, record shipping, sim clients.

Three pieces, each deterministic given its seeded RNG and the
:class:`~repro.simulation.clock.SimClock`:

:class:`SimChannel`
    A unidirectional message queue with injected delay, reordering,
    drops, duplication, partitions and bounded capacity.  A *FIFO*
    channel (``fifo=True``) models one TCP connection: delay only,
    delivery order preserved — byte streams do not reorder; datagram
    faults belong on the record bus.

:class:`ReplicaLink`
    Ships WAL records from the leader's directory to a
    :class:`~repro.replication.follower.Follower` over a lossy channel,
    at-least-once: every pump re-offers records after the follower's
    acknowledged position, so drops are repaired by retransmission,
    duplicates are ignored by :meth:`Follower.apply_record`, and
    reordered arrivals wait in a per-sequence buffer until their
    predecessors land.

:class:`SimClient`
    One in-process client driving a
    :class:`~repro.server.session.LocalSession`: it subscribes to a
    view, maintains a **mirror** of its contents purely from changefeed
    delta events (reseeding over the same wire with a full query), and
    reconnects — resuming from its mirror position, falling back to a
    reseed on ``offset_out_of_range`` — whenever the server drops it
    (slow consumer) or crashes.  The mirror is the harness's proof that
    the changefeed alone reconstructs the view byte-for-byte.
"""

from __future__ import annotations

import heapq
import random
from typing import Any

from repro.replication.follower import Follower
from repro.replication.wal import WalReader, WalRecord
from repro.server import protocol
from repro.simulation.clock import SimClock


class SimChannel:
    """A seeded lossy message queue running on virtual time."""

    def __init__(
        self,
        clock: SimClock,
        rng: random.Random,
        delay_max: int = 2,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        capacity: int | None = None,
        fifo: bool = False,
    ) -> None:
        self.clock = clock
        self.rng = rng
        self.delay_max = delay_max
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.capacity = capacity
        self.fifo = fifo
        self.partitioned = False
        self._heap: list[tuple[int, int, Any]] = []
        self._counter = 0
        self._last_assigned = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.refused = 0

    def __len__(self) -> int:
        return len(self._heap)

    def _enqueue(self, deliver_at: int, message: Any) -> None:
        heapq.heappush(self._heap, (deliver_at, self._counter, message))
        self._counter += 1

    def send(self, message: Any) -> bool:
        """Offer one message; False when the channel refuses (full).

        A partitioned or lossy channel *accepts* and silently discards
        — the sender cannot tell, exactly as with a real network.
        """
        self.sent += 1
        if self.partitioned or self.rng.random() < self.drop_rate:
            self.dropped += 1
            return True
        if self.capacity is not None and len(self._heap) >= self.capacity:
            self.refused += 1
            return False
        delay = self.rng.randint(0, self.delay_max) if self.delay_max else 0
        if not self.fifo and self.rng.random() < self.reorder_rate:
            delay += self.rng.randint(1, 3)
        deliver_at = self.clock.now + delay
        if self.fifo:
            # One connection: later sends never overtake earlier ones.
            deliver_at = max(deliver_at, self._last_assigned)
            self._last_assigned = deliver_at
        self._enqueue(deliver_at, message)
        if not self.fifo and self.rng.random() < self.duplicate_rate:
            self.duplicated += 1
            self._enqueue(self.clock.now + self.rng.randint(0, self.delay_max + 3), message)
        return True

    def deliver_due(self) -> list[Any]:
        """Messages whose delivery time has arrived, in delivery order."""
        due = []
        while self._heap and self._heap[0][0] <= self.clock.now:
            due.append(heapq.heappop(self._heap)[2])
        self.delivered += len(due)
        return due

    def clear(self) -> int:
        """Drop everything in flight (a connection reset); returns count."""
        count = len(self._heap)
        self._heap.clear()
        self._last_assigned = 0
        return count

    def stats(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "refused": self.refused,
        }


class ReplicaLink:
    """At-least-once WAL record shipping to one follower.

    The leader side re-reads the shared directory after the follower's
    applied position on every :meth:`pump` — retransmission is the
    repair for dropped messages.  The replica side buffers out-of-order
    arrivals and funnels everything through
    :meth:`Follower.apply_record`, which ignores duplicates and rejects
    gaps.
    """

    def __init__(self, follower: Follower, channel: SimChannel, window: int = 8) -> None:
        self.follower = follower
        self.channel = channel
        self.window = window
        self._reader = WalReader(follower.directory)
        self._buffer: dict[int, WalRecord] = {}
        self.stalled_until = 0
        self.records_applied = 0

    def pump(self) -> int:
        """Leader side: offer the next window of records; returns sent."""
        sent = 0
        for record in self._reader.records(after=self.follower.position):
            self.channel.send((record.sequence, record.txn_id, record.deltas_doc))
            sent += 1
            if sent >= self.window:
                break
        return sent

    def receive(self) -> int:
        """Replica side: apply due, in-order records; returns applied."""
        if self.channel.clock.now < self.stalled_until:
            return 0
        for sequence, txn_id, deltas_doc in self.channel.deliver_due():
            if sequence > self.follower.position and sequence not in self._buffer:
                self._buffer[sequence] = WalRecord(sequence, txn_id, deltas_doc)
        applied = 0
        while self.follower.position + 1 in self._buffer:
            record = self._buffer.pop(self.follower.position + 1)
            if self.follower.apply_record(record):
                applied += 1
        self.records_applied += applied
        return applied

    def stall(self, until_tick: int) -> None:
        """Stop consuming until virtual time reaches ``until_tick``."""
        self.stalled_until = max(self.stalled_until, until_tick)

    def reset(self, follower: Follower) -> None:
        """Adopt a rebuilt follower; everything in flight is stale."""
        self.follower = follower
        self._reader = WalReader(follower.directory)
        self._buffer.clear()
        self.channel.clear()
        self.stalled_until = 0

    def idle(self) -> bool:
        """True when nothing is in flight, buffered, or stalled."""
        return (
            not self._buffer
            and len(self.channel) == 0
            and self.channel.clock.now >= self.stalled_until
        )


class SimClient:
    """One changefeed subscriber + request issuer over a LocalSession.

    The client owns the *server→client* FIFO channel; its ``transport``
    (handed to :meth:`ViewServer.open_local_session`) offers every
    outbound frame to that channel, whose bounded capacity is the
    model's socket buffer: a stalled client stops draining, the channel
    fills, the next offer is refused, and the server applies its
    slow-consumer policy.  Client→server requests are delivered
    immediately (requests are small; the interesting contention is the
    fan-out direction).
    """

    def __init__(
        self,
        name: str,
        clock: SimClock,
        view_name: str,
        delay_max: int = 1,
        capacity: int = 64,
    ) -> None:
        self.name = name
        self.clock = clock
        self.view_name = view_name
        self.link = SimChannel(clock, random.Random(0), delay_max=delay_max,
                               capacity=capacity, fifo=True)
        self.session: Any = None
        self.server: Any = None
        #: The changefeed-built copy: decoded row tuple → multiplicity.
        self.mirror: dict[tuple[Any, ...], int] = {}
        self.mirror_seq = 0
        self.seeded = False
        self._held_events: list[tuple[int, dict[str, Any]]] = []
        self.stalled_until = 0
        self._pending: dict[int, str] = {}
        self._next_request_id = 1
        self.divergences: list[str] = []
        self.counters = {
            "connects": 0,
            "reseeds": 0,
            "txns_ok": 0,
            "requests_failed": 0,
            "events_applied": 0,
            "queries_verified": 0,
            "disconnects_seen": 0,
        }

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _transport(self, frame: bytes) -> bool:
        return self.link.send(frame)

    def connected(self) -> bool:
        return self.session is not None and not self.session.closing

    def connect(self, server: Any, resume: bool = True) -> None:
        """Open a session and (re)subscribe.

        ``resume=True`` asks the feed to replay from the mirror's
        position — valid only while the server instance is continuous.
        After a server crash the caller passes ``resume=False``: WAL
        sequences may have been reissued for different data, so the
        mirror re-seeds from scratch.
        """
        if self.session is not None and not self.session.closing:
            self.session.close("superseded")
        self.link.clear()
        self._pending.clear()
        self._held_events.clear()
        self.server = server
        self.session = server.open_local_session(self._transport)
        self.counters["connects"] += 1
        doc: dict[str, Any] = {"op": "subscribe", "view": self.view_name}
        if resume and self.seeded:
            doc["from"] = self.mirror_seq
        else:
            self.seeded = False
            self.mirror.clear()
            self.mirror_seq = 0
        self._submit(doc, "subscribe")

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _submit(self, doc: dict[str, Any], kind: str) -> bool:
        if not self.connected():
            return False
        request_id = self._next_request_id
        self._next_request_id += 1
        doc = dict(doc)
        doc["id"] = request_id
        self._pending[request_id] = kind
        self.session.handle(doc)
        return True

    def submit_txn(self, inserts: dict[str, list[list[Any]]],
                   deletes: dict[str, list[list[Any]]]) -> bool:
        """Commit a transaction through the server; False if not connected."""
        doc: dict[str, Any] = {"op": "txn"}
        if inserts:
            doc["insert"] = inserts
        if deletes:
            doc["delete"] = deletes
        return self._submit(doc, "txn")

    def submit_query(self, target: str, where: str | None = None) -> bool:
        """An ad-hoc read (response is only counted, not verified)."""
        doc: dict[str, Any] = {"op": "query", "target": target}
        if where is not None:
            doc["where"] = where
        return self._submit(doc, "query")

    def request_verify(self) -> bool:
        """Query the subscribed view in full, to diff against the mirror."""
        return self._submit(
            {"op": "query", "target": self.view_name}, "verify"
        )

    def resubscribe(self) -> None:
        """Subscriber churn: drop the subscription, re-open it resumably."""
        if not self.connected():
            return
        for subscription_id in list(self.session.subscriptions):
            self._submit({"op": "unsubscribe", "subscription": subscription_id},
                         "unsubscribe")
        doc: dict[str, Any] = {"op": "subscribe", "view": self.view_name}
        if self.seeded:
            doc["from"] = self.mirror_seq
        self._submit(doc, "subscribe")

    def stall(self, until_tick: int) -> None:
        """Stop draining the link until virtual time reaches the tick."""
        self.stalled_until = max(self.stalled_until, until_tick)

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def process(self) -> int:
        """Drain due frames (unless stalled); returns frames handled."""
        if self.clock.now < self.stalled_until:
            return 0
        handled = 0
        for frame in self.link.deliver_due():
            self._on_frame(protocol.decode_payload(frame[protocol.HEADER_BYTES:]))
            handled += 1
        return handled

    def _on_frame(self, doc: dict[str, Any]) -> None:
        if doc.get("event") == "delta":
            self._on_event(doc)
            return
        kind = self._pending.pop(doc.get("id"), "unknown")
        if not doc.get("ok", False):
            code = doc.get("error", {}).get("code")
            self.counters["requests_failed"] += 1
            if kind == "subscribe" and code == protocol.E_OFFSET_OUT_OF_RANGE:
                # The feed's window has moved past the mirror: start over.
                self.seeded = False
                self.mirror.clear()
                self.mirror_seq = 0
                self._submit({"op": "subscribe", "view": self.view_name}, "subscribe")
            return
        result = doc.get("result", {})
        if kind == "subscribe" and not self.seeded:
            # Fresh subscription: pull the full contents at one sequence.
            self.counters["reseeds"] += 1
            self._submit({"op": "query", "target": self.view_name}, "reseed")
        elif kind == "reseed":
            self.mirror = {}
            for row, count in zip(result["rows"], result["counts"]):
                key = tuple(row)
                self.mirror[key] = self.mirror.get(key, 0) + count
            self.mirror_seq = result["seq"]
            self.seeded = True
            held, self._held_events = self._held_events, []
            for sequence, delta_doc in held:
                if sequence > self.mirror_seq:
                    self._apply_delta(sequence, delta_doc)
        elif kind == "verify":
            self._check_verify(result)
        elif kind == "txn":
            self.counters["txns_ok"] += 1

    def _on_event(self, doc: dict[str, Any]) -> None:
        if doc.get("view") != self.view_name:
            return
        sequence = doc["seq"]
        delta_doc = doc["delta"]
        if not self.seeded:
            self._held_events.append((sequence, delta_doc))
        elif sequence > self.mirror_seq:
            self._apply_delta(sequence, delta_doc)

    def _apply_delta(self, sequence: int, delta_doc: dict[str, Any]) -> None:
        for row in delta_doc.get("deleted", ()):
            key = tuple(row)
            count = self.mirror.get(key, 0) - 1
            if count < 0:
                self.divergences.append(
                    f"client {self.name}: delta at seq {sequence} deletes "
                    f"{key!r} not present in the mirror"
                )
            if count <= 0:
                self.mirror.pop(key, None)
            else:
                self.mirror[key] = count
        for row in delta_doc.get("inserted", ()):
            key = tuple(row)
            self.mirror[key] = self.mirror.get(key, 0) + 1
        self.mirror_seq = sequence
        self.counters["events_applied"] += 1

    def _check_verify(self, result: dict[str, Any]) -> None:
        """Diff a full-view query against the mirror.

        Sound whenever the mirror is seeded: the link is FIFO, so every
        delta event for a commit ordered before the query was processed
        before this response — the mirror already reflects any
        view-changing commit up to ``result["seq"]``, and commits after
        ``mirror_seq`` that left the view untouched emit no event.
        """
        if not self.seeded:
            return
        queried: dict[tuple[Any, ...], int] = {}
        for row, count in zip(result["rows"], result["counts"]):
            key = tuple(row)
            queried[key] = queried.get(key, 0) + count
        if queried != self.mirror:
            missing = sorted(set(queried) - set(self.mirror))
            extra = sorted(set(self.mirror) - set(queried))
            self.divergences.append(
                f"client {self.name}: mirror of {self.view_name!r} diverges "
                f"at seq {self.mirror_seq} (missing {missing[:3]!r}, "
                f"unexpected {extra[:3]!r}, sizes {len(queried)} vs "
                f"{len(self.mirror)})"
            )
        else:
            self.counters["queries_verified"] += 1

    # ------------------------------------------------------------------
    # Episode plumbing
    # ------------------------------------------------------------------
    def on_server_gone(self) -> None:
        """The server object died under us (crash): drop the session."""
        if self.session is not None and not self.session.closing:
            self.session.closing = True
        self.counters["disconnects_seen"] += 1
        self.link.clear()
        self._pending.clear()
        self._held_events.clear()

    def idle(self) -> bool:
        """Nothing in flight, no outstanding requests, not stalled."""
        return (
            len(self.link) == 0
            and not self._pending
            and self.clock.now >= self.stalled_until
        )

    def __repr__(self) -> str:
        return (
            f"<SimClient {self.name} view={self.view_name!r} "
            f"seq={self.mirror_seq} {len(self.mirror)} rows>"
        )
