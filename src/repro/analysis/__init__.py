"""Static analysis of view definitions, constraints and compiled plans.

The analyzer turns the paper's Section 4 decision procedures —
satisfiability by negative-cycle detection, implication by
``C ∧ ¬a`` unsatisfiability, static irrelevance under declared
constraints — into compile-time diagnostics over registered views.

Entry points
------------
* :func:`analyze_definition` — single-view checks; what strict
  registration (``ViewMaintainer.define_view(strict=True)``) runs.
* :func:`analyze_maintainer` — everything, including the cross-view
  subsumption pass; what ``ViewMaintainer.analyze()`` and the CLI's
  ``analyze`` verb run.
* :class:`AnalysisReport` — deterministic text/JSON rendering.
* :class:`Finding` / :class:`Severity` — the typed result vocabulary
  (closed code set; see :mod:`repro.analysis.findings`).
* :mod:`repro.analysis.dependencies` — chase-based inference over
  declared keys: :func:`derive_view_key`, :func:`fk_reduction`, and
  the row-determination helpers base-free hosts use.
"""

from repro.analysis.analyzer import (
    AnalysisReport,
    analyze_definition,
    analyze_maintainer,
    cross_view_findings,
)
from repro.analysis.dependencies import (
    Dependency,
    FkReduction,
    KeyLookup,
    ViewKey,
    close,
    dependencies_for,
    derive_view_key,
    determined_row,
    fk_reduction,
    key_determines_row,
    shared_equality_atoms,
)
from repro.analysis.findings import (
    CODE_SEVERITIES,
    F_COUNTER_FREE,
    F_DEAD_DISJUNCT,
    F_DEAD_TRUTH_ROWS,
    F_DUPLICATE_SENSITIVE,
    F_DUPLICATE_VIEW,
    F_LOOSE_BOUND,
    F_REDUNDANT_ATOM,
    F_SELF_MAINTAINABLE,
    F_STATIC_IRRELEVANCE,
    F_SUBSUMED_VIEW,
    F_UNBOUND_OLD_OPERAND,
    F_UNSATISFIABLE_CONDITION,
    F_UNSUPPORTED_AGGREGATE,
    F_VIEW_KEY,
    Finding,
    Severity,
)
from repro.analysis.routing import (
    is_shard_irrelevant,
    shard_effective_condition,
)

__all__ = [
    "AnalysisReport",
    "CODE_SEVERITIES",
    "Dependency",
    "F_COUNTER_FREE",
    "F_DEAD_DISJUNCT",
    "F_DEAD_TRUTH_ROWS",
    "F_DUPLICATE_SENSITIVE",
    "F_DUPLICATE_VIEW",
    "F_LOOSE_BOUND",
    "F_REDUNDANT_ATOM",
    "F_SELF_MAINTAINABLE",
    "F_STATIC_IRRELEVANCE",
    "F_SUBSUMED_VIEW",
    "F_UNBOUND_OLD_OPERAND",
    "F_UNSATISFIABLE_CONDITION",
    "F_UNSUPPORTED_AGGREGATE",
    "F_VIEW_KEY",
    "Finding",
    "FkReduction",
    "KeyLookup",
    "Severity",
    "ViewKey",
    "analyze_definition",
    "analyze_maintainer",
    "close",
    "cross_view_findings",
    "dependencies_for",
    "derive_view_key",
    "determined_row",
    "fk_reduction",
    "is_shard_irrelevant",
    "key_determines_row",
    "shard_effective_condition",
]
