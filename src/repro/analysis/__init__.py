"""Static analysis of view definitions, constraints and compiled plans.

The analyzer turns the paper's Section 4 decision procedures —
satisfiability by negative-cycle detection, implication by
``C ∧ ¬a`` unsatisfiability, static irrelevance under declared
constraints — into compile-time diagnostics over registered views.

Entry points
------------
* :func:`analyze_definition` — single-view checks; what strict
  registration (``ViewMaintainer.define_view(strict=True)``) runs.
* :func:`analyze_maintainer` — everything, including the cross-view
  subsumption pass; what ``ViewMaintainer.analyze()`` and the CLI's
  ``analyze`` verb run.
* :class:`AnalysisReport` — deterministic text/JSON rendering.
* :class:`Finding` / :class:`Severity` — the typed result vocabulary
  (closed code set; see :mod:`repro.analysis.findings`).
"""

from repro.analysis.analyzer import (
    AnalysisReport,
    analyze_definition,
    analyze_maintainer,
    cross_view_findings,
)
from repro.analysis.findings import (
    CODE_SEVERITIES,
    F_DEAD_DISJUNCT,
    F_DEAD_TRUTH_ROWS,
    F_DUPLICATE_VIEW,
    F_LOOSE_BOUND,
    F_REDUNDANT_ATOM,
    F_SELF_MAINTAINABLE,
    F_STATIC_IRRELEVANCE,
    F_SUBSUMED_VIEW,
    F_UNBOUND_OLD_OPERAND,
    F_UNSATISFIABLE_CONDITION,
    F_UNSUPPORTED_AGGREGATE,
    Finding,
    Severity,
)
from repro.analysis.routing import (
    is_shard_irrelevant,
    shard_effective_condition,
)

__all__ = [
    "AnalysisReport",
    "CODE_SEVERITIES",
    "F_DEAD_DISJUNCT",
    "F_DEAD_TRUTH_ROWS",
    "F_DUPLICATE_VIEW",
    "F_LOOSE_BOUND",
    "F_REDUNDANT_ATOM",
    "F_SELF_MAINTAINABLE",
    "F_STATIC_IRRELEVANCE",
    "F_SUBSUMED_VIEW",
    "F_UNBOUND_OLD_OPERAND",
    "F_UNSATISFIABLE_CONDITION",
    "F_UNSUPPORTED_AGGREGATE",
    "Finding",
    "Severity",
    "analyze_definition",
    "analyze_maintainer",
    "cross_view_findings",
    "is_shard_irrelevant",
    "shard_effective_condition",
]
