"""The static view analyzer: eight checks over definitions and plans.

Everything here reuses the Section 4 decision machinery — the
Rosenkrantz–Hunt constraint graph, satisfiability, and the implication
reduction ``C ⟹ a iff C ∧ ¬a unsat`` — against a view definition *at
registration time* instead of against tuples at update time:

(a) **Unsatisfiable condition** (ERROR) — no disjunct of the DNF
    condition is satisfiable, so the view is empty in every database
    state.  Strict registration rejects these.
(b) **Dead disjuncts / redundant atoms** (WARN) — an unsatisfiable
    disjunct contributes nothing; an atom implied by the rest of its
    conjunct can be dropped.  Either way the compiled screens carry
    edges that buy no selectivity.
(c) **Loose bounds** (INFO) — the all-pairs shortest paths of a
    disjunct's constraint graph entail a strictly tighter constant
    bound than a written single-variable screen.
(d) **Static irrelevance** (INFO) — under a relation's declared
    constraint, ``C ∧ K_R`` is unsatisfiable for every occurrence of
    R, so no legal update to R can ever affect the view (Theorem 4.1
    lifted from one tuple to the whole legal domain).  The compiled
    plan proves the same fact itself and drops R's screening; the
    finding surfaces it.
(e) **Cross-view subsumption / equivalence** (WARN / INFO) — two views
    over the same operand list with provably equivalent conditions and
    identical projected columns are duplicates; a one-way implication
    with a column subset means one view is computable from the other.
(f) **Plan lint** (WARN / INFO) — OLD operands joined with no equality
    links (every maintenance step scans them in full, no index can
    help) and truth-table delta rows that can never fire because they
    require a delta from a statically irrelevant relation.
(g) **Self-maintainability** (INFO) — the view is maintainable from
    its own counted contents plus the delta, with no base-relation
    access (:mod:`repro.scheduler.selfmaint`), so a ``base_free=True``
    follower or shard could host it without base copies.
(h) **Unsupported aggregates** (ERROR) — SUM/AVG over an attribute
    whose domain is a label space: the encoded codes are arbitrary
    registration order, so the arithmetic is meaningless in every
    database state.  MIN/MAX over labels stays legal (ordered by code,
    documented); COUNT reads no attribute at all.
(i) **Key/FD reasoning** (INFO / WARN) — the chase over declared keys
    (:mod:`repro.analysis.dependencies`) derives view keys
    (``F_VIEW_KEY`` with the FD proof chain), proves multiplicity ≤ 1
    so codegen can pin the Section 5.2 counters (``F_COUNTER_FREE``),
    and warns when a self-maintainable view reads a keyless base
    relation whose shipped deltas rely on upstream validation
    (``F_DUPLICATE_SENSITIVE``).

All checks are *decision procedures*, not heuristics: each finding is
a theorem about the definition, which is why the report is
deterministic — same input, byte-identical output.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.algebra.conditions import Atom, Conjunction, Var
from repro.algebra.domains import FiniteDomain, IntegerDomain
from repro.analysis.dependencies import KeyLookup, derive_view_key
from repro.analysis.findings import (
    F_COUNTER_FREE,
    F_DEAD_DISJUNCT,
    F_DEAD_TRUTH_ROWS,
    F_DUPLICATE_SENSITIVE,
    F_DUPLICATE_VIEW,
    F_LOOSE_BOUND,
    F_REDUNDANT_ATOM,
    F_SELF_MAINTAINABLE,
    F_STATIC_IRRELEVANCE,
    F_SUBSUMED_VIEW,
    F_UNBOUND_OLD_OPERAND,
    F_UNSATISFIABLE_CONDITION,
    F_UNSUPPORTED_AGGREGATE,
    F_VIEW_KEY,
    Finding,
    Severity,
)
from repro.core.graph import INF, ZERO, ConstraintGraph
from repro.core.implication import (
    condition_implies,
    conditions_equivalent,
    implies,
)
from repro.core.irrelevance import is_statically_irrelevant
from repro.core.normalize import normalize_conjunction
from repro.core.satisfiability import is_satisfiable, is_satisfiable_conjunction
from repro.errors import ConditionError
from repro.instrumentation import charge

if TYPE_CHECKING:  # pragma: no cover
    from repro.algebra.expressions import NormalForm
    from repro.core.compiled import CompiledViewPlan
    from repro.core.maintainer import ViewMaintainer
    from repro.core.views import ViewDefinition
    from repro.engine.constraints import ConstraintCatalog


# ----------------------------------------------------------------------
# Per-definition checks (a)–(d), (f)
# ----------------------------------------------------------------------

def analyze_definition(
    definition: "ViewDefinition",
    constraints: "ConstraintCatalog | None" = None,
    plan: "CompiledViewPlan | None" = None,
    keys: "KeyLookup | None" = None,
    view_operands: Iterable[str] = (),
) -> tuple[Finding, ...]:
    """All single-view findings for one definition, report-ordered.

    ``constraints`` enables the static-irrelevance check (d);
    ``plan`` enables the compiled-plan lint (f); ``keys`` enables the
    chase-based check (i) and the ``fk_join`` self-maintainability
    class.  ``view_operands`` names operands that are themselves
    registered views — they carry bag semantics, for which the
    multiplicity-≤-1 conclusions of check (i) do not hold (taken from
    ``plan`` when one is given).  Without them the condition checks
    (a)–(c) still run — this is the subset strict registration needs,
    since only (a) produces ERROR findings.

    When the condition is unsatisfiable the single ERROR finding is
    returned alone: every other check would fire vacuously (an
    unsatisfiable condition implies everything) and only add noise.
    """
    charge("analysis_definitions_checked")
    name = definition.name
    nf = definition.normal_form
    findings: list[Finding] = []

    # (h) arithmetic aggregates over label domains.  Runs before the
    # satisfiability gate so a view broken both ways surfaces both
    # ERRORs — the fixes are independent.
    if definition.aggregate is not None:
        core_schema = nf.output_schema()
        for column in definition.aggregate.columns:
            if column.func not in ("sum", "avg"):
                continue
            assert column.attribute is not None
            domain = core_schema.domain_of(column.attribute)
            if not isinstance(domain, (IntegerDomain, FiniteDomain)):
                findings.append(
                    Finding(
                        F_UNSUPPORTED_AGGREGATE,
                        name,
                        str(column),
                        f"{column.func} over {column.attribute!r} is "
                        "arithmetic on a label domain: the encoded codes "
                        "are registration order, not numbers — use count, "
                        "min or max, or aggregate an integer attribute",
                    )
                )

    # (a) satisfiability of the whole condition.
    if not is_satisfiable(nf.condition):
        findings.append(
            Finding(
                F_UNSATISFIABLE_CONDITION,
                name,
                "condition",
                f"condition {nf.condition} is unsatisfiable: the view is "
                "empty in every database state",
            )
        )
        # Every other check would fire vacuously; stop at the ERRORs.
        return tuple(sorted(dict.fromkeys(findings), key=Finding.sort_key))

    # (b) dead disjuncts, then redundant atoms within live disjuncts,
    # then (c) loosenable bounds (skipping atoms already flagged
    # redundant — a redundant screen is loose by definition).
    for index, disjunct in enumerate(nf.condition.disjuncts, start=1):
        subject_prefix = f"disjunct {index}"
        if not is_satisfiable_conjunction(disjunct):
            findings.append(
                Finding(
                    F_DEAD_DISJUNCT,
                    name,
                    subject_prefix,
                    f"disjunct ({disjunct}) is unsatisfiable and "
                    "contributes no rows; it can be removed",
                )
            )
            continue
        for atom in _redundant_atoms(disjunct):
            findings.append(
                Finding(
                    F_REDUNDANT_ATOM,
                    name,
                    f"{subject_prefix}: {atom}",
                    f"atom ({atom}) is implied by the rest of its "
                    f"conjunct and can be dropped",
                )
            )
        findings.extend(_loose_bound_findings(name, subject_prefix, disjunct))

    # (d) static irrelevance under declared constraints.
    if constraints is not None:
        for relation_name in sorted(set(nf.relation_names)):
            constraint = constraints.get(relation_name)
            if constraint is None:
                continue
            if is_statically_irrelevant(nf, relation_name, constraint):
                findings.append(
                    Finding(
                        F_STATIC_IRRELEVANCE,
                        name,
                        relation_name,
                        f"under its declared constraint ({constraint}), no "
                        f"legal update to {relation_name!r} can affect the "
                        "view; the compiled plan drops its screening "
                        "entirely",
                    )
                )

    # (f) compiled-plan lint.  The lint speaks the plan's *execution*
    # normal form: an FK-reduced plan builds planners over the reduced
    # single-occurrence form, and positions refer to it.
    if plan is not None:
        findings.extend(
            _plan_lint_findings(name, plan.execution_normal_form, plan)
        )

    # (g) self-maintainability classification.
    from repro.scheduler.selfmaint import classify_self_maintainability

    verdict = classify_self_maintainability(definition, constraints, keys)
    if verdict.self_maintainable:
        findings.append(
            Finding(
                F_SELF_MAINTAINABLE,
                name,
                verdict.kind,
                f"{verdict.reason}; a base_free=True follower or shard "
                "can host this view without base-relation copies",
            )
        )

    # (i) key/FD reasoning: derived view keys, counter-freeness, and
    # duplicate sensitivity of base-free hosting.  View operands are
    # bags — a keyless upstream view can hold the same row twice — so
    # the multiplicity-≤-1 conclusions are suppressed over them, the
    # same gate the compiled plan applies.
    if keys is not None:
        bag_operands = (
            frozenset(plan.view_operands)
            if plan is not None
            else frozenset(view_operands)
        ) & set(nf.relation_names)
        if definition.aggregate is None and not bag_operands:
            view_key = derive_view_key(nf, keys)
            if view_key is not None:
                proof = "; ".join(view_key.proof) or "projection covers the product"
                findings.append(
                    Finding(
                        F_VIEW_KEY,
                        name,
                        view_key.describe(),
                        f"the chase derives view key {view_key.describe()}: "
                        "no two materialized rows can agree on it "
                        f"[{proof}]",
                    )
                )
                findings.append(
                    Finding(
                        F_COUNTER_FREE,
                        name,
                        view_key.describe(),
                        "the view key's closure covers the whole flattened "
                        "product, so every view row has multiplicity 1 and "
                        "the apply kernels pin the Section 5.2 counters "
                        "(counter-free maintenance)",
                    )
                )
        if verdict.self_maintainable:
            keyless = [
                relation
                for relation in sorted(set(nf.relation_names))
                if relation not in bag_operands and not keys.keys_of(relation)
            ]
            if keyless:
                listed = ", ".join(keyless)
                findings.append(
                    Finding(
                        F_DUPLICATE_SENSITIVE,
                        name,
                        listed,
                        "self-maintainable view reads keyless relation(s) "
                        f"[{listed}]: a base-free host cannot re-validate "
                        "duplicate inserts or absent deletes locally and "
                        "must trust upstream (leader-side) enforcement — "
                        "declare keys to unlock local occupancy tracking",
                    )
                )

    unique = tuple(dict.fromkeys(findings))
    return tuple(sorted(unique, key=Finding.sort_key))


def _redundant_atoms(disjunct: Conjunction) -> tuple[Atom, ...]:
    """Atoms implied by the rest of their (satisfiable) conjunct.

    Each atom is tested against all the *others* — no iterative
    removal — so the result is order-independent: for a mutually
    redundant pair (two copies of one atom) both are reported, and the
    message's "can be dropped" holds one at a time.
    """
    atoms = disjunct.atoms
    redundant: list[Atom] = []
    seen: set[Atom] = set()
    for index, atom in enumerate(atoms):
        if atom in seen:
            continue
        rest = Conjunction(atoms[:index] + atoms[index + 1:])
        if atom.is_ground():
            implied = atom.truth_value()
        else:
            implied = implies(rest, atom)
        if implied:
            redundant.append(atom)
            seen.add(atom)
    return tuple(redundant)


def _loose_bound_findings(
    view_name: str, subject_prefix: str, disjunct: Conjunction
) -> list[Finding]:
    """Check (c): written single-variable screens vs. entailed bounds.

    The disjunct's constraint graph is solved once (Floyd–Warshall, the
    same APSP Algorithm 4.1 precomputes); ``dist[x][ZERO]`` is then the
    tightest entailed upper bound on ``x`` and ``−dist[ZERO][x]`` the
    tightest lower bound — constants propagated through two-variable
    atoms (join equalities, offsets) the written screens never state.
    A variable whose entailed bound is strictly tighter than its
    written screen — or that has an entailed bound and no screen at
    all — is reported with the constant the screen could use:
    single-variable bounds are exactly what the Section 4 filter
    checks cheapest, so the tightening is free selectivity.
    """
    normalized = normalize_conjunction(disjunct)
    if not normalized.atoms:
        return []
    graph = ConstraintGraph.from_atoms(
        normalized.atoms, nodes=disjunct.variables()
    )
    dist, negative = graph.floyd_warshall()
    if negative:  # pragma: no cover - caller screened satisfiability
        return []
    # The bounds the screens actually state, tightest per direction.
    written_upper: dict[str, float] = {}
    written_lower: dict[str, float] = {}
    for atom in disjunct.atoms:
        if not atom.is_single_variable():
            continue
        assert isinstance(atom.left, Var)  # is_single_variable guarantees it
        variable = atom.left.name
        constant = atom.right.value  # type: ignore[union-attr]
        if atom.op in ("<", "<=", "="):
            bound = constant - 1 if atom.op == "<" else constant
            written_upper[variable] = min(
                written_upper.get(variable, INF), bound
            )
        if atom.op in (">", ">=", "="):
            bound = constant + 1 if atom.op == ">" else constant
            written_lower[variable] = max(
                written_lower.get(variable, -INF), bound
            )
    findings: list[Finding] = []
    for variable in sorted(disjunct.variables()):
        entailed_upper = dist[variable][ZERO]
        stated = written_upper.get(variable, INF)
        if entailed_upper < stated:
            detail = (
                f"the written screen only states {variable} <= {int(stated)}"
                if stated != INF
                else "no screen states it"
            )
            findings.append(
                Finding(
                    F_LOOSE_BOUND,
                    view_name,
                    f"{subject_prefix}: {variable} upper",
                    f"the disjunct entails {variable} <= "
                    f"{int(entailed_upper)} but {detail}; writing the "
                    "tighter bound is free screening selectivity",
                )
            )
        to_variable = dist[ZERO][variable]
        if to_variable != INF:
            entailed_lower = -to_variable
            stated = written_lower.get(variable, -INF)
            if entailed_lower > stated:
                detail = (
                    f"the written screen only states "
                    f"{variable} >= {int(stated)}"
                    if stated != -INF
                    else "no screen states it"
                )
                findings.append(
                    Finding(
                        F_LOOSE_BOUND,
                        view_name,
                        f"{subject_prefix}: {variable} lower",
                        f"the disjunct entails {variable} >= "
                        f"{int(entailed_lower)} but {detail}; writing the "
                        "tighter bound is free screening selectivity",
                    )
                )
    return findings


def _plan_lint_findings(
    view_name: str, nf: "NormalForm", plan: "CompiledViewPlan"
) -> list[Finding]:
    """Check (f): lint the compiled plan's join orders and truth table."""
    findings: list[Finding] = []
    p = len(nf.occurrences)

    # OLD operands joined with no equality links: simulate the planner
    # for every single-relation update (the common transaction shape)
    # and collect steps that join an unchanged operand with an empty
    # link set — those are full cross-product scans no index can serve.
    if p > 1:
        unbound: dict[int, set[str]] = {}
        for changed in range(p):
            planner = plan.planner_for([changed])
            for step in planner.steps:
                if step.position == changed or step.link_attr_names:
                    continue
                unbound.setdefault(step.position, set()).add(
                    nf.occurrences[changed].name
                )
        for position in sorted(unbound):
            occurrence = nf.occurrences[position]
            triggers = ", ".join(sorted(unbound[position]))
            findings.append(
                Finding(
                    F_UNBOUND_OLD_OPERAND,
                    view_name,
                    f"{occurrence.name}#{position}",
                    f"OLD operand {occurrence.name!r} (occurrence "
                    f"{position}) joins with no equality links when "
                    f"[{triggers}] change: every maintenance step scans "
                    "it in full and no hash index can be probed",
                )
            )

    # Truth-table rows that can never fire: a row assigning a delta to
    # a statically irrelevant occurrence requires tuples the relevance
    # stage provably never passes through.
    static = sorted(plan.static_irrelevant)
    if static:
        static_positions = sum(
            1 for occ in nf.occurrences if occ.name in plan.static_irrelevant
        )
        total_rows = 2**p - 1
        live_rows = 2 ** (p - static_positions) - 1
        dead_rows = total_rows - live_rows
        findings.append(
            Finding(
                F_DEAD_TRUTH_ROWS,
                view_name,
                ", ".join(static),
                f"{dead_rows} of {total_rows} truth-table delta rows "
                f"require a delta from statically irrelevant relation(s) "
                f"[{', '.join(static)}] and can never fire",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Cross-view check (e)
# ----------------------------------------------------------------------

def cross_view_findings(
    normal_forms: Mapping[str, "NormalForm"],
    aggregates: Mapping[str, tuple | None] | None = None,
) -> tuple[Finding, ...]:
    """Duplicate and subsumed views across a catalog of normal forms.

    Two views are *comparable* when they flatten to the same operand
    sequence (hence the same qualified namespace) — only then do their
    conditions and projections speak the same language.  Comparable
    pairs are then tested with the implication machinery:

    * equivalent conditions + identical projected columns → duplicates
      (one WARN on the lexicographically first view of the pair);
    * one-way implication + column subset → the implied-from view is
      subsumed: computable as a selection of the other (INFO).

    ``aggregates`` maps each view name to its aggregate spec
    fingerprint (``None`` for plain views).  A pair with *different*
    entries is never comparable.  A pair with the *same* aggregate spec
    over comparable cores still gets the duplicate check, but never the
    subsumption check: a narrower condition selects a different core
    row set per group, and aggregates of different row sets are not
    derivable from one another (a SUM over fewer rows is not a
    selection of the wider SUM).

    Views with unsatisfiable conditions are skipped here (they already
    carry an ERROR finding, and an empty view vacuously implies
    everything); pairs whose condition negation blows past the DNF
    bound are skipped as undecided-cheaply rather than guessed at.
    """
    names = sorted(normal_forms)
    satisfiable = {
        name: is_satisfiable(normal_forms[name].condition) for name in names
    }
    findings: list[Finding] = []
    for i, a_name in enumerate(names):
        for b_name in names[i + 1:]:
            a = normal_forms[a_name]
            b = normal_forms[b_name]
            if not (satisfiable[a_name] and satisfiable[b_name]):
                continue
            a_agg = aggregates.get(a_name) if aggregates else None
            b_agg = aggregates.get(b_name) if aggregates else None
            if a_agg != b_agg:
                continue
            if a.relation_names != b.relation_names:
                continue
            if tuple(a.qualified_schema.names) != tuple(b.qualified_schema.names):
                continue
            a_proj = tuple(qualified for _, qualified in a.projection)
            b_proj = tuple(qualified for _, qualified in b.projection)
            charge("analysis_view_pairs_compared")
            try:
                if a_proj == b_proj and conditions_equivalent(
                    a.condition, b.condition
                ):
                    findings.append(
                        Finding(
                            F_DUPLICATE_VIEW,
                            a_name,
                            b_name,
                            f"views {a_name!r} and {b_name!r} have provably "
                            "identical contents: same operands, equivalent "
                            "conditions, same projected columns",
                        )
                    )
                    continue
                if a_agg is not None:
                    # Equal aggregate specs over non-equivalent cores:
                    # subsumption is undefined across aggregation.
                    continue
                if set(a_proj) <= set(b_proj) and condition_implies(
                    a.condition, b.condition
                ):
                    findings.append(
                        _subsumed(a_name, b_name)
                    )
                if set(b_proj) <= set(a_proj) and condition_implies(
                    b.condition, a.condition
                ):
                    findings.append(
                        _subsumed(b_name, a_name)
                    )
            except ConditionError:
                # Negating one of the conditions exceeded the DNF
                # blow-up bound; this pair stays unanalyzed.
                continue
    return tuple(sorted(dict.fromkeys(findings), key=Finding.sort_key))


def _subsumed(narrow: str, wide: str) -> Finding:
    return Finding(
        F_SUBSUMED_VIEW,
        narrow,
        wide,
        f"view {narrow!r} is subsumed by {wide!r}: its condition implies "
        f"{wide!r}'s and its projected columns are a subset, so it is "
        f"computable as a selection and projection of {wide!r}",
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------

class AnalysisReport:
    """Every finding over a set of views, deterministically ordered.

    Rendering is byte-identical for the same catalog state: findings
    are deduplicated and sorted by :meth:`Finding.sort_key`, and the
    JSON form serializes with sorted keys.
    """

    __slots__ = ("views", "findings")

    def __init__(
        self, views: Sequence[str], findings: Iterable[Finding]
    ) -> None:
        self.views = tuple(views)
        self.findings = tuple(
            sorted(dict.fromkeys(findings), key=Finding.sort_key)
        )

    @property
    def has_errors(self) -> bool:
        """True when any finding is ERROR-level (CLI exit-code driver)."""
        return any(f.severity is Severity.ERROR for f in self.findings)

    def count(self, severity: Severity) -> int:
        """How many findings carry ``severity``."""
        return sum(1 for f in self.findings if f.severity is severity)

    def for_view(self, name: str) -> tuple[Finding, ...]:
        """The findings whose primary view is ``name``."""
        return tuple(f for f in self.findings if f.view == name)

    def format(self) -> str:
        """The text report the ``analyze`` CLI verb prints."""
        header = (
            f"static view analysis: {len(self.views)} view(s), "
            f"{len(self.findings)} finding(s) "
            f"({self.count(Severity.ERROR)} error, "
            f"{self.count(Severity.WARN)} warn, "
            f"{self.count(Severity.INFO)} info)"
        )
        if not self.findings:
            return header + "\nno findings"
        lines = [header]
        lines.extend(finding.format() for finding in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready structure (stable ordering throughout)."""
        return {
            "views": list(self.views),
            "counts": {
                "error": self.count(Severity.ERROR),
                "warn": self.count(Severity.WARN),
                "info": self.count(Severity.INFO),
            },
            "findings": [f.as_dict() for f in self.findings],
        }

    def as_json(self) -> str:
        """The report as deterministic JSON (sorted keys, 2-space indent)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def __repr__(self) -> str:
        return (
            f"<AnalysisReport {len(self.views)} views, "
            f"{len(self.findings)} findings>"
        )


def analyze_maintainer(maintainer: "ViewMaintainer") -> AnalysisReport:
    """The full analyzer over every view a maintainer has registered.

    Runs the per-definition checks (with the database's constraint
    catalog and each view's compiled plan — the cached one when
    available, a fresh compile otherwise) plus the cross-view pass.
    """
    charge("analysis_runs")
    names = maintainer.view_names()
    findings: list[Finding] = []
    normal_forms: dict[str, "NormalForm"] = {}
    aggregates: dict[str, tuple | None] = {}
    for name in names:
        view = maintainer.view(name)
        plan = maintainer.compiled_plan(name)
        if plan is None:
            plan = maintainer._compile_plan(view.definition)
        findings.extend(
            analyze_definition(
                view.definition,
                constraints=maintainer.database.constraints,
                plan=plan,
                keys=maintainer.database.keys,
            )
        )
        normal_forms[name] = view.definition.normal_form
        spec = view.definition.aggregate
        aggregates[name] = spec.fingerprint() if spec is not None else None
    findings.extend(cross_view_findings(normal_forms, aggregates))
    return AnalysisReport(names, findings)
