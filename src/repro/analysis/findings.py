"""Typed findings with a closed code vocabulary.

Mirrors the network protocol's error-code discipline
(:mod:`repro.server.protocol`): every finding carries a snake_case
``code`` drawn from a **closed** vocabulary with a fixed severity, so
reports are machine-checkable (CI greps a code, not prose) and the
prose can improve without breaking consumers.

Severities
----------
* ``ERROR`` — the definition is broken in every database state (today:
  a provably unsatisfiable condition).  Strict registration and the
  ``analyze`` CLI verb's exit code key off this level.
* ``WARN`` — the definition works but carries provable waste or a
  likely mistake (dead disjuncts, redundant atoms, duplicate views,
  OLD operands joined with no equality links).
* ``INFO`` — an observation or an optimization the system already
  applies (tightenable bounds, static irrelevance, subsumption,
  truth-table rows that can never fire).
"""

from __future__ import annotations

import enum
from typing import Mapping


class Severity(enum.Enum):
    """How serious one finding is (ordered: ERROR < WARN < INFO)."""

    ERROR = "error"
    WARN = "warn"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort rank — most severe first."""
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARN: 1, Severity.INFO: 2}


# ----------------------------------------------------------------------
# The closed code vocabulary (one constant per distinct finding class)
# ----------------------------------------------------------------------

#: Check (a): the view condition is unsatisfiable — the view is empty
#: in every database state.
F_UNSATISFIABLE_CONDITION = "unsatisfiable_condition"
#: Check (b): one disjunct of the DNF condition is unsatisfiable while
#: the condition overall is not — the disjunct contributes nothing.
F_DEAD_DISJUNCT = "dead_disjunct"
#: Check (b): an atom is implied by the rest of its conjunct — it can
#: be dropped without changing the view.
F_REDUNDANT_ATOM = "redundant_atom"
#: Check (c): a single-variable screen is looser than the bound the
#: rest of its disjunct already entails — it can be tightened.
F_LOOSE_BOUND = "loose_bound"
#: Check (d): under its declared constraint, no legal update to the
#: relation can affect the view; the compiled plan drops its screening.
F_STATIC_IRRELEVANCE = "statically_irrelevant_relation"
#: Check (e): two views have provably identical contents.
F_DUPLICATE_VIEW = "duplicate_view"
#: Check (e): one view's rows are derivable from another's (condition
#: implication plus a column subset).
F_SUBSUMED_VIEW = "subsumed_view"
#: Check (f): an OLD operand is joined with no equality links — every
#: maintenance step scans it in full (no index binding possible).
F_UNBOUND_OLD_OPERAND = "unbound_old_operand"
#: Check (f): truth-table delta rows that can never fire because they
#: require a delta from a statically irrelevant relation.
F_DEAD_TRUTH_ROWS = "dead_truth_table_rows"
#: Check (g): the view is self-maintainable — maintainable from its own
#: counted contents plus the delta, with no base-relation access — so a
#: base-free host (follower or shard) could carry it without base
#: copies (see :mod:`repro.scheduler.selfmaint`).
F_SELF_MAINTAINABLE = "self_maintainable_view"
#: Check (h): an arithmetic aggregate (SUM/AVG) is computed over an
#: attribute whose domain is a label space — the encoded codes carry no
#: arithmetic meaning, so the view would be nonsense in every state.
F_UNSUPPORTED_AGGREGATE = "unsupported_aggregate"
#: Check (i): the chase over declared keys derived a *view key* — a
#: minimal set of output columns on which no two materialized rows can
#: agree; the finding carries the FD proof chain.
F_VIEW_KEY = "view_key"
#: Check (i): when the view key's closure covers the whole flattened
#: product, every view row provably has multiplicity ≤ 1, so codegen
#: pins the §5.2 counters to one (counter-free apply kernels).
F_COUNTER_FREE = "counter_free"
#: Check (i): the view is self-maintainable and would be hosted
#: base-free, but some base relation it reads declares no key — shipped
#: deltas of keyless relations rely on upstream validation for
#: duplicate inserts and absent deletes.
F_DUPLICATE_SENSITIVE = "duplicate_sensitive"

#: Every valid code, mapped to its fixed severity.  Adding a code here
#: is an API change; the vocabulary is otherwise closed.
CODE_SEVERITIES: Mapping[str, Severity] = {
    F_UNSATISFIABLE_CONDITION: Severity.ERROR,
    F_DEAD_DISJUNCT: Severity.WARN,
    F_REDUNDANT_ATOM: Severity.WARN,
    F_LOOSE_BOUND: Severity.INFO,
    F_STATIC_IRRELEVANCE: Severity.INFO,
    F_DUPLICATE_VIEW: Severity.WARN,
    F_SUBSUMED_VIEW: Severity.INFO,
    F_UNBOUND_OLD_OPERAND: Severity.WARN,
    F_DEAD_TRUTH_ROWS: Severity.INFO,
    F_SELF_MAINTAINABLE: Severity.INFO,
    F_UNSUPPORTED_AGGREGATE: Severity.ERROR,
    F_VIEW_KEY: Severity.INFO,
    F_COUNTER_FREE: Severity.INFO,
    F_DUPLICATE_SENSITIVE: Severity.WARN,
}


class Finding:
    """One analyzer verdict about one view (or view pair).

    Attributes
    ----------
    code:
        A constant from the closed vocabulary above.
    severity:
        Derived from the code — never chosen per call site.
    view:
        The analyzed view's name.
    subject:
        What inside the view the finding is about — a relation name,
        ``disjunct N``, an atom's text, or a second view's name for
        cross-view findings.
    message:
        Human-readable explanation, deterministic for a given input.
    """

    __slots__ = ("code", "severity", "view", "subject", "message")

    def __init__(self, code: str, view: str, subject: str, message: str) -> None:
        try:
            self.severity = CODE_SEVERITIES[code]
        except KeyError:
            raise ValueError(
                f"{code!r} is not in the closed finding vocabulary"
            ) from None
        self.code = code
        self.view = view
        self.subject = subject
        self.message = message

    def sort_key(self) -> tuple[str, int, str, str, str]:
        """Deterministic report order: by view, then severity, then code."""
        return (self.view, self.severity.rank, self.code, self.subject, self.message)

    def as_dict(self) -> dict[str, str]:
        """JSON-ready form (string values only, stable keys)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "view": self.view,
            "subject": self.subject,
            "message": self.message,
        }

    def format(self) -> str:
        """One report line."""
        return (
            f"[{self.severity.value}] {self.view}: {self.code} "
            f"({self.subject}): {self.message}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash((self.code, self.view, self.subject, self.message))

    def __repr__(self) -> str:
        return f"<Finding {self.format()}>"
